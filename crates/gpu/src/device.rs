//! The simulated accelerator (the K20X of our substitute Titan).
//!
//! A device has two engines, each its own OS thread: a *kernel engine* and a
//! *copy engine* (the DMA engine of a real GPU), so copies and kernels can
//! genuinely overlap in wall-clock time. Work is submitted as operations on
//! *streams*; operations within one stream execute in order (enforced with
//! explicit dependencies), operations in different streams may overlap.
//!
//! Copies are charged PCIe time (`bytes / bandwidth + overhead`) in real
//! time, so a *blocking* `cudaMemcpy` really stalls its calling thread while
//! an asynchronous copy does not — the effect the GEO benchmark measures
//! (paper §III-B: "HiPER consistently improves performance ~2% by reducing
//! blocking CUDA operations").

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex, RwLock};

/// PCIe-like transfer model.
#[derive(Debug, Clone, Copy)]
pub struct PcieModel {
    /// Transfer bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Fixed per-transfer overhead.
    pub overhead: Duration,
}

impl Default for PcieModel {
    fn default() -> Self {
        PcieModel {
            bandwidth: 6.0e9, // PCIe gen2 x16 era (K20X)
            overhead: Duration::from_micros(10),
        }
    }
}

impl PcieModel {
    /// Modeled duration of a transfer.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        self.overhead + Duration::from_secs_f64(bytes as f64 / self.bandwidth)
    }
}

/// Device memory: a byte buffer resident on a device. Host code must move
/// data with memcpy operations; kernels access it through the typed views.
pub struct DeviceBuffer {
    device: usize,
    data: RwLock<Vec<u8>>,
}

impl DeviceBuffer {
    /// Owning device index.
    pub fn device(&self) -> usize {
        self.device
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.read().len()
    }

    /// True if zero-length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Kernel-side byte access (shared).
    pub fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.data.read())
    }

    /// Kernel-side byte access (exclusive).
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        f(&mut self.data.write())
    }

    /// Kernel-side typed view: the buffer as `&[f64]`.
    pub fn with_f64<R>(&self, f: impl FnOnce(&[f64]) -> R) -> R {
        let guard = self.data.read();
        let n = guard.len() / 8;
        let mut tmp = vec![0f64; n];
        bytes_to_f64(&guard, &mut tmp);
        f(&tmp)
    }

    /// Kernel-side typed mutation: the buffer as `&mut Vec<f64>` (copied in
    /// and out; device compute in this simulator is host compute anyway).
    pub fn with_f64_mut<R>(&self, f: impl FnOnce(&mut [f64]) -> R) -> R {
        let mut guard = self.data.write();
        let n = guard.len() / 8;
        let mut tmp = vec![0f64; n];
        bytes_to_f64(&guard, &mut tmp);
        let r = f(&mut tmp);
        f64_to_bytes(&tmp, &mut guard);
        r
    }

    pub(crate) fn write_bytes(&self, offset: usize, src: &[u8]) {
        self.data.write()[offset..offset + src.len()].copy_from_slice(src);
    }

    pub(crate) fn read_bytes(&self, offset: usize, dst: &mut [u8]) {
        dst.copy_from_slice(&self.data.read()[offset..offset + dst.len()]);
    }
}

fn bytes_to_f64(bytes: &[u8], out: &mut [f64]) {
    for (i, v) in out.iter_mut().enumerate() {
        *v = f64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap());
    }
}

fn f64_to_bytes(vals: &[f64], out: &mut [u8]) {
    for (i, v) in vals.iter().enumerate() {
        out[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
    }
}

impl std::fmt::Debug for DeviceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceBuffer")
            .field("device", &self.device)
            .field("len", &self.len())
            .finish()
    }
}

/// Completion marker of one device operation (the simulator's cudaEvent).
pub struct OpDone {
    done: AtomicBool,
    mutex: Mutex<()>,
    cond: Condvar,
}

impl OpDone {
    pub(crate) fn new() -> Arc<OpDone> {
        Arc::new(OpDone {
            done: AtomicBool::new(false),
            mutex: Mutex::new(()),
            cond: Condvar::new(),
        })
    }

    /// An already-complete marker.
    pub fn ready() -> Arc<OpDone> {
        let d = OpDone::new();
        d.set();
        d
    }

    pub(crate) fn set(&self) {
        let _guard = self.mutex.lock();
        self.done.store(true, Ordering::Release);
        self.cond.notify_all();
    }

    /// Nonblocking completion poll (cudaEventQuery).
    pub fn test(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Blocks the calling OS thread (cudaEventSynchronize / the blocking
    /// half of cudaMemcpy).
    pub fn wait(&self) {
        if self.test() {
            return;
        }
        let mut guard = self.mutex.lock();
        while !self.test() {
            self.cond.wait(&mut guard);
        }
    }
}

impl std::fmt::Debug for OpDone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OpDone({})", self.test())
    }
}

enum OpKind {
    Kernel(Box<dyn FnOnce() + Send>),
    Sleep(Duration),
}

struct Op {
    deps: Vec<Arc<OpDone>>,
    kind: OpKind,
    done: Arc<OpDone>,
}

struct Engine {
    queue: Mutex<VecDeque<Op>>,
    cond: Condvar,
    shutdown: AtomicBool,
}

impl Engine {
    fn new() -> Arc<Engine> {
        Arc::new(Engine {
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
        })
    }

    fn submit(&self, op: Op) {
        self.queue.lock().push_back(op);
        self.cond.notify_all();
    }

    fn run(&self) {
        loop {
            let op = {
                let mut q = self.queue.lock();
                loop {
                    if let Some(op) = q.pop_front() {
                        break op;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    self.cond.wait(&mut q);
                }
            };
            for dep in &op.deps {
                dep.wait();
            }
            match op.kind {
                OpKind::Kernel(f) => f(),
                OpKind::Sleep(d) => std::thread::sleep(d),
            }
            op.done.set();
        }
    }

    fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.cond.notify_all();
    }
}

/// A CUDA-like stream: in-order per stream, overlappable across streams.
#[derive(Clone)]
pub struct Stream {
    device: usize,
    id: u64,
    last: Arc<Mutex<Arc<OpDone>>>,
}

impl Stream {
    /// Owning device index.
    pub fn device(&self) -> usize {
        self.device
    }

    /// Stream id (diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The completion marker of the most recently enqueued op.
    pub fn last_op(&self) -> Arc<OpDone> {
        Arc::clone(&self.last.lock())
    }

    /// Blocks the calling thread until every enqueued op has completed
    /// (cudaStreamSynchronize).
    pub fn synchronize(&self) {
        self.last_op().wait();
    }
}

impl std::fmt::Debug for Stream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Stream(dev {}, id {})", self.device, self.id)
    }
}

/// One simulated accelerator.
pub struct GpuDevice {
    index: usize,
    pcie: PcieModel,
    kernel_engine: Arc<Engine>,
    copy_engine: Arc<Engine>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    next_stream: AtomicU64,
}

impl GpuDevice {
    /// Brings up a device with its two engine threads.
    pub fn new(index: usize, pcie: PcieModel) -> Arc<GpuDevice> {
        let kernel_engine = Engine::new();
        let copy_engine = Engine::new();
        let mut threads = Vec::new();
        for (name, engine) in [("kern", &kernel_engine), ("copy", &copy_engine)] {
            let engine = Arc::clone(engine);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("hiper-gpu{}-{}", index, name))
                    .spawn(move || engine.run())
                    .expect("failed to spawn device engine"),
            );
        }
        Arc::new(GpuDevice {
            index,
            pcie,
            kernel_engine,
            copy_engine,
            threads: Mutex::new(threads),
            next_stream: AtomicU64::new(1),
        })
    }

    /// Device index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The PCIe model in force.
    pub fn pcie(&self) -> PcieModel {
        self.pcie
    }

    /// Allocates zeroed device memory (cudaMalloc).
    pub fn alloc(&self, bytes: usize) -> Arc<DeviceBuffer> {
        Arc::new(DeviceBuffer {
            device: self.index,
            data: RwLock::new(vec![0u8; bytes]),
        })
    }

    /// Creates a stream (cudaStreamCreate).
    pub fn create_stream(self: &Arc<Self>) -> Stream {
        Stream {
            device: self.index,
            id: self.next_stream.fetch_add(1, Ordering::Relaxed),
            last: Arc::new(Mutex::new(OpDone::ready())),
        }
    }

    fn chain(&self, stream: &Stream, kind: OpKind, engine: &Engine) -> Arc<OpDone> {
        let done = OpDone::new();
        let mut last = stream.last.lock();
        engine.submit(Op {
            deps: vec![Arc::clone(&last)],
            kind,
            done: Arc::clone(&done),
        });
        *last = Arc::clone(&done);
        done
    }

    /// Launches a kernel (an arbitrary closure over device buffers) on
    /// `stream`; returns its completion marker (cudaLaunchKernel).
    pub fn launch_kernel(
        &self,
        stream: &Stream,
        kernel: impl FnOnce() + Send + 'static,
    ) -> Arc<OpDone> {
        assert_eq!(
            stream.device, self.index,
            "stream belongs to another device"
        );
        self.chain(
            stream,
            OpKind::Kernel(Box::new(kernel)),
            &self.kernel_engine,
        )
    }

    /// Enqueues an async host-to-device copy (cudaMemcpyAsync H2D).
    pub fn memcpy_h2d_async(
        &self,
        stream: &Stream,
        dst: &Arc<DeviceBuffer>,
        dst_off: usize,
        src: Vec<u8>,
    ) -> Arc<OpDone> {
        assert_eq!(dst.device, self.index, "buffer belongs to another device");
        let pcie = self.pcie;
        let dst = Arc::clone(dst);
        let nbytes = src.len();
        self.chain(
            stream,
            OpKind::Kernel(Box::new(move || {
                std::thread::sleep(pcie.transfer_time(nbytes));
                dst.write_bytes(dst_off, &src);
            })),
            &self.copy_engine,
        )
    }

    /// Enqueues an async device-to-host copy; `sink` receives the bytes on
    /// the copy engine after the modeled PCIe time (cudaMemcpyAsync D2H).
    pub fn memcpy_d2h_async(
        &self,
        stream: &Stream,
        src: &Arc<DeviceBuffer>,
        src_off: usize,
        nbytes: usize,
        sink: impl FnOnce(Vec<u8>) + Send + 'static,
    ) -> Arc<OpDone> {
        assert_eq!(src.device, self.index, "buffer belongs to another device");
        let pcie = self.pcie;
        let src = Arc::clone(src);
        self.chain(
            stream,
            OpKind::Kernel(Box::new(move || {
                std::thread::sleep(pcie.transfer_time(nbytes));
                let mut out = vec![0u8; nbytes];
                src.read_bytes(src_off, &mut out);
                sink(out);
            })),
            &self.copy_engine,
        )
    }

    /// Enqueues an async device-to-device copy (peer or same device).
    pub fn memcpy_d2d_async(
        &self,
        stream: &Stream,
        dst: &Arc<DeviceBuffer>,
        dst_off: usize,
        src: &Arc<DeviceBuffer>,
        src_off: usize,
        nbytes: usize,
    ) -> Arc<OpDone> {
        let pcie = self.pcie;
        let dst = Arc::clone(dst);
        let src = Arc::clone(src);
        self.chain(
            stream,
            OpKind::Kernel(Box::new(move || {
                std::thread::sleep(pcie.transfer_time(nbytes));
                let mut tmp = vec![0u8; nbytes];
                src.read_bytes(src_off, &mut tmp);
                dst.write_bytes(dst_off, &tmp);
            })),
            &self.copy_engine,
        )
    }

    /// Blocking host-to-device copy: stalls the calling thread for the PCIe
    /// time (cudaMemcpy H2D) — what the paper's reference GEO pays.
    pub fn memcpy_h2d_blocking(
        &self,
        stream: &Stream,
        dst: &Arc<DeviceBuffer>,
        dst_off: usize,
        src: Vec<u8>,
    ) {
        self.memcpy_h2d_async(stream, dst, dst_off, src).wait();
    }

    /// Blocking device-to-host copy.
    pub fn memcpy_d2h_blocking(
        &self,
        stream: &Stream,
        src: &Arc<DeviceBuffer>,
        src_off: usize,
        nbytes: usize,
    ) -> Vec<u8> {
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = Arc::clone(&out);
        self.memcpy_d2h_async(stream, src, src_off, nbytes, move |data| {
            *out2.lock() = data;
        })
        .wait();
        let result = std::mem::take(&mut *out.lock());
        result
    }

    /// Blocks until both engines have drained every submitted op
    /// (cudaDeviceSynchronize over the streams the caller tracks — here we
    /// insert fences on both engines).
    pub fn synchronize(&self) {
        for engine in [&self.kernel_engine, &self.copy_engine] {
            let done = OpDone::new();
            engine.submit(Op {
                deps: Vec::new(),
                kind: OpKind::Sleep(Duration::ZERO),
                done: Arc::clone(&done),
            });
            done.wait();
        }
    }

    /// Stops the engine threads. Further submissions are not executed.
    pub fn stop(&self) {
        self.kernel_engine.stop();
        self.copy_engine.stop();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for GpuDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GpuDevice({})", self.index)
    }
}
