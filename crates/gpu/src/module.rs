//! The HiPER CUDA module (paper §II-C3).
//!
//! Supports blocking data transfers, asynchronous data transfers and
//! asynchronous kernels. It is the one module that registers special-purpose
//! functions with the runtime: it claims every `async_copy` that reads or
//! writes a GPU place, and it uses the same polling technique as the MPI
//! module (paper §II-C1) to turn device completion markers into HiPER
//! promises.

use std::sync::Arc;

use hiper_platform::{PlaceId, PlaceKind};
use hiper_runtime::{
    CopyHandler, CopyRequest, Future, MemLoc, ModuleError, Poller, Promise, Runtime,
    SchedulerModule, TaskError,
};
use parking_lot::RwLock;

use crate::device::{DeviceBuffer, GpuDevice, OpDone, PcieModel, Stream};

type State = Arc<RwLock<Option<ModuleState>>>;

/// The HiPER CUDA module. Devices are created at initialization, one per GPU
/// place in the platform model (the `device_index` place attribute selects
/// the device index).
pub struct GpuModule {
    pcie: PcieModel,
    state: State,
}

struct ModuleState {
    rt: Runtime,
    devices: Vec<Arc<GpuDevice>>,
    /// Place of each device (indexed by device index).
    places: Vec<PlaceId>,
    poller: Arc<Poller>,
    /// Internal per-device stream for module-initiated (`async_copy`)
    /// transfers.
    copy_streams: Vec<Stream>,
}

/// Bridges a device completion marker to a HiPER promise via the module's
/// polling task.
fn poll_completion(state: &ModuleState, rt: &Runtime, op: Arc<OpDone>, done: Promise<()>) {
    let mut slot = Some(done);
    state.poller.submit(
        rt,
        Box::new(move || {
            if op.test() {
                slot.take().expect("polled after completion").put(());
                true
            } else {
                false
            }
        }),
    );
}

impl GpuModule {
    /// Creates a module with the default PCIe model.
    pub fn new() -> Arc<GpuModule> {
        Self::with_pcie(PcieModel::default())
    }

    /// Creates a module with a custom PCIe model.
    pub fn with_pcie(pcie: PcieModel) -> Arc<GpuModule> {
        Arc::new(GpuModule {
            pcie,
            state: Arc::new(RwLock::new(None)),
        })
    }

    fn with_state<R>(&self, f: impl FnOnce(&ModuleState) -> R) -> R {
        let guard = self.state.read();
        let state = guard
            .as_ref()
            .expect("GPU module used before runtime initialization");
        f(state)
    }

    /// Number of simulated devices.
    pub fn device_count(&self) -> usize {
        self.with_state(|s| s.devices.len())
    }

    /// The platform place of `device`.
    pub fn place_of(&self, device: usize) -> PlaceId {
        self.with_state(|s| s.places[device])
    }

    /// Allocates device memory (cudaMalloc).
    pub fn alloc(&self, device: usize, bytes: usize) -> Arc<DeviceBuffer> {
        self.with_state(|s| s.devices[device].alloc(bytes))
    }

    /// Creates a stream on `device` (cudaStreamCreate).
    pub fn create_stream(&self, device: usize) -> Stream {
        self.with_state(|s| s.devices[device].create_stream())
    }

    /// Wraps a device completion marker in a HiPER future, satisfied by the
    /// module's polling task.
    pub fn future_of(&self, done: Arc<OpDone>) -> Future<()> {
        let promise = Promise::new();
        let fut = promise.future();
        self.with_state(|state| poll_completion(state, &state.rt, done, promise));
        fut
    }

    /// Asynchronous kernel launch returning a future.
    pub fn launch_future(
        &self,
        stream: &Stream,
        kernel: impl FnOnce() + Send + 'static,
    ) -> Future<()> {
        let done = self.with_state(|s| {
            let _t = s.rt.module_stats().time_op("cuda", "launch", 0);
            s.devices[stream.device()].launch_kernel(stream, kernel)
        });
        self.future_of(done)
    }

    /// Kernel launch predicated on dependencies: the launch happens when
    /// every `dep` is satisfied (the §II-D `forasync_cuda(..., deps)`
    /// pattern).
    pub fn launch_await(
        &self,
        stream: &Stream,
        deps: &[Future<()>],
        kernel: impl FnOnce() + Send + 'static,
    ) -> Future<()> {
        let all = hiper_runtime::when_all(deps);
        let promise = Promise::new();
        let fut = promise.future();
        let state = Arc::clone(&self.state);
        let stream = stream.clone();
        let slot = parking_lot::Mutex::new(Some((
            promise,
            Box::new(kernel) as Box<dyn FnOnce() + Send>,
        )));
        all.on_ready(move || {
            let (promise, kernel) = slot.lock().take().expect("deps fired twice");
            let guard = state.read();
            let s = guard.as_ref().expect("kernel launch after finalization");
            let done = s.devices[stream.device()].launch_kernel(&stream, kernel);
            poll_completion(s, &s.rt, done, promise);
        });
        fut
    }

    /// Blocking H2D copy (cudaMemcpy): stalls the calling OS thread for the
    /// modeled PCIe time.
    pub fn memcpy_h2d_blocking(
        &self,
        stream: &Stream,
        dst: &Arc<DeviceBuffer>,
        dst_off: usize,
        src: Vec<u8>,
    ) {
        self.with_state(|s| {
            let _t =
                s.rt.module_stats()
                    .time_op("cuda", "memcpy_h2d", src.len() as u64);
            s.devices[stream.device()].memcpy_h2d_blocking(stream, dst, dst_off, src)
        })
    }

    /// Blocking D2H copy (cudaMemcpy).
    pub fn memcpy_d2h_blocking(
        &self,
        stream: &Stream,
        src: &Arc<DeviceBuffer>,
        src_off: usize,
        nbytes: usize,
    ) -> Vec<u8> {
        self.with_state(|s| {
            let _t =
                s.rt.module_stats()
                    .time_op("cuda", "memcpy_d2h", nbytes as u64);
            s.devices[stream.device()].memcpy_d2h_blocking(stream, src, src_off, nbytes)
        })
    }

    /// Async H2D copy returning a future.
    pub fn memcpy_h2d_future(
        &self,
        stream: &Stream,
        dst: &Arc<DeviceBuffer>,
        dst_off: usize,
        src: Vec<u8>,
    ) -> Future<()> {
        let done = self
            .with_state(|s| s.devices[stream.device()].memcpy_h2d_async(stream, dst, dst_off, src));
        self.future_of(done)
    }

    /// Async D2H copy returning a future on the fetched bytes.
    pub fn memcpy_d2h_future(
        &self,
        stream: &Stream,
        src: &Arc<DeviceBuffer>,
        src_off: usize,
        nbytes: usize,
    ) -> Future<Vec<u8>> {
        let promise = Promise::new();
        let fut = promise.future();
        self.with_state(|s| {
            s.devices[stream.device()].memcpy_d2h_async(
                stream,
                src,
                src_off,
                nbytes,
                move |data| promise.put(data),
            );
        });
        fut
    }

    /// Blocks until `device` has drained all submitted work.
    pub fn device_synchronize(&self, device: usize) {
        self.with_state(|s| s.devices[device].synchronize());
    }

    /// `MemLoc` for an `async_copy` endpoint on a device buffer.
    pub fn loc(buf: &Arc<DeviceBuffer>, offset: usize) -> MemLoc {
        MemLoc::opaque(
            Arc::clone(buf) as Arc<dyn std::any::Any + Send + Sync>,
            offset,
        )
    }
}

fn handle_copy(state_arc: &State, rt: &Runtime, req: CopyRequest, done: Promise<()>) {
    // A misrouted or malformed copy request fails the copy's promise with a
    // typed error (poison propagates through the owning finish scope)
    // instead of panicking the worker thread.
    if let Err((done, err)) = try_handle_copy(state_arc, rt, &req, done) {
        done.poison(TaskError::new(err.to_string()));
    }
}

/// Plumbing for [`handle_copy`]: `done` is consumed by the completion
/// poller on success and handed back alongside the error otherwise.
fn try_handle_copy(
    state_arc: &State,
    rt: &Runtime,
    req: &CopyRequest,
    done: Promise<()>,
) -> Result<(), (Promise<()>, ModuleError)> {
    macro_rules! bail {
        ($e:expr) => {
            return Err((done, $e))
        };
    }
    macro_rules! try_or_bail {
        ($r:expr) => {
            match $r {
                Ok(v) => v,
                Err(e) => bail!(e),
            }
        };
    }
    let guard = state_arc.read();
    let state = match guard.as_ref() {
        Some(s) => s,
        None => bail!(ModuleError::protocol(
            "cuda",
            "async_copy after module finalization"
        )),
    };
    let src_kind = rt.config().graph.place(req.src_place).kind.clone();
    let dst_kind = rt.config().graph.place(req.dst_place).kind.clone();
    match (src_kind, dst_kind) {
        (PlaceKind::SystemMemory, PlaceKind::GpuMemory) => {
            let dev = try_or_bail!(device_of_place(state, req.dst_place));
            let (dst, dst_off) = try_or_bail!(downcast_buffer(&req.dst));
            let mut src = vec![0u8; req.nbytes];
            match &req.src {
                MemLoc::Host { buf, offset } => buf.read_bytes(*offset, &mut src),
                _ => bail!(ModuleError::protocol(
                    "cuda",
                    "H2D copy source must be a host buffer"
                )),
            }
            let op =
                state.devices[dev].memcpy_h2d_async(&state.copy_streams[dev], &dst, dst_off, src);
            poll_completion(state, rt, op, done);
        }
        (PlaceKind::GpuMemory, PlaceKind::SystemMemory) => {
            let dev = try_or_bail!(device_of_place(state, req.src_place));
            let (src, src_off) = try_or_bail!(downcast_buffer(&req.src));
            let (host, host_off) = match &req.dst {
                MemLoc::Host { buf, offset } => (Arc::clone(buf), *offset),
                _ => bail!(ModuleError::protocol(
                    "cuda",
                    "D2H copy destination must be a host buffer"
                )),
            };
            let op = state.devices[dev].memcpy_d2h_async(
                &state.copy_streams[dev],
                &src,
                src_off,
                req.nbytes,
                move |data| host.write_bytes(host_off, &data),
            );
            poll_completion(state, rt, op, done);
        }
        (PlaceKind::GpuMemory, PlaceKind::GpuMemory) => {
            let sdev = try_or_bail!(device_of_place(state, req.src_place));
            let (src, src_off) = try_or_bail!(downcast_buffer(&req.src));
            let (dst, dst_off) = try_or_bail!(downcast_buffer(&req.dst));
            let op = state.devices[sdev].memcpy_d2d_async(
                &state.copy_streams[sdev],
                &dst,
                dst_off,
                &src,
                src_off,
                req.nbytes,
            );
            poll_completion(state, rt, op, done);
        }
        (s, d) => bail!(ModuleError::protocol(
            "cuda",
            format!("cannot handle {} -> {} copies", s, d)
        )),
    }
    Ok(())
}

fn device_of_place(state: &ModuleState, place: PlaceId) -> Result<usize, ModuleError> {
    state
        .places
        .iter()
        .position(|&p| p == place)
        .ok_or_else(|| ModuleError::protocol("cuda", "place is not a registered GPU device"))
}

fn downcast_buffer(loc: &MemLoc) -> Result<(Arc<DeviceBuffer>, usize), ModuleError> {
    match loc {
        MemLoc::Opaque { token, offset } => Arc::clone(token)
            .downcast::<DeviceBuffer>()
            .map(|buf| (buf, *offset))
            .map_err(|_| ModuleError::protocol("cuda", "opaque token is not a DeviceBuffer")),
        _ => Err(ModuleError::protocol(
            "cuda",
            "GPU-side location must be an opaque DeviceBuffer token",
        )),
    }
}

impl SchedulerModule for GpuModule {
    fn name(&self) -> &'static str {
        "cuda"
    }

    fn initialize(&self, rt: &Runtime) -> Result<(), ModuleError> {
        let graph = &rt.config().graph;
        let gpu_places = graph.places_of_kind(&PlaceKind::GpuMemory);
        if gpu_places.is_empty() {
            return Err(ModuleError::new(
                "cuda",
                "platform model contains no GPU places",
            ));
        }
        // Order devices by their `device_index` attribute (default: place
        // order).
        let mut ordered: Vec<(usize, PlaceId)> = gpu_places
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let idx = graph
                    .place(p)
                    .attr("device_index")
                    .map(|v| v as usize)
                    .unwrap_or(i);
                (idx, p)
            })
            .collect();
        ordered.sort_by_key(|(i, _)| *i);
        let places: Vec<PlaceId> = ordered.iter().map(|(_, p)| *p).collect();
        let devices: Vec<Arc<GpuDevice>> = ordered
            .iter()
            .map(|(i, _)| GpuDevice::new(*i, self.pcie))
            .collect();
        let copy_streams: Vec<Stream> = devices.iter().map(|d| d.create_stream()).collect();
        // Completion sweeps are placed at the first GPU place: GPU work is
        // scheduled with everything else on the unified runtime.
        let poller = Poller::new("cuda-poll", places[0]);
        *self.state.write() = Some(ModuleState {
            rt: rt.clone(),
            devices,
            places,
            poller,
            copy_streams,
        });
        Ok(())
    }

    fn finalize(&self, _rt: &Runtime) {
        if let Some(state) = self.state.write().take() {
            for d in &state.devices {
                d.stop();
            }
        }
    }

    fn register_copy_handlers(&self, rt: &Runtime) {
        // Claim every (src, dst) kind pair that touches a GPU place (paper
        // §II-C3).
        let reg = rt.copy_registry();
        for (src, dst) in [
            (PlaceKind::SystemMemory, PlaceKind::GpuMemory),
            (PlaceKind::GpuMemory, PlaceKind::SystemMemory),
            (PlaceKind::GpuMemory, PlaceKind::GpuMemory),
        ] {
            let state = Arc::clone(&self.state);
            let handler: Arc<CopyHandler> =
                Arc::new(move |rt, req, done| handle_copy(&state, rt, req, done));
            reg.register(src, dst, handler);
        }
    }
}

impl std::fmt::Debug for GpuModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("GpuModule")
    }
}
