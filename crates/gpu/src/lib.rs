//! HiPER CUDA module (paper §II-C3) over a simulated accelerator.
//!
//! * [`GpuDevice`] / [`DeviceBuffer`] / [`Stream`] — the simulated device:
//!   two engine threads (kernel + copy, so copies and kernels overlap in
//!   real time), in-order streams, completion markers, and a PCIe transfer
//!   model charged in wall-clock time.
//! * [`GpuModule`] — the pluggable HiPER module: blocking and asynchronous
//!   transfers, asynchronous kernel launches returning futures, launches
//!   predicated on futures (`launch_await`), registration as the handler
//!   for every `async_copy` touching a GPU place, and promise satisfaction
//!   via the shared polling-task technique.

mod device;
mod module;

pub use device::{DeviceBuffer, GpuDevice, OpDone, PcieModel, Stream};
pub use module::GpuModule;
