//! Tests for the simulated device and the CUDA module.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hiper_gpu::{GpuDevice, GpuModule, PcieModel};
use hiper_platform::autogen;
use hiper_runtime::{HostBuffer, MemLoc, RuntimeBuilder, SchedulerModule};

fn fast_pcie() -> PcieModel {
    PcieModel {
        bandwidth: 1e12,
        overhead: Duration::from_micros(1),
    }
}

fn gpu_runtime(workers: usize, gpus: usize) -> (hiper_runtime::Runtime, Arc<GpuModule>) {
    let cfg = autogen::smp_with_gpus(workers, gpus);
    let gpu = GpuModule::with_pcie(fast_pcie());
    let rt = RuntimeBuilder::new(cfg)
        .module(Arc::clone(&gpu) as Arc<dyn SchedulerModule>)
        .build()
        .unwrap();
    (rt, gpu)
}

#[test]
fn device_kernel_and_copies_roundtrip() {
    let dev = GpuDevice::new(0, fast_pcie());
    let stream = dev.create_stream();
    let buf = dev.alloc(8 * 8);
    dev.memcpy_h2d_blocking(&stream, &buf, 0, vec![1u8; 64]);
    // Kernel doubles every byte.
    let b2 = Arc::clone(&buf);
    dev.launch_kernel(&stream, move || {
        b2.with_mut(|bytes| {
            for b in bytes.iter_mut() {
                *b *= 2;
            }
        });
    });
    let out = dev.memcpy_d2h_blocking(&stream, &buf, 0, 64);
    assert_eq!(out, vec![2u8; 64]);
    dev.stop();
}

#[test]
fn stream_operations_are_ordered() {
    let dev = GpuDevice::new(0, fast_pcie());
    let stream = dev.create_stream();
    let buf = dev.alloc(8);
    // Three kernels appending into the same cell; order must hold.
    for i in 1..=3u8 {
        let b = Arc::clone(&buf);
        dev.launch_kernel(&stream, move || {
            b.with_mut(|bytes| {
                bytes[0] = bytes[0] * 10 + i;
            });
        });
    }
    stream.synchronize();
    buf.with(|bytes| assert_eq!(bytes[0], 123));
    dev.stop();
}

#[test]
fn different_streams_may_overlap() {
    // A slow copy on stream A must not delay an independent kernel on
    // stream B (separate engines).
    let dev = GpuDevice::new(
        0,
        PcieModel {
            bandwidth: 1e6, // 1 MB/s: 100KB takes 100ms
            overhead: Duration::ZERO,
        },
    );
    let sa = dev.create_stream();
    let sb = dev.create_stream();
    let buf = dev.alloc(100_000);
    let copy_op = dev.memcpy_h2d_async(&sa, &buf, 0, vec![0u8; 100_000]);
    let start = Instant::now();
    let kernel_op = dev.launch_kernel(&sb, || {});
    kernel_op.wait();
    assert!(
        start.elapsed() < Duration::from_millis(50),
        "kernel waited on an unrelated copy"
    );
    copy_op.wait();
    dev.stop();
}

#[test]
fn pcie_time_is_charged_in_real_time() {
    let dev = GpuDevice::new(
        0,
        PcieModel {
            bandwidth: 1e6,
            overhead: Duration::ZERO,
        },
    );
    let stream = dev.create_stream();
    let buf = dev.alloc(50_000);
    let start = Instant::now();
    dev.memcpy_h2d_blocking(&stream, &buf, 0, vec![0u8; 50_000]); // 50ms
    assert!(start.elapsed() >= Duration::from_millis(45));
    dev.stop();
}

#[test]
fn typed_views() {
    let dev = GpuDevice::new(0, fast_pcie());
    let buf = dev.alloc(4 * 8);
    buf.with_f64_mut(|vals| {
        for (i, v) in vals.iter_mut().enumerate() {
            *v = i as f64 + 0.5;
        }
    });
    let sum = buf.with_f64(|vals| vals.iter().sum::<f64>());
    assert_eq!(sum, 0.5 + 1.5 + 2.5 + 3.5);
    dev.stop();
}

#[test]
fn module_requires_gpu_place() {
    let cfg = autogen::smp(1);
    let gpu = GpuModule::new();
    let result = RuntimeBuilder::new(cfg)
        .module(gpu as Arc<dyn SchedulerModule>)
        .build();
    assert!(result.is_err());
}

#[test]
fn module_kernel_future_composes_with_tasks() {
    let (rt, gpu) = gpu_runtime(2, 1);
    let rt2 = rt.clone();
    rt.block_on(move || {
        let stream = gpu.create_stream(0);
        let buf = gpu.alloc(0, 8);
        let b = Arc::clone(&buf);
        let kf = gpu.launch_future(&stream, move || {
            b.with_mut(|bytes| bytes[0] = 42);
        });
        // A host task predicated on kernel completion (unified scheduling).
        let after = rt2.spawn_future_await(&kf, move || buf.with(|bytes| bytes[0]));
        assert_eq!(after.get(), 42);
    });
    rt.shutdown();
}

#[test]
fn module_launch_await_waits_for_dependencies() {
    let (rt, gpu) = gpu_runtime(2, 1);
    rt.block_on(move || {
        let stream = gpu.create_stream(0);
        let buf = gpu.alloc(0, 8);
        let b1 = Arc::clone(&buf);
        // Dependency: H2D copy must land before the kernel reads.
        let dep = gpu.memcpy_h2d_future(&stream, &buf, 0, vec![7u8; 8]);
        let b2 = Arc::clone(&buf);
        let kf = gpu.launch_await(&stream, &[dep], move || {
            b2.with_mut(|bytes| bytes[1] = bytes[0] + 1);
        });
        kf.wait();
        assert_eq!(b1.with(|bytes| (bytes[0], bytes[1])), (7, 8));
    });
    rt.shutdown();
}

#[test]
fn async_copy_dispatches_to_cuda_module() {
    // The paper's §II-C3 behaviour: async_copy touching a GPU place is
    // automatically handed to the CUDA module.
    let (rt, gpu) = gpu_runtime(2, 1);
    let rt2 = rt.clone();
    rt.block_on(move || {
        let gpu_place = gpu.place_of(0);
        let home = rt2.here();
        let host = HostBuffer::new(32);
        host.write_bytes(0, &[9u8; 32]);
        let dbuf = gpu.alloc(0, 32);
        // H2D via the generic async_copy API.
        let f1 = rt2.async_copy(
            GpuModule::loc(&dbuf, 0),
            gpu_place,
            MemLoc::host(&host, 0),
            home,
            32,
        );
        f1.wait();
        dbuf.with(|bytes| assert_eq!(bytes, &[9u8; 32]));
        // Mutate on device, then D2H back.
        dbuf.with_mut(|bytes| bytes[0] = 1);
        let back = HostBuffer::new(32);
        let f2 = rt2.async_copy(
            MemLoc::host(&back, 0),
            home,
            GpuModule::loc(&dbuf, 0),
            gpu_place,
            32,
        );
        f2.wait();
        let mut out = [0u8; 32];
        back.read_bytes(0, &mut out);
        assert_eq!(out[0], 1);
        assert_eq!(out[1], 9);
    });
    rt.shutdown();
}

#[test]
fn gpu_to_gpu_async_copy() {
    let (rt, gpu) = gpu_runtime(2, 2);
    let rt2 = rt.clone();
    rt.block_on(move || {
        let a = gpu.alloc(0, 16);
        let b = gpu.alloc(1, 16);
        a.with_mut(|bytes| bytes.fill(5));
        let f = rt2.async_copy(
            GpuModule::loc(&b, 0),
            gpu.place_of(1),
            GpuModule::loc(&a, 0),
            gpu.place_of(0),
            16,
        );
        f.wait();
        b.with(|bytes| assert_eq!(bytes, &[5u8; 16]));
    });
    rt.shutdown();
}

#[test]
fn blocking_copy_stalls_but_async_overlaps() {
    // The GEO effect in miniature: total time of (copy + independent host
    // work) is smaller with the async API.
    let cfg = autogen::smp_with_gpus(1, 1);
    let gpu = GpuModule::with_pcie(PcieModel {
        bandwidth: 1e6, // 40ms for 40KB
        overhead: Duration::ZERO,
    });
    let rt = RuntimeBuilder::new(cfg)
        .module(Arc::clone(&gpu) as Arc<dyn SchedulerModule>)
        .build()
        .unwrap();
    let host_work = Duration::from_millis(30);

    let g = Arc::clone(&gpu);
    let blocking_time = rt.block_on(move || {
        let stream = g.create_stream(0);
        let buf = g.alloc(0, 40_000);
        let start = Instant::now();
        g.memcpy_h2d_blocking(&stream, &buf, 0, vec![0u8; 40_000]); // 40ms
        std::thread::sleep(host_work); // "host work" 30ms
        start.elapsed()
    });

    let g = Arc::clone(&gpu);
    let async_time = rt.block_on(move || {
        let stream = g.create_stream(0);
        let buf = g.alloc(0, 40_000);
        let start = Instant::now();
        let f = g.memcpy_h2d_future(&stream, &buf, 0, vec![0u8; 40_000]);
        std::thread::sleep(host_work); // overlapped host work
        f.wait();
        start.elapsed()
    });

    assert!(
        blocking_time >= Duration::from_millis(65),
        "blocking: {:?}",
        blocking_time
    );
    assert!(
        async_time < blocking_time,
        "async {:?} !< blocking {:?}",
        async_time,
        blocking_time
    );
    rt.shutdown();
}
