//! The "underlying MPI library" (paper §II-C1: the HiPER MPI module relies
//! on a full MPI library — OpenMPI, MVAPICH, … — for the actual messaging).
//!
//! `RawComm` is that library for the simulated cluster: an eager-protocol
//! point-to-point engine with MPI matching semantics (posted-receive queue,
//! unexpected-message queue, `ANY_SOURCE`/`ANY_TAG` wildcards, non-overtaking
//! order per (source, tag)), `MPI_Request`-style nonblocking handles with
//! `test`/`wait`, and the collective algorithms benchmarks need (dissemination
//! barrier, binomial broadcast/reduce, allreduce, gather, allgather,
//! alltoall, alltoallv).
//!
//! Blocking calls park the calling OS thread — exactly like a real MPI
//! library. The latency-hiding comparison in the paper's evaluation hinges on
//! this: baselines call these blocking APIs directly, while the HiPER module
//! wraps the nonblocking ones in futures.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use hiper_netsim::{Channel, Message, Rank, ReliableTransport, RetryConfig, Transport};
use hiper_runtime::ModuleError;
use parking_lot::{Condvar, Mutex};

/// Wildcard source (MPI_ANY_SOURCE analogue).
pub const ANY_SOURCE: Option<Rank> = None;
/// Wildcard tag (MPI_ANY_TAG analogue).
pub const ANY_TAG: Option<u64> = None;

/// Bit 63 marks tags reserved for collective internals.
const INTERNAL: u64 = 1 << 63;

fn internal_tag(op: u8, round: u8, seq: u64) -> u64 {
    INTERNAL | ((op as u64) << 48) | ((round as u64) << 40) | (seq & 0xFF_FFFF_FFFF)
}

mod collop {
    pub const BARRIER: u8 = 1;
    pub const BCAST: u8 = 2;
    pub const REDUCE: u8 = 3;
    pub const GATHER: u8 = 5;
    pub const ALLTOALL: u8 = 7;
    pub const ALLTOALLV: u8 = 8;
    pub const SCAN: u8 = 9;
}

/// Completion status of a receive: payload plus its envelope.
#[derive(Debug, Clone)]
pub struct RecvStatus {
    /// Received payload.
    pub data: Bytes,
    /// Actual source rank.
    pub src: Rank,
    /// Actual tag.
    pub tag: u64,
}

enum ReqState {
    Pending,
    Done(RecvStatus),
}

struct ReqInner {
    state: Mutex<ReqState>,
    cond: Condvar,
}

/// A nonblocking-operation handle (MPI_Request analogue).
#[derive(Clone)]
pub struct Request {
    inner: Arc<ReqInner>,
}

impl Request {
    fn pending() -> Request {
        Request {
            inner: Arc::new(ReqInner {
                state: Mutex::new(ReqState::Pending),
                cond: Condvar::new(),
            }),
        }
    }

    fn completed(status: RecvStatus) -> Request {
        Request {
            inner: Arc::new(ReqInner {
                state: Mutex::new(ReqState::Done(status)),
                cond: Condvar::new(),
            }),
        }
    }

    fn complete(&self, status: RecvStatus) {
        let mut st = self.inner.state.lock();
        debug_assert!(matches!(*st, ReqState::Pending), "request completed twice");
        *st = ReqState::Done(status);
        self.inner.cond.notify_all();
    }

    /// Nonblocking completion check (MPI_Test analogue).
    pub fn test(&self) -> bool {
        matches!(*self.inner.state.lock(), ReqState::Done(_))
    }

    /// Blocks the calling OS thread until complete; returns the status
    /// (MPI_Wait analogue).
    pub fn wait(&self) -> RecvStatus {
        let mut st = self.inner.state.lock();
        loop {
            match &*st {
                ReqState::Done(status) => return status.clone(),
                ReqState::Pending => self.inner.cond.wait(&mut st),
            }
        }
    }

    /// Returns the status if complete.
    pub fn try_status(&self) -> Option<RecvStatus> {
        match &*self.inner.state.lock() {
            ReqState::Done(status) => Some(status.clone()),
            ReqState::Pending => None,
        }
    }
}

impl std::fmt::Debug for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Request")
            .field("done", &self.test())
            .finish()
    }
}

struct PostedRecv {
    src: Option<Rank>,
    tag: Option<u64>,
    req: Request,
}

#[derive(Default)]
struct MatchState {
    posted: Vec<PostedRecv>,
    unexpected: Vec<(Rank, u64, Bytes)>,
}

/// One rank's endpoint of the raw messaging library (MPI_COMM_WORLD).
///
/// All traffic is routed through a [`ReliableTransport`]: with no armed
/// fault plan it is a pass-through, but under fault injection every message
/// is acked, retransmitted with exponential backoff on timeout, and
/// resequenced, so MPI matching semantics survive drops and reordering.
pub struct RawComm {
    transport: Arc<ReliableTransport>,
    state: Mutex<MatchState>,
    coll_seq: AtomicU64,
}

impl RawComm {
    /// Creates the endpoint and registers its delivery handler. Call once
    /// per rank, before any communication.
    pub fn new(transport: Transport) -> Arc<RawComm> {
        let rel = ReliableTransport::new(transport, "mpi", RetryConfig::default());
        let comm = Arc::new(RawComm {
            transport: rel,
            state: Mutex::new(MatchState::default()),
            coll_seq: AtomicU64::new(0),
        });
        let comm2 = Arc::clone(&comm);
        comm.transport
            .register_handler(Channel::MPI, Box::new(move |msg| comm2.on_message(msg)));
        comm
    }

    /// This rank.
    pub fn rank(&self) -> Rank {
        self.transport.rank()
    }

    /// Cluster size.
    pub fn nranks(&self) -> usize {
        self.transport.nranks()
    }

    /// Reliable-delivery health: `Err` once any peer has exhausted its
    /// retry budget (fault injection only).
    pub fn health(&self) -> Result<(), ModuleError> {
        self.transport.health()
    }

    /// Retransmissions performed so far (0 without fault injection).
    pub fn retries(&self) -> u64 {
        self.transport.retry_count()
    }

    /// The underlying reliable endpoint (for stats and message-path
    /// tuning — coalescing config, ack counters).
    pub fn reliable(&self) -> &Arc<ReliableTransport> {
        &self.transport
    }

    fn on_message(&self, msg: Message) {
        let mut st = self.state.lock();
        // Match in posted order (MPI semantics).
        if let Some(idx) = st
            .posted
            .iter()
            .position(|p| p.src.is_none_or(|s| s == msg.src) && p.tag.is_none_or(|t| t == msg.tag))
        {
            let posted = st.posted.remove(idx);
            drop(st);
            posted.req.complete(RecvStatus {
                data: msg.payload,
                src: msg.src,
                tag: msg.tag,
            });
        } else {
            st.unexpected.push((msg.src, msg.tag, msg.payload));
        }
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Eager blocking send: completes locally once the payload is handed to
    /// the transport (MPI_Send with buffered semantics).
    pub fn send(&self, dst: Rank, tag: u64, data: Bytes) {
        debug_assert_eq!(tag & INTERNAL, 0, "tag bit 63 is reserved");
        self.transport.send(dst, Channel::MPI, tag, data);
    }

    /// Nonblocking send (MPI_Isend). Eager: the returned request is already
    /// complete.
    pub fn isend(&self, dst: Rank, tag: u64, data: Bytes) -> Request {
        self.send(dst, tag, data);
        Request::completed(RecvStatus {
            data: Bytes::new(),
            src: self.rank(),
            tag,
        })
    }

    /// Nonblocking receive (MPI_Irecv): matches the unexpected queue first,
    /// then posts.
    pub fn irecv(&self, src: Option<Rank>, tag: Option<u64>) -> Request {
        self.irecv_internal(src, tag)
    }

    fn irecv_internal(&self, src: Option<Rank>, tag: Option<u64>) -> Request {
        let mut st = self.state.lock();
        if let Some(idx) = st.unexpected.iter().position(|(s, t, _)| {
            src.is_none_or(|want| want == *s) && tag.is_none_or(|want| want == *t)
        }) {
            let (s, t, data) = st.unexpected.remove(idx);
            return Request::completed(RecvStatus {
                data,
                src: s,
                tag: t,
            });
        }
        let req = Request::pending();
        st.posted.push(PostedRecv {
            src,
            tag,
            req: req.clone(),
        });
        req
    }

    /// Blocking receive (MPI_Recv): parks the calling OS thread.
    pub fn recv(&self, src: Option<Rank>, tag: Option<u64>) -> RecvStatus {
        self.irecv(src, tag).wait()
    }

    /// Waits for every request (MPI_Waitall).
    pub fn waitall(&self, reqs: &[Request]) -> Vec<RecvStatus> {
        reqs.iter().map(Request::wait).collect()
    }

    // ------------------------------------------------------------------
    // Collectives. All ranks must call each collective in the same order
    // (MPI requirement); a per-rank sequence number keeps consecutive
    // collectives from cross-matching.
    // ------------------------------------------------------------------

    fn next_seq(&self) -> u64 {
        self.coll_seq.fetch_add(1, Ordering::Relaxed)
    }

    fn coll_send(&self, dst: Rank, op: u8, round: u8, seq: u64, data: Bytes) {
        self.transport
            .send(dst, Channel::MPI, internal_tag(op, round, seq), data);
    }

    fn coll_recv(&self, src: Rank, op: u8, round: u8, seq: u64) -> Bytes {
        self.irecv_internal(Some(src), Some(internal_tag(op, round, seq)))
            .wait()
            .data
    }

    /// Dissemination barrier: log2(P) rounds.
    pub fn barrier(&self) {
        let seq = self.next_seq();
        let p = self.nranks();
        let me = self.rank();
        if p == 1 {
            return;
        }
        let mut round = 0u8;
        let mut dist = 1usize;
        while dist < p {
            let dst = (me + dist) % p;
            let src = (me + p - dist) % p;
            self.coll_send(dst, collop::BARRIER, round, seq, Bytes::new());
            let _ = self.coll_recv(src, collop::BARRIER, round, seq);
            dist <<= 1;
            round += 1;
        }
    }

    /// Binomial-tree broadcast from `root`; returns the broadcast payload on
    /// every rank (`data` is ignored on non-roots).
    pub fn bcast(&self, root: Rank, data: Bytes) -> Bytes {
        let seq = self.next_seq();
        let p = self.nranks();
        let me = self.rank();
        if p == 1 {
            return data;
        }
        let rel = (me + p - root) % p;
        let mut buf = data;
        let mut mask = 1usize;
        while mask < p {
            if rel & mask != 0 {
                let src = (me + p - mask) % p;
                buf = self.coll_recv(src, collop::BCAST, 0, seq);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if rel + mask < p {
                let dst = (me + mask) % p;
                self.coll_send(dst, collop::BCAST, 0, seq, buf.clone());
            }
            mask >>= 1;
        }
        buf
    }

    /// Binomial-tree reduction of byte payloads to rank 0 with a caller
    /// `combine`; returns `Some(result)` on rank 0, `None` elsewhere.
    pub fn reduce_bytes(
        &self,
        mine: Bytes,
        combine: &dyn Fn(&[u8], &[u8]) -> Bytes,
    ) -> Option<Bytes> {
        let seq = self.next_seq();
        let p = self.nranks();
        let me = self.rank();
        let mut acc = mine;
        let mut mask = 1usize;
        while mask < p {
            if me & mask != 0 {
                self.coll_send(me - mask, collop::REDUCE, 0, seq, acc);
                return None;
            }
            let src = me + mask;
            if src < p {
                let other = self.coll_recv(src, collop::REDUCE, 0, seq);
                acc = combine(&acc, &other);
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Reduce + broadcast: every rank gets the combined value.
    pub fn allreduce_bytes(&self, mine: Bytes, combine: &dyn Fn(&[u8], &[u8]) -> Bytes) -> Bytes {
        let reduced = self.reduce_bytes(mine, combine);
        self.bcast(0, reduced.unwrap_or_default())
    }

    /// Gather to rank 0: returns `Some(per-rank payloads)` on rank 0.
    pub fn gather(&self, mine: Bytes) -> Option<Vec<Bytes>> {
        let seq = self.next_seq();
        let p = self.nranks();
        let me = self.rank();
        if me == 0 {
            let mut out = vec![Bytes::new(); p];
            out[0] = mine;
            // Receive from each rank; tags disambiguate by (src, seq).
            let reqs: Vec<(Rank, Request)> = (1..p)
                .map(|src| {
                    (
                        src,
                        self.irecv_internal(Some(src), Some(internal_tag(collop::GATHER, 0, seq))),
                    )
                })
                .collect();
            for (src, req) in reqs {
                out[src] = req.wait().data;
            }
            Some(out)
        } else {
            self.coll_send(0, collop::GATHER, 0, seq, mine);
            None
        }
    }

    /// Allgather: every rank gets every rank's payload (gather + bcast of
    /// the concatenation).
    pub fn allgather(&self, mine: Bytes) -> Vec<Bytes> {
        let p = self.nranks();
        let gathered = self.gather(mine);
        // Root concatenates with a length prefix per entry, then broadcasts.
        let packed = gathered.map(|parts| {
            let mut buf = Vec::new();
            for part in &parts {
                buf.extend_from_slice(&(part.len() as u64).to_le_bytes());
                buf.extend_from_slice(part);
            }
            Bytes::from(buf)
        });
        let packed = self.bcast(0, packed.unwrap_or_default());
        // Unpack.
        let mut out = Vec::with_capacity(p);
        let mut off = 0usize;
        for _ in 0..p {
            let mut len8 = [0u8; 8];
            len8.copy_from_slice(&packed[off..off + 8]);
            let len = u64::from_le_bytes(len8) as usize;
            off += 8;
            out.push(packed.slice(off..off + len));
            off += len;
        }
        out
    }

    /// Alltoall: `parts[d]` goes to rank `d`; returns what each rank sent to
    /// us, indexed by source. Implements the O(P²) exchange that makes flat
    /// ISx degrade at scale (paper §III-B).
    pub fn alltoall(&self, parts: Vec<Bytes>) -> Vec<Bytes> {
        let seq = self.next_seq();
        let p = self.nranks();
        let me = self.rank();
        assert_eq!(parts.len(), p, "alltoall requires one part per rank");
        let tag = internal_tag(collop::ALLTOALL, 0, seq);
        // Post all receives first (avoids unexpected-queue churn), then send.
        let reqs: Vec<(Rank, Request)> = (0..p)
            .filter(|&src| src != me)
            .map(|src| (src, self.irecv_internal(Some(src), Some(tag))))
            .collect();
        let mut out = vec![Bytes::new(); p];
        for (dst, part) in parts.into_iter().enumerate() {
            if dst == me {
                out[me] = part;
            } else {
                self.transport.send(dst, Channel::MPI, tag, part);
            }
        }
        for (src, req) in reqs {
            out[src] = req.wait().data;
        }
        out
    }

    /// Alltoallv is alltoall with per-pair sizes; with self-sizing payloads
    /// it is the same exchange under a different internal opcode.
    pub fn alltoallv(&self, parts: Vec<Bytes>) -> Vec<Bytes> {
        let seq = self.next_seq();
        let p = self.nranks();
        let me = self.rank();
        assert_eq!(parts.len(), p);
        let tag = internal_tag(collop::ALLTOALLV, 0, seq);
        let reqs: Vec<(Rank, Request)> = (0..p)
            .filter(|&src| src != me)
            .map(|src| (src, self.irecv_internal(Some(src), Some(tag))))
            .collect();
        let mut out = vec![Bytes::new(); p];
        for (dst, part) in parts.into_iter().enumerate() {
            if dst == me {
                out[me] = part;
            } else {
                self.transport.send(dst, Channel::MPI, tag, part);
            }
        }
        for (src, req) in reqs {
            out[src] = req.wait().data;
        }
        out
    }

    /// Exclusive prefix "sum" over byte payloads (ring algorithm): rank `r`
    /// receives the combination of ranks `0..r`; rank 0 receives `identity`.
    pub fn exscan_bytes(
        &self,
        mine: Bytes,
        identity: Bytes,
        combine: &dyn Fn(&[u8], &[u8]) -> Bytes,
    ) -> Bytes {
        let seq = self.next_seq();
        let p = self.nranks();
        let me = self.rank();
        if me + 1 < p {
            // Pass the running prefix up the ring.
            let prefix = if me == 0 {
                identity.clone()
            } else {
                self.coll_recv(me - 1, collop::SCAN, 0, seq)
            };
            let next = combine(&prefix, &mine);
            self.coll_send(me + 1, collop::SCAN, 0, seq, next);
            prefix
        } else if me == 0 {
            // Single rank.
            identity
        } else {
            self.coll_recv(me - 1, collop::SCAN, 0, seq)
        }
    }
}

impl std::fmt::Debug for RawComm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RawComm(rank {}/{})", self.rank(), self.nranks())
    }
}
