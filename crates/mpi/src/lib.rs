//! HiPER MPI module (paper §II-C1) plus the underlying "MPI library".
//!
//! Layered exactly as the paper describes:
//!
//! * [`RawComm`] is the full MPI library the module relies on for actual
//!   messaging (the role OpenMPI/MVAPICH play in the C++ implementation):
//!   blocking point-to-point with MPI matching semantics, request-based
//!   nonblocking operations, and collectives. Blocking calls park the
//!   calling OS thread — the behaviour the paper's *baseline*
//!   implementations pay for.
//! * [`MpiModule`] is the pluggable HiPER module: blocking APIs are
//!   *taskified* onto the Interconnect place, and nonblocking APIs return
//!   `future_t` objects satisfied by a singleton polling task, enabling
//!   composition of MPI communication with any other HiPER work:
//!
//! ```ignore
//! let fut = mpi.irecv::<f64>(Some(peer), Some(TAG));
//! hiper::async_await(&fut, move || { /* runs on message arrival */ });
//! ```

mod module;
mod raw;
mod typed;

pub use module::MpiModule;
pub use raw::{RawComm, RecvStatus, Request, ANY_SOURCE, ANY_TAG};
pub use typed::{ReduceOp, Reducible};
