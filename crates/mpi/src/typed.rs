//! Typed convenience layer over the byte-oriented [`RawComm`].

use bytes::Bytes;
use hiper_netsim::pod::{from_bytes, to_bytes, Pod};
use hiper_netsim::Rank;

use crate::raw::RawComm;

/// Elementwise reduction operators for [`allreduce`]-style collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
}

/// Element types usable in typed reductions.
pub trait Reducible: Pod + PartialOrd {
    /// Applies `op` to a pair of elements.
    fn combine(op: ReduceOp, a: Self, b: Self) -> Self;
}

macro_rules! impl_reducible {
    ($($t:ty),*) => {$(
        impl Reducible for $t {
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a + b,
                    ReduceOp::Min => if b < a { b } else { a },
                    ReduceOp::Max => if b > a { b } else { a },
                }
            }
        }
    )*};
}

impl_reducible!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

fn combine_bytes<T: Reducible>(op: ReduceOp) -> impl Fn(&[u8], &[u8]) -> Bytes {
    move |a, b| {
        let mut av: Vec<T> = from_bytes(a);
        let bv: Vec<T> = from_bytes(b);
        assert_eq!(av.len(), bv.len(), "reduction length mismatch");
        for (x, y) in av.iter_mut().zip(bv) {
            *x = T::combine(op, *x, y);
        }
        to_bytes(&av)
    }
}

impl RawComm {
    /// Typed blocking send.
    pub fn send_slice<T: Pod>(&self, dst: Rank, tag: u64, data: &[T]) {
        self.send(dst, tag, to_bytes(data));
    }

    /// Typed blocking receive; returns (elements, src, tag).
    pub fn recv_vec<T: Pod>(&self, src: Option<Rank>, tag: Option<u64>) -> (Vec<T>, Rank, u64) {
        let status = self.recv(src, tag);
        (from_bytes(&status.data), status.src, status.tag)
    }

    /// Typed elementwise allreduce.
    pub fn allreduce<T: Reducible>(&self, data: &[T], op: ReduceOp) -> Vec<T> {
        let out = self.allreduce_bytes(to_bytes(data), &combine_bytes::<T>(op));
        from_bytes(&out)
    }

    /// Typed elementwise reduce to rank 0.
    pub fn reduce<T: Reducible>(&self, data: &[T], op: ReduceOp) -> Option<Vec<T>> {
        self.reduce_bytes(to_bytes(data), &combine_bytes::<T>(op))
            .map(|b| from_bytes(&b))
    }

    /// Typed broadcast from `root`.
    pub fn bcast_vec<T: Pod>(&self, root: Rank, data: &[T]) -> Vec<T> {
        from_bytes(&self.bcast(root, to_bytes(data)))
    }

    /// Typed allgather (one element slice per rank, concatenated per rank).
    pub fn allgather_vec<T: Pod>(&self, data: &[T]) -> Vec<Vec<T>> {
        self.allgather(to_bytes(data))
            .into_iter()
            .map(|b| from_bytes(&b))
            .collect()
    }

    /// Typed alltoall: `parts[d]` is sent to rank `d`.
    pub fn alltoall_vec<T: Pod>(&self, parts: Vec<Vec<T>>) -> Vec<Vec<T>> {
        self.alltoall(parts.iter().map(|p| to_bytes(p)).collect())
            .into_iter()
            .map(|b| from_bytes(&b))
            .collect()
    }

    /// Typed alltoallv (variable sizes per destination).
    pub fn alltoallv_vec<T: Pod>(&self, parts: Vec<Vec<T>>) -> Vec<Vec<T>> {
        self.alltoallv(parts.iter().map(|p| to_bytes(p)).collect())
            .into_iter()
            .map(|b| from_bytes(&b))
            .collect()
    }

    /// Typed exclusive scan with `op` (rank r gets the combination over
    /// ranks 0..r; rank 0 gets `identity`).
    pub fn exscan<T: Reducible>(&self, data: &[T], identity: &[T], op: ReduceOp) -> Vec<T> {
        let out = self.exscan_bytes(to_bytes(data), to_bytes(identity), &combine_bytes::<T>(op));
        from_bytes(&out)
    }
}
