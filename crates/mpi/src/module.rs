//! The HiPER MPI module (paper §II-C1).
//!
//! Exposes MPI-shaped APIs that schedule their work on the HiPER runtime:
//!
//! * Blocking APIs use the **taskify** pattern: the underlying library call
//!   is wrapped in a closure, `async_at`-ed to the Interconnect place, and
//!   the caller is blocked (help-first) in a `finish` scope — the four-step
//!   flow of §II-C1.
//! * Nonblocking APIs drop the `MPI_Request` out-argument and **return a
//!   `future_t`** instead, satisfied by a singleton polling task that sweeps
//!   the pending-request list and yields between sweeps (§II-C1 steps 1–4).
//!
//! The module asserts at initialization that the platform model contains an
//! Interconnect place; funnelling every library call through tasks at that
//! place reproduces `MPI_THREAD_FUNNELED` usage of the underlying library.

use std::sync::Arc;

use bytes::Bytes;
use hiper_netsim::pod::{from_bytes, Pod};
use hiper_netsim::{Rank, Transport};
use hiper_platform::{PlaceId, PlaceKind};
use hiper_runtime::{Future, ModuleError, Poller, Promise, Runtime, SchedulerModule};
use parking_lot::RwLock;

use crate::raw::{RawComm, RecvStatus, Request};
use crate::typed::{ReduceOp, Reducible};

/// The HiPER MPI module. Register with [`RuntimeBuilder::module`] and call
/// its methods from tasks (paper code style: `MPI_Isend` returning a
/// future).
///
/// [`RuntimeBuilder::module`]: hiper_runtime::RuntimeBuilder::module
pub struct MpiModule {
    raw: Arc<RawComm>,
    state: RwLock<Option<ModuleState>>,
}

struct ModuleState {
    rt: Runtime,
    interconnect: PlaceId,
    poller: Arc<Poller>,
}

impl MpiModule {
    /// Creates the module for one rank of the simulated cluster.
    pub fn new(transport: Transport) -> Arc<MpiModule> {
        Arc::new(MpiModule {
            raw: RawComm::new(transport),
            state: RwLock::new(None),
        })
    }

    /// The underlying "MPI library" endpoint (what the paper's baselines
    /// call directly).
    pub fn raw(&self) -> &Arc<RawComm> {
        &self.raw
    }

    /// This rank.
    pub fn rank(&self) -> Rank {
        self.raw.rank()
    }

    /// Cluster size.
    pub fn nranks(&self) -> usize {
        self.raw.nranks()
    }

    fn with_state<R>(&self, f: impl FnOnce(&ModuleState) -> R) -> R {
        let guard = self.state.read();
        let state = guard
            .as_ref()
            .expect("MPI module used before runtime initialization");
        f(state)
    }

    /// Taskify helper (§II-C1): run `f` as a task at the Interconnect place
    /// and block the calling task (help-first) until it completes. `op` and
    /// `bytes` tag the stats/trace span (bytes 0 when not meaningful).
    fn taskify<R: Send + 'static>(
        &self,
        op: &'static str,
        bytes: u64,
        f: impl FnOnce() -> R + Send + 'static,
    ) -> R {
        self.with_state(|state| {
            let _t = state.rt.module_stats().time_op("mpi", op, bytes);
            let slot = Arc::new(parking_lot::Mutex::new(None));
            let out = Arc::clone(&slot);
            let fut = state.rt.spawn_future_at(state.interconnect, move || {
                *out.lock() = Some(f());
            });
            fut.wait();
            let result = slot
                .lock()
                .take()
                .expect("taskified call produced no value");
            result
        })
    }

    // ------------------------------------------------------------------
    // Blocking APIs (taskified)
    // ------------------------------------------------------------------

    /// `MPI_Send` (paper's exact example): taskified blocking send.
    pub fn send<T: Pod>(&self, dst: Rank, tag: u64, data: &[T]) {
        let raw = Arc::clone(&self.raw);
        let payload = hiper_netsim::pod::to_bytes(data);
        let bytes = payload.len() as u64;
        self.taskify("send", bytes, move || raw.send(dst, tag, payload));
    }

    /// `MPI_Recv`: taskified blocking receive.
    ///
    /// Note: the *task* at the Interconnect place blocks in the underlying
    /// library, exactly like a funneled MPI thread would; the calling task
    /// is merely descheduled.
    pub fn recv<T: Pod>(&self, src: Option<Rank>, tag: Option<u64>) -> (Vec<T>, Rank, u64) {
        let raw = Arc::clone(&self.raw);
        let status = self.taskify("recv", 0, move || raw.recv(src, tag));
        (from_bytes(&status.data), status.src, status.tag)
    }

    /// `MPI_Barrier`: taskified.
    pub fn barrier(&self) {
        let raw = Arc::clone(&self.raw);
        self.taskify("barrier", 0, move || raw.barrier());
    }

    /// `MPI_Allreduce`: taskified.
    pub fn allreduce<T: Reducible>(&self, data: &[T], op: ReduceOp) -> Vec<T> {
        let raw = Arc::clone(&self.raw);
        let bytes = std::mem::size_of_val(data) as u64;
        let data = data.to_vec();
        self.taskify("allreduce", bytes, move || raw.allreduce(&data, op))
    }

    /// `MPI_Bcast`: taskified.
    pub fn bcast<T: Pod>(&self, root: Rank, data: &[T]) -> Vec<T> {
        let raw = Arc::clone(&self.raw);
        let bytes = std::mem::size_of_val(data) as u64;
        let data = data.to_vec();
        self.taskify("bcast", bytes, move || raw.bcast_vec(root, &data))
    }

    /// `MPI_Alltoallv`: taskified.
    pub fn alltoallv<T: Pod>(&self, parts: Vec<Vec<T>>) -> Vec<Vec<T>> {
        let raw = Arc::clone(&self.raw);
        let bytes: u64 = parts
            .iter()
            .map(|p| std::mem::size_of_val(&p[..]) as u64)
            .sum();
        self.taskify("alltoallv", bytes, move || raw.alltoallv_vec(parts))
    }

    // ------------------------------------------------------------------
    // Nonblocking APIs (future-returning; §II-C1)
    // ------------------------------------------------------------------

    /// `MPI_Isend` with the `MPI_Request` out-argument replaced by a
    /// returned `future_t` (the paper's API change).
    pub fn isend<T: Pod>(&self, dst: Rank, tag: u64, data: &[T]) -> Future<()> {
        let payload = hiper_netsim::pod::to_bytes(data);
        self.isend_bytes(dst, tag, payload)
    }

    /// Byte-level `MPI_Isend`.
    pub fn isend_bytes(&self, dst: Rank, tag: u64, payload: Bytes) -> Future<()> {
        let rt = self.with_state(|s| s.rt.clone());
        let _t = rt
            .module_stats()
            .time_op("mpi", "isend", payload.len() as u64);
        // Step 1: call the asynchronous API directly, producing a request.
        let req = self.raw.isend(dst, tag, payload);
        // Steps 2-4: pending list + polling task + returned future.
        self.future_of(req, |_status| ())
    }

    /// `MPI_Isend` predicated on a dependency (the paper's
    /// `MPI_Isend_await` from the §II-D stencil example).
    pub fn isend_await<T: Pod>(
        &self,
        dst: Rank,
        tag: u64,
        data: impl Fn() -> Vec<T> + Send + Sync + 'static,
        dep: &Future<()>,
    ) -> Future<()> {
        let promise = Promise::new();
        let fut = promise.future();
        let this = self.with_state(|s| (s.rt.clone(), s.interconnect));
        let (rt, interconnect) = this;
        let raw = Arc::clone(&self.raw);
        let promise = parking_lot::Mutex::new(Some(promise));
        dep.on_ready(move || {
            let raw = Arc::clone(&raw);
            let payload = hiper_netsim::pod::to_bytes(&data());
            let p = promise.lock().take().expect("dependency fired twice");
            rt.spawn_at(interconnect, move || {
                raw.send(dst, tag, payload);
                p.put(());
            });
        });
        fut
    }

    /// `MPI_Irecv` returning a future on the received data (request
    /// out-argument removed, §II-C1).
    pub fn irecv<T: Pod>(
        &self,
        src: Option<Rank>,
        tag: Option<u64>,
    ) -> Future<(Vec<T>, Rank, u64)> {
        let rt = self.with_state(|s| s.rt.clone());
        let _t = rt.module_stats().time_op("mpi", "irecv", 0);
        let req = self.raw.irecv(src, tag);
        self.future_of(req, |status| {
            (from_bytes::<T>(&status.data), status.src, status.tag)
        })
    }

    /// Byte-level `MPI_Irecv`.
    pub fn irecv_bytes(&self, src: Option<Rank>, tag: Option<u64>) -> Future<RecvStatus> {
        let req = self.raw.irecv(src, tag);
        self.future_of(req, |status| status)
    }

    /// Wraps a raw request in a future satisfied by the polling task.
    fn future_of<T: Send + 'static>(
        &self,
        req: Request,
        map: impl FnOnce(RecvStatus) -> T + Send + 'static,
    ) -> Future<T> {
        let promise = Promise::new();
        let fut = promise.future();
        self.with_state(|state| {
            let mut slot = Some((promise, map));
            state.poller.submit(
                &state.rt,
                Box::new(move || {
                    if req.test() {
                        let (promise, map) = slot.take().expect("poll after completion");
                        promise.put(map(req.try_status().expect("tested complete")));
                        true
                    } else {
                        false
                    }
                }),
            );
        });
        fut
    }
}

impl SchedulerModule for MpiModule {
    fn name(&self) -> &'static str {
        "mpi"
    }

    fn initialize(&self, rt: &Runtime) -> Result<(), ModuleError> {
        // Platform assertion (§II-C1): a single Interconnect place must
        // exist; all library calls are funneled through tasks placed there.
        let interconnect = rt.place_of_kind(&PlaceKind::Interconnect).ok_or_else(|| {
            ModuleError::new("mpi", "platform model contains no Interconnect place")
        })?;
        let poller = Poller::new("mpi-poll", interconnect);
        *self.state.write() = Some(ModuleState {
            rt: rt.clone(),
            interconnect,
            poller,
        });
        Ok(())
    }

    fn finalize(&self, _rt: &Runtime) {
        // Drop the stored runtime handle to break the module<->runtime Arc
        // cycle.
        *self.state.write() = None;
    }
}

impl std::fmt::Debug for MpiModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MpiModule(rank {}/{})", self.rank(), self.nranks())
    }
}
