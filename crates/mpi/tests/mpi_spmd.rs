//! SPMD tests for the raw library and the HiPER MPI module.

use std::sync::Arc;

use hiper_mpi::{MpiModule, RawComm, ReduceOp};
use hiper_netsim::{NetConfig, SpmdBuilder};
use hiper_runtime::SchedulerModule;

/// Runs `main` on `n` simulated ranks with an MpiModule installed.
fn with_mpi<R: Send + 'static>(
    n: usize,
    workers: usize,
    main: impl Fn(hiper_netsim::RankEnv, Arc<MpiModule>) -> R + Send + Sync + 'static,
) -> Vec<R> {
    SpmdBuilder::new(n)
        .net(NetConfig::default())
        .workers_per_rank(workers)
        .run(
            |_rank, transport| {
                let mpi = MpiModule::new(transport);
                (vec![Arc::clone(&mpi) as Arc<dyn SchedulerModule>], mpi)
            },
            main,
        )
}

#[test]
fn raw_send_recv_pair() {
    let results = with_mpi(2, 1, |env, mpi| {
        let raw = mpi.raw();
        if env.rank == 0 {
            raw.send_slice(1, 5, &[1.0f64, 2.0, 3.0]);
            0.0
        } else {
            let (data, src, tag) = raw.recv_vec::<f64>(Some(0), Some(5));
            assert_eq!(src, 0);
            assert_eq!(tag, 5);
            data.iter().sum()
        }
    });
    assert_eq!(results[1], 6.0);
}

#[test]
fn raw_wildcard_matching() {
    let results = with_mpi(3, 1, |env, mpi| {
        let raw = mpi.raw();
        if env.rank == 0 {
            // Receive two messages from anyone with any tag.
            let a = raw.recv(None, None);
            let b = raw.recv(None, None);
            let mut srcs = vec![a.src, b.src];
            srcs.sort();
            assert_eq!(srcs, vec![1, 2]);
            (a.data.len() + b.data.len()) as u64
        } else {
            raw.send(
                0,
                100 + env.rank as u64,
                bytes::Bytes::from(vec![0u8; env.rank]),
            );
            0
        }
    });
    assert_eq!(results[0], 3);
}

#[test]
fn raw_message_order_preserved_per_source() {
    let results = with_mpi(2, 1, |env, mpi| {
        let raw = mpi.raw();
        if env.rank == 0 {
            for i in 0..20u64 {
                raw.send_slice(1, 9, &[i]);
            }
            Vec::new()
        } else {
            (0..20)
                .map(|_| raw.recv_vec::<u64>(Some(0), Some(9)).0[0])
                .collect()
        }
    });
    assert_eq!(results[1], (0..20).collect::<Vec<u64>>());
}

#[test]
fn raw_unexpected_messages_buffered() {
    let results = with_mpi(2, 1, |env, mpi| {
        let raw = mpi.raw();
        if env.rank == 0 {
            raw.send_slice(1, 1, &[10u64]);
            raw.send_slice(1, 2, &[20u64]);
            0
        } else {
            // Sleep so both messages land unexpected, then receive in
            // reverse tag order.
            std::thread::sleep(std::time::Duration::from_millis(30));
            let b = raw.recv_vec::<u64>(Some(0), Some(2)).0[0];
            let a = raw.recv_vec::<u64>(Some(0), Some(1)).0[0];
            a + b * 100
        }
    });
    assert_eq!(results[1], 2010);
}

#[test]
fn barrier_synchronizes() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let arrived = Arc::new(AtomicUsize::new(0));
    let a2 = Arc::clone(&arrived);
    let results = with_mpi(4, 1, move |env, mpi| {
        let raw = mpi.raw();
        // Stagger arrival.
        std::thread::sleep(std::time::Duration::from_millis(env.rank as u64 * 10));
        a2.fetch_add(1, Ordering::SeqCst);
        raw.barrier();
        // After the barrier, everyone must have arrived.
        a2.load(Ordering::SeqCst)
    });
    assert!(results.iter().all(|&r| r == 4), "{:?}", results);
}

#[test]
fn collectives_match_serial_oracle() {
    let n = 5; // deliberately non-power-of-two
    let results = with_mpi(n, 1, move |env, mpi| {
        let raw = mpi.raw();
        let me = env.rank as u64;

        // allreduce sum of [me, me*2]
        let sum = raw.allreduce(&[me, me * 2], ReduceOp::Sum);
        let expect: u64 = (0..n as u64).sum();
        assert_eq!(sum, vec![expect, expect * 2]);

        // allreduce min/max
        let mn = raw.allreduce(&[me as i64 - 2], ReduceOp::Min);
        assert_eq!(mn, vec![-2]);
        let mx = raw.allreduce(&[me as f64], ReduceOp::Max);
        assert_eq!(mx, vec![(n - 1) as f64]);

        // bcast from rank 2
        let got = raw.bcast_vec(2, &[me * 7]);
        assert_eq!(got, vec![14]);

        // gather to 0
        let gathered = raw.gather(bytes::Bytes::from(vec![env.rank as u8; env.rank + 1]));
        if env.rank == 0 {
            let parts = gathered.unwrap();
            for (r, part) in parts.iter().enumerate() {
                assert_eq!(part.len(), r + 1);
                assert!(part.iter().all(|&b| b == r as u8));
            }
        }

        // allgather
        let all = raw.allgather_vec(&[me, me + 100]);
        for (r, part) in all.iter().enumerate() {
            assert_eq!(part, &vec![r as u64, r as u64 + 100]);
        }

        // exscan (exclusive prefix sum)
        let pre = raw.exscan(&[me], &[0u64], ReduceOp::Sum);
        assert_eq!(pre, vec![(0..me).sum::<u64>()]);

        true
    });
    assert!(results.into_iter().all(|ok| ok));
}

#[test]
fn alltoall_delivers_pairwise() {
    let n = 4;
    let results = with_mpi(n, 1, move |env, mpi| {
        let raw = mpi.raw();
        // parts[d] = [me*10 + d]
        let parts: Vec<Vec<u64>> = (0..n).map(|d| vec![(env.rank * 10 + d) as u64]).collect();
        let got = raw.alltoall_vec(parts);
        // got[s] must be [s*10 + me]
        (0..n).all(|s| got[s] == vec![(s * 10 + env.rank) as u64])
    });
    assert!(results.into_iter().all(|ok| ok));
}

#[test]
fn alltoallv_variable_sizes() {
    let n = 3;
    let results = with_mpi(n, 1, move |env, mpi| {
        let raw = mpi.raw();
        // Send (me + d + 1) copies of marker me to rank d.
        let parts: Vec<Vec<u8>> = (0..n)
            .map(|d| vec![env.rank as u8; env.rank + d + 1])
            .collect();
        let got = raw.alltoallv_vec::<u8>(parts);
        (0..n).all(|s| got[s].len() == s + env.rank + 1 && got[s].iter().all(|&b| b == s as u8))
    });
    assert!(results.into_iter().all(|ok| ok));
}

#[test]
fn module_send_recv_taskified() {
    let results = with_mpi(2, 2, |env, mpi| {
        if env.rank == 0 {
            mpi.send(1, 3, &[9.5f64, 0.5]);
            0.0
        } else {
            let (data, src, _) = mpi.recv::<f64>(Some(0), Some(3));
            assert_eq!(src, 0);
            data.iter().sum()
        }
    });
    assert_eq!(results[1], 10.0);
}

#[test]
fn module_isend_irecv_futures() {
    let results = with_mpi(2, 2, |env, mpi| {
        if env.rank == 0 {
            let f = mpi.isend(1, 7, &[42u64]);
            f.wait();
            0
        } else {
            let fut = mpi.irecv::<u64>(Some(0), Some(7));
            // Compose: a dependent task fires on message arrival (paper's
            // `async_await(body, fut)` pattern).
            let done = hiper_runtime::api::async_future_await(&fut, || 1u64);
            let (data, _, _) = fut.get();
            data[0] + done.get()
        }
    });
    assert_eq!(results[1], 43);
}

#[test]
fn module_overlaps_communication_with_computation() {
    // The heart of the paper: an irecv future lets the runtime do useful
    // work during the (real-time) network latency.
    let results = with_mpi(2, 1, |env, mpi| {
        if env.rank == 0 {
            std::thread::sleep(std::time::Duration::from_millis(20));
            mpi.send(1, 1, &[1u8]);
            0u64
        } else {
            let fut = mpi.irecv_bytes(Some(0), Some(1));
            // While the message is in flight, run 1000 small tasks.
            let mut count = 0u64;
            hiper_runtime::api::finish(|| {
                for _ in 0..1000 {
                    hiper_runtime::api::async_(|| {
                        std::hint::black_box(0u64);
                    });
                }
            })
            .expect("no task panicked");
            count += 1000;
            fut.wait();
            count
        }
    });
    assert_eq!(results[1], 1000);
}

#[test]
fn module_barrier_and_allreduce() {
    let results = with_mpi(3, 2, |env, mpi| {
        mpi.barrier();
        let s = mpi.allreduce(&[env.rank as u64 + 1], ReduceOp::Sum);
        mpi.barrier();
        s[0]
    });
    assert_eq!(results, vec![6, 6, 6]);
}

#[test]
fn module_stats_record_mpi_time() {
    let results = with_mpi(2, 1, |env, mpi| {
        if env.rank == 0 {
            mpi.send(1, 2, &[0u8]);
        } else {
            let _ = mpi.recv::<u8>(Some(0), Some(2));
        }
        let snap = env.runtime.module_stats().snapshot();
        snap.iter()
            .any(|(name, calls, _)| name == "mpi" && *calls > 0)
    });
    assert!(results.into_iter().all(|ok| ok));
}

#[test]
fn many_ranks_ring() {
    // Each rank sends to (rank+1) % n and receives from (rank-1) % n.
    let n = 8;
    let results = with_mpi(n, 1, move |env, mpi| {
        let raw = mpi.raw();
        let next = (env.rank + 1) % n;
        let prev = (env.rank + n - 1) % n;
        raw.send_slice(next, 11, &[env.rank as u64]);
        let (data, src, _) = raw.recv_vec::<u64>(Some(prev), Some(11));
        assert_eq!(src, prev);
        data[0]
    });
    for (r, got) in results.iter().enumerate() {
        assert_eq!(*got, ((r + n - 1) % n) as u64);
    }
}

/// Standalone RawComm use (no HiPER runtime at all): models the paper's
/// "flat MPI" baselines.
#[test]
fn rawcomm_without_runtime() {
    let cluster = hiper_netsim::Cluster::start(2, NetConfig::default());
    let t0 = cluster.transport(0);
    let t1 = cluster.transport(1);
    let c0 = RawComm::new(t0);
    let c1 = RawComm::new(t1);
    let h = std::thread::spawn(move || {
        let (v, _, _) = c1.recv_vec::<u32>(Some(0), Some(1));
        v[0]
    });
    c0.send_slice(1, 1, &[77u32]);
    assert_eq!(h.join().unwrap(), 77);
    cluster.stop();
}
