//! Always-on metrics for HiPER (paper §V).
//!
//! Where `hiper-trace` records *events* for post-mortem timelines, this
//! crate maintains *aggregates* that are cheap enough to leave compiled into
//! every hot path and query at any time: monotonic counters, gauges, and
//! log₂-bucketed latency histograms (p50/p90/p99/max), exposed as
//! Prometheus/OpenMetrics text via [`dump_openmetrics`].
//!
//! # Cost model
//!
//! Collection is disabled by default. Every instrumentation site checks one
//! global `AtomicBool` with a relaxed load — the same discipline as the
//! trace rings — so the disabled overhead on the fanout microbench stays
//! within noise (measured in `BENCH_metrics_overhead.json`). When enabled,
//! a counter bump is one relaxed `fetch_add` on a cache-line-padded
//! per-thread shard; a histogram record is three relaxed RMWs plus one
//! relaxed `fetch_max` on the calling thread's shard. No locks, no
//! allocation, no cross-thread cache traffic on any record path.
//!
//! # Usage
//!
//! ```
//! // In a binary: honor --metrics[=FILE] / HIPER_METRICS.
//! let session = hiper_metrics::session_from_env_args();
//! // ... run instrumented work ...
//! drop(session); // dumps the OpenMetrics text to the file (or stderr)
//! ```
//!
//! Metric handles are interned once and live for the process lifetime;
//! hot sites cache the `&'static` handle in a `OnceLock` so steady-state
//! recording never touches the registry lock.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use parking_lot::RwLock;

/// Number of per-metric shards. Threads are assigned shards round-robin;
/// more shards than concurrent writers just wastes cache lines.
const NSHARDS: usize = 16;

/// Histogram bucket count: bucket `i` holds values in `[2^i, 2^(i+1))`
/// (bucket 0 also holds zero), so bucket 63 holds everything from `2^63`
/// up to and including `u64::MAX`.
pub const HIST_BUCKETS: usize = 64;

/// Global on/off switch, mirrored from the trace-ring discipline: relaxed
/// loads on every record path, SeqCst store on flips.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when metric collection is on. One relaxed load; check this before
/// computing values (clock reads) on hot paths.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off. Aggregates already recorded are kept.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Pads (and aligns) a value to 128 bytes so adjacent shards never share a
/// cache line (covers the x86 spatial-prefetcher pair and 128-byte arm64
/// lines).
#[derive(Debug, Default)]
#[repr(align(128))]
struct CachePadded<T>(T);

static SHARD_SEQ: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard index, assigned round-robin on first use.
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn shard_index() -> usize {
    MY_SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = SHARD_SEQ.fetch_add(1, Ordering::Relaxed) % NSHARDS;
        s.set(v);
        v
    })
}

// ---------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------

/// A monotonic counter, sharded so concurrent writers never bounce a line.
#[derive(Debug)]
pub struct Counter {
    shards: Box<[CachePadded<AtomicU64>]>,
}

impl Default for Counter {
    fn default() -> Counter {
        Counter {
            shards: (0..NSHARDS).map(|_| CachePadded::default()).collect(),
        }
    }
}

impl Counter {
    /// Adds `n` on the calling thread's shard (one relaxed fetch_add).
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

// ---------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------

/// A point-in-time signed value (queue depths, in-flight counts). Unsharded:
/// gauges are set/adjusted at event rates far below counter rates, and a
/// sharded gauge cannot support `set`.
#[derive(Debug, Default)]
pub struct Gauge {
    /// i64 stored in two's complement.
    value: AtomicU64,
    /// High-water mark of `value` (i64 bits), for peak-depth reporting.
    peak: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v as u64, Ordering::Relaxed);
        self.bump_peak(v);
    }

    /// Adjusts the gauge by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        let prev = self.value.fetch_add(delta as u64, Ordering::Relaxed) as i64;
        self.bump_peak(prev.wrapping_add(delta));
    }

    #[inline]
    fn bump_peak(&self, v: i64) {
        let mut cur = self.peak.load(Ordering::Relaxed) as i64;
        while v > cur {
            match self.peak.compare_exchange_weak(
                cur as u64,
                v as u64,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen as i64,
            }
        }
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed) as i64
    }

    /// Highest value ever set/reached.
    pub fn peak(&self) -> i64 {
        self.peak.load(Ordering::Relaxed) as i64
    }
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

/// The log₂ bucket a value falls into: `floor(log2(v))`, with 0 mapping to
/// bucket 0. Covers the full `u64` range (`u64::MAX` lands in bucket 63).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

/// The exclusive upper bound of bucket `i` (`2^(i+1)`), saturating at
/// `u64::MAX` for the last bucket.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 >= 64 {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

#[derive(Debug)]
struct HistShard {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistShard {
    fn default() -> HistShard {
        HistShard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A lock-free log₂-bucketed histogram of `u64` samples (latencies in ns,
/// sizes in bytes). Sharded per thread; shards are merged only on snapshot.
#[derive(Debug)]
pub struct Histogram {
    shards: Box<[CachePadded<HistShard>]>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            shards: (0..NSHARDS).map(|_| CachePadded::default()).collect(),
        }
    }
}

impl Histogram {
    /// Records one sample on the calling thread's shard.
    #[inline]
    pub fn record(&self, v: u64) {
        let shard = &self.shards[shard_index()].0;
        shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
        shard.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Merges every shard into a plain-data snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::default();
        for shard in self.shards.iter() {
            let s = &shard.0;
            for (i, b) in s.buckets.iter().enumerate() {
                snap.buckets[i] += b.load(Ordering::Relaxed);
            }
            snap.count += s.count.load(Ordering::Relaxed);
            snap.sum += s.sum.load(Ordering::Relaxed);
            snap.max = snap.max.max(s.max.load(Ordering::Relaxed));
        }
        snap
    }
}

/// Plain-data merge of a [`Histogram`]'s shards.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts; bucket `i` holds `[2^i, 2^(i+1))`.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample observed.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Approximate quantile: the upper bound of the bucket holding the
    /// q-th sample, clamped to the observed max (so `quantile(1.0)` never
    /// exceeds `max`). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Adds another snapshot's samples into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Bucket-wise difference `self - base`: the samples recorded between
    /// the `base` capture and this one. Histograms are monotone, so on a
    /// live registry this is exact; stale or mismatched inputs saturate at
    /// zero instead of wrapping. `max` keeps this snapshot's value — the
    /// true window maximum is unrecoverable from two cumulative captures,
    /// so the reported max is an upper bound.
    pub fn saturating_sub(&self, base: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: self.count.saturating_sub(base.count),
            sum: self.sum.saturating_sub(base.sum),
            max: self.max,
        };
        for (i, o) in out.buckets.iter_mut().enumerate() {
            *o = self.buckets[i].saturating_sub(base.buckets[i]);
        }
        out
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

enum MetricKind {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

struct Entry {
    /// Base metric name (OpenMetrics conventions: counters end in
    /// `_total`, durations carry their unit, e.g. `_ns`).
    name: &'static str,
    /// Rendered label pairs without braces (`module="mpi",op="send"`), or
    /// empty for an unlabeled metric.
    labels: String,
    metric: MetricKind,
}

struct Registry {
    entries: RwLock<Vec<Entry>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        entries: RwLock::new(Vec::new()),
    })
}

fn lookup_or_insert(
    name: &'static str,
    labels: String,
    make: impl FnOnce() -> MetricKind,
) -> usize {
    let reg = registry();
    {
        let entries = reg.entries.read();
        if let Some(i) = entries
            .iter()
            .position(|e| e.name == name && e.labels == labels)
        {
            return i;
        }
    }
    let mut entries = reg.entries.write();
    if let Some(i) = entries
        .iter()
        .position(|e| e.name == name && e.labels == labels)
    {
        return i;
    }
    entries.push(Entry {
        name,
        labels,
        metric: make(),
    });
    entries.len() - 1
}

/// Interns (or retrieves) the counter `name`. The handle is `'static`; hot
/// sites should cache it in a `OnceLock` rather than re-resolving.
pub fn counter(name: &'static str) -> &'static Counter {
    counter_labeled(name, String::new())
}

/// Interns a counter with pre-rendered label pairs (no braces).
pub fn counter_labeled(name: &'static str, labels: String) -> &'static Counter {
    let i = lookup_or_insert(name, labels, || {
        MetricKind::Counter(Box::leak(Box::default()))
    });
    match registry().entries.read()[i].metric {
        MetricKind::Counter(c) => c,
        _ => panic!("metric {} registered with a different type", name),
    }
}

/// Interns (or retrieves) the gauge `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let i = lookup_or_insert(name, String::new(), || {
        MetricKind::Gauge(Box::leak(Box::default()))
    });
    match registry().entries.read()[i].metric {
        MetricKind::Gauge(g) => g,
        _ => panic!("metric {} registered with a different type", name),
    }
}

/// Interns (or retrieves) the histogram `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    histogram_labeled(name, String::new())
}

/// Interns a histogram with pre-rendered label pairs (no braces).
pub fn histogram_labeled(name: &'static str, labels: String) -> &'static Histogram {
    let i = lookup_or_insert(name, labels, || {
        MetricKind::Histogram(Box::leak(Box::default()))
    });
    match registry().entries.read()[i].metric {
        MetricKind::Histogram(h) => h,
        _ => panic!("metric {} registered with a different type", name),
    }
}

// ---------------------------------------------------------------------
// Per-module op metrics
// ---------------------------------------------------------------------

/// Aggregates for one pluggable-module operation: call latency and payload
/// bytes moved. Returned by [`module_op`]; module shims record into it on
/// every timed API call when metrics are enabled.
pub struct OpMetrics {
    /// Latency distribution of this op, ns.
    pub latency_ns: &'static Histogram,
    /// Total payload bytes this op has moved.
    pub bytes: &'static Counter,
}

/// Interns (or retrieves) the metrics handle for (`module`, `op`). The
/// lookup is a read-mostly map keyed on the static name pair; callers on
/// genuinely hot paths should cache the returned reference.
pub fn module_op(module: &'static str, op: &'static str) -> &'static OpMetrics {
    type OpTable = Vec<((&'static str, &'static str), &'static OpMetrics)>;
    static OPS: OnceLock<RwLock<OpTable>> = OnceLock::new();
    let ops = OPS.get_or_init(|| RwLock::new(Vec::new()));
    {
        let map = ops.read();
        if let Some((_, m)) = map.iter().find(|(k, _)| *k == (module, op)) {
            return m;
        }
    }
    let mut map = ops.write();
    if let Some((_, m)) = map.iter().find(|(k, _)| *k == (module, op)) {
        return m;
    }
    let labels = if op.is_empty() {
        label_pair("module", module)
    } else {
        format!("{},{}", label_pair("module", module), label_pair("op", op))
    };
    let m: &'static OpMetrics = Box::leak(Box::new(OpMetrics {
        latency_ns: histogram_labeled("hiper_module_op_latency_ns", labels.clone()),
        bytes: counter_labeled("hiper_module_op_bytes_total", labels),
    }));
    map.push(((module, op), m));
    m
}

// ---------------------------------------------------------------------
// Machine-readable snapshots (differential profiling)
// ---------------------------------------------------------------------

/// Plain-data value of one registry entry at capture time.
#[derive(Debug, Clone)]
pub enum SnapshotValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Point-in-time gauge value and its high-water mark.
    Gauge { value: i64, peak: i64 },
    /// Merged histogram shards (boxed: a snapshot is ~0.5KB of buckets,
    /// far larger than the other variants).
    Histogram(Box<HistogramSnapshot>),
}

/// One `(name, labels)` series captured by [`snapshot`].
#[derive(Debug, Clone)]
pub struct SnapshotEntry {
    /// Base metric name (OpenMetrics conventions).
    pub name: String,
    /// Rendered label pairs without braces, or empty for unlabeled.
    pub labels: String,
    /// The captured value.
    pub value: SnapshotValue,
}

/// A machine-readable capture of every registered metric, sorted by
/// `(name, labels)`. Unlike the OpenMetrics text dump this round-trips
/// through JSON losslessly enough to *subtract*: the differential profiler
/// captures one snapshot before and one after a run and diffs them with
/// [`MetricsSnapshot::delta_since`], isolating the run's own samples from
/// the process-global accumulation.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Captured series, sorted by `(name, labels)`.
    pub entries: Vec<SnapshotEntry>,
}

/// Captures every registered metric (see [`MetricsSnapshot`]).
pub fn snapshot() -> MetricsSnapshot {
    let entries = registry().entries.read();
    let mut out: Vec<SnapshotEntry> = entries
        .iter()
        .map(|e| SnapshotEntry {
            name: e.name.to_string(),
            labels: e.labels.clone(),
            value: match e.metric {
                MetricKind::Counter(c) => SnapshotValue::Counter(c.value()),
                MetricKind::Gauge(g) => SnapshotValue::Gauge {
                    value: g.value(),
                    peak: g.peak(),
                },
                MetricKind::Histogram(h) => SnapshotValue::Histogram(Box::new(h.snapshot())),
            },
        })
        .collect();
    out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    MetricsSnapshot { entries: out }
}

/// Captures every registered metric and renders it as JSON — the
/// machine-readable sibling of [`dump_openmetrics`].
pub fn snapshot_json() -> String {
    snapshot().to_json()
}

impl MetricsSnapshot {
    /// The captured value of the `(name, labels)` series, if present.
    pub fn get(&self, name: &str, labels: &str) -> Option<&SnapshotValue> {
        self.entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
            .map(|e| &e.value)
    }

    /// Merges every histogram series named `name` (across label sets) into
    /// one snapshot. `None` when no histogram with that name was captured.
    pub fn merged_histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        let mut merged: Option<HistogramSnapshot> = None;
        for e in &self.entries {
            if e.name != name {
                continue;
            }
            if let SnapshotValue::Histogram(h) = &e.value {
                merged
                    .get_or_insert_with(HistogramSnapshot::default)
                    .merge(h);
            }
        }
        merged
    }

    /// The samples recorded between `base` and this capture: counters and
    /// histograms subtract (saturating); gauges keep this capture's
    /// point-in-time value. Series absent from `base` pass through whole.
    pub fn delta_since(&self, base: &MetricsSnapshot) -> MetricsSnapshot {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let value = match (&e.value, base.get(&e.name, &e.labels)) {
                    (SnapshotValue::Counter(c), Some(SnapshotValue::Counter(b))) => {
                        SnapshotValue::Counter(c.saturating_sub(*b))
                    }
                    (SnapshotValue::Histogram(h), Some(SnapshotValue::Histogram(b))) => {
                        SnapshotValue::Histogram(Box::new(h.saturating_sub(b)))
                    }
                    (v, _) => v.clone(),
                };
                SnapshotEntry {
                    name: e.name.clone(),
                    labels: e.labels.clone(),
                    value,
                }
            })
            .collect();
        MetricsSnapshot { entries }
    }

    /// Renders the snapshot as JSON. Numbers ride in f64 (the parser's
    /// only numeric type); counts and nanosecond sums stay exact through
    /// 2^53, far beyond any single run this gate measures.
    pub fn to_json(&self) -> String {
        use hiper_platform::json::Json;
        let mut doc = std::collections::BTreeMap::new();
        doc.insert("snapshot".to_string(), Json::from("hiper-metrics"));
        let metrics: Vec<Json> = self
            .entries
            .iter()
            .map(|e| {
                let mut obj = std::collections::BTreeMap::new();
                obj.insert("name".to_string(), Json::from(e.name.as_str()));
                if !e.labels.is_empty() {
                    obj.insert("labels".to_string(), Json::from(e.labels.as_str()));
                }
                match &e.value {
                    SnapshotValue::Counter(c) => {
                        obj.insert("type".to_string(), Json::from("counter"));
                        obj.insert("value".to_string(), Json::Number(*c as f64));
                    }
                    SnapshotValue::Gauge { value, peak } => {
                        obj.insert("type".to_string(), Json::from("gauge"));
                        obj.insert("value".to_string(), Json::Number(*value as f64));
                        obj.insert("peak".to_string(), Json::Number(*peak as f64));
                    }
                    SnapshotValue::Histogram(h) => {
                        obj.insert("type".to_string(), Json::from("histogram"));
                        obj.insert("count".to_string(), Json::Number(h.count as f64));
                        obj.insert("sum".to_string(), Json::Number(h.sum as f64));
                        obj.insert("max".to_string(), Json::Number(h.max as f64));
                        let buckets: Vec<Json> = h
                            .buckets
                            .iter()
                            .enumerate()
                            .filter(|(_, &n)| n > 0)
                            .map(|(i, &n)| {
                                Json::Array(vec![Json::Number(i as f64), Json::Number(n as f64)])
                            })
                            .collect();
                        obj.insert("buckets".to_string(), Json::Array(buckets));
                    }
                }
                Json::Object(obj)
            })
            .collect();
        doc.insert("metrics".to_string(), Json::Array(metrics));
        let mut out = Json::Object(doc).pretty();
        out.push('\n');
        out
    }

    /// Parses a document written by [`MetricsSnapshot::to_json`].
    pub fn parse_json(text: &str) -> Result<MetricsSnapshot, String> {
        use hiper_platform::json::Json;
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let metrics = doc
            .get("metrics")
            .and_then(Json::as_array)
            .ok_or("missing metrics array")?;
        let mut entries = Vec::with_capacity(metrics.len());
        for m in metrics {
            let name = m
                .get("name")
                .and_then(Json::as_str)
                .ok_or("metric missing name")?
                .to_string();
            let labels = m
                .get("labels")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            let num = |k: &str| m.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            let value = match m.get("type").and_then(Json::as_str) {
                Some("counter") => SnapshotValue::Counter(num("value") as u64),
                Some("gauge") => SnapshotValue::Gauge {
                    value: num("value") as i64,
                    peak: num("peak") as i64,
                },
                Some("histogram") => {
                    let mut h = HistogramSnapshot {
                        count: num("count") as u64,
                        sum: num("sum") as u64,
                        max: num("max") as u64,
                        ..HistogramSnapshot::default()
                    };
                    for pair in m
                        .get("buckets")
                        .and_then(Json::as_array)
                        .unwrap_or(&[])
                        .iter()
                    {
                        let pair = pair.as_array().unwrap_or(&[]);
                        let idx = pair.first().and_then(Json::as_f64).unwrap_or(0.0) as usize;
                        let n = pair.get(1).and_then(Json::as_f64).unwrap_or(0.0) as u64;
                        if idx < HIST_BUCKETS {
                            h.buckets[idx] = n;
                        }
                    }
                    SnapshotValue::Histogram(Box::new(h))
                }
                other => return Err(format!("metric {} has bad type {:?}", name, other)),
            };
            entries.push(SnapshotEntry {
                name,
                labels,
                value,
            });
        }
        Ok(MetricsSnapshot { entries })
    }
}

// ---------------------------------------------------------------------
// OpenMetrics exposition
// ---------------------------------------------------------------------

/// Escapes a label value per the Prometheus/OpenMetrics text format:
/// backslash, double quote, and newline must be backslash-escaped.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Renders one `key="value"` label pair with the value escaped. Callers
/// building pre-rendered label strings for [`counter_labeled`] /
/// [`histogram_labeled`] should compose them from this (joined with `,`)
/// so the exposition stays parseable whatever the values contain.
pub fn label_pair(key: &str, value: &str) -> String {
    format!("{}=\"{}\"", key, escape_label_value(value))
}

/// Escapes `# HELP` text: only backslash and newline are special there.
fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Help text for the metrics hiper itself registers. Names outside the
/// table get a generic line so every family still carries `# HELP`.
fn help_for(name: &str) -> &'static str {
    match name {
        "hiper_module_op_latency_ns" => "Latency of pluggable-module operations, in nanoseconds.",
        "hiper_module_op_bytes_total" => "Payload bytes moved by pluggable-module operations.",
        "hiper_reliable_retransmits_total" => {
            "Frames retransmitted by the reliable transport after ack timeout."
        }
        "hiper_netsim_in_flight" => "Messages currently in flight on the simulated interconnect.",
        "hiper_spans_active" => "Traced task spans currently executing across all runtimes.",
        "hiper_watchdog_stalls_detected" => "No-global-progress stalls the watchdog has detected.",
        "hiper_bench_record_cost_ns" => "Cost of one histogram record call, in nanoseconds.",
        _ => "No description registered.",
    }
}

fn labelled(name: &str, labels: &str, extra: &str) -> String {
    match (labels.is_empty(), extra.is_empty()) {
        (true, true) => name.to_string(),
        (true, false) => format!("{}{{{}}}", name, extra),
        (false, true) => format!("{}{{{}}}", name, labels),
        (false, false) => format!("{}{{{},{}}}", name, labels, extra),
    }
}

/// Renders every registered metric in the Prometheus/OpenMetrics text
/// format: a `# HELP`/`# TYPE` header per family, counters and gauges as
/// single samples, histograms as cumulative `_bucket{le=...}` series
/// (powers of two, up to the highest non-empty bucket) plus `_sum` and
/// `_count`.
pub fn dump_openmetrics() -> String {
    let entries = registry().entries.read();
    // Stable output: sort by (name, labels) without disturbing the registry.
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by(|&a, &b| {
        (entries[a].name, &entries[a].labels).cmp(&(entries[b].name, &entries[b].labels))
    });
    let mut out = String::new();
    let mut last_name = "";
    for &i in &order {
        let e = &entries[i];
        if e.name != last_name {
            let kind = match e.metric {
                MetricKind::Counter(_) => "counter",
                MetricKind::Gauge(_) => "gauge",
                MetricKind::Histogram(_) => "histogram",
            };
            out.push_str(&format!(
                "# HELP {} {}\n",
                e.name,
                escape_help(help_for(e.name))
            ));
            out.push_str(&format!("# TYPE {} {}\n", e.name, kind));
            last_name = e.name;
        }
        match e.metric {
            MetricKind::Counter(c) => {
                out.push_str(&format!(
                    "{} {}\n",
                    labelled(e.name, &e.labels, ""),
                    c.value()
                ));
            }
            MetricKind::Gauge(g) => {
                out.push_str(&format!(
                    "{} {}\n",
                    labelled(e.name, &e.labels, ""),
                    g.value()
                ));
            }
            MetricKind::Histogram(h) => {
                let snap = h.snapshot();
                let highest = snap
                    .buckets
                    .iter()
                    .rposition(|&n| n > 0)
                    .map(|i| i + 1)
                    .unwrap_or(0);
                let mut cumulative = 0;
                for (b, &n) in snap.buckets.iter().enumerate().take(highest) {
                    cumulative += n;
                    let le = format!("le=\"{}\"", bucket_upper_bound(b));
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        e.name,
                        format_args!(
                            "{{{}}}",
                            if e.labels.is_empty() {
                                le.clone()
                            } else {
                                format!("{},{}", e.labels, le)
                            }
                        ),
                        cumulative
                    ));
                }
                let inf = if e.labels.is_empty() {
                    "le=\"+Inf\"".to_string()
                } else {
                    format!("{},le=\"+Inf\"", e.labels)
                };
                out.push_str(&format!("{}_bucket{{{}}} {}\n", e.name, inf, snap.count));
                out.push_str(&format!(
                    "{} {}\n",
                    labelled(&format!("{}_sum", e.name), &e.labels, ""),
                    snap.sum
                ));
                out.push_str(&format!(
                    "{} {}\n",
                    labelled(&format!("{}_count", e.name), &e.labels, ""),
                    snap.count
                ));
            }
        }
    }
    out
}

/// One-line human summary of a histogram (report footers, stderr dumps).
pub fn summarize_histogram(name: &str, snap: &HistogramSnapshot) -> String {
    format!(
        "{}: n={} mean={:.0} p50<={} p90<={} p99<={} max={}",
        name,
        snap.count,
        snap.mean(),
        snap.quantile(0.50),
        snap.quantile(0.90),
        snap.quantile(0.99),
        snap.max
    )
}

// ---------------------------------------------------------------------
// Session (CLI surface)
// ---------------------------------------------------------------------

/// An enabled metrics session. On drop, collection is disabled and the
/// OpenMetrics dump is written to the configured file (or stderr).
pub struct MetricsSession {
    /// `None` = dump to stderr.
    path: Option<std::path::PathBuf>,
}

impl MetricsSession {
    /// Enables collection; the dump goes to `path` (or stderr for `None`)
    /// when the session drops.
    pub fn start(path: Option<std::path::PathBuf>) -> MetricsSession {
        set_enabled(true);
        MetricsSession { path }
    }

    /// The output path, if dumping to a file.
    pub fn path(&self) -> Option<&std::path::Path> {
        self.path.as_deref()
    }
}

impl Drop for MetricsSession {
    fn drop(&mut self) {
        set_enabled(false);
        let text = dump_openmetrics();
        match &self.path {
            Some(path) => match std::fs::write(path, &text) {
                Ok(()) => eprintln!(
                    "[hiper-metrics] wrote {} ({} lines)",
                    path.display(),
                    text.lines().count()
                ),
                Err(e) => eprintln!("[hiper-metrics] failed to write {}: {}", path.display(), e),
            },
            None => {
                eprintln!("[hiper-metrics] OpenMetrics dump:");
                eprint!("{}", text);
            }
        }
    }
}

/// Builds a session from the conventional CLI surface: `--metrics` (dump to
/// stderr) or `--metrics=FILE` in `std::env::args`, falling back to the
/// `HIPER_METRICS` environment variable (`1`/empty = stderr, anything else
/// = output file). Returns `None` when neither is set.
pub fn session_from_env_args() -> Option<MetricsSession> {
    for arg in std::env::args() {
        if arg == "--metrics" {
            return Some(MetricsSession::start(None));
        }
        if let Some(rest) = arg.strip_prefix("--metrics=") {
            let path = if rest.is_empty() {
                None
            } else {
                Some(rest.into())
            };
            return Some(MetricsSession::start(path));
        }
    }
    match std::env::var("HIPER_METRICS") {
        Ok(v) if v == "0" => None,
        Ok(v) if v.is_empty() || v == "1" => Some(MetricsSession::start(None)),
        Ok(v) => Some(MetricsSession::start(Some(v.into()))),
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_threads() {
        let c = counter("test_counter_total");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.value() >= 4000, "interned handle is shared");
    }

    #[test]
    fn gauge_set_add_peak() {
        let g = Gauge::default();
        g.set(5);
        g.add(3);
        assert_eq!(g.value(), 8);
        g.add(-10);
        assert_eq!(g.value(), -2);
        assert_eq!(g.peak(), 8);
    }

    #[test]
    fn bucket_index_covers_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
        assert_eq!(bucket_upper_bound(0), 2);
    }

    #[test]
    fn histogram_snapshot_quantiles() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(1_000); // bucket 9
        }
        for _ in 0..10 {
            h.record(1 << 20); // bucket 20
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.max, 1 << 20);
        assert!(snap.quantile(0.5) <= 2048);
        assert_eq!(snap.quantile(0.99), 1 << 20, "clamped to observed max");
        assert!((snap.mean() - (90.0 * 1000.0 + 10.0 * (1 << 20) as f64) / 100.0).abs() < 1.0);
    }

    #[test]
    fn registry_is_idempotent() {
        let a = counter("test_idem_total") as *const Counter;
        let b = counter("test_idem_total") as *const Counter;
        assert_eq!(a, b);
        let h1 = histogram("test_idem_hist_ns") as *const Histogram;
        let h2 = histogram("test_idem_hist_ns") as *const Histogram;
        assert_eq!(h1, h2);
    }

    #[test]
    fn module_op_handles_are_labeled_and_stable() {
        let m1 = module_op("testmod", "put") as *const OpMetrics;
        let m2 = module_op("testmod", "put") as *const OpMetrics;
        assert_eq!(m1, m2);
        let m3 = module_op("testmod", "get") as *const OpMetrics;
        assert_ne!(m1, m3);
        module_op("testmod", "put").latency_ns.record(512);
        module_op("testmod", "put").bytes.add(64);
        let dump = dump_openmetrics();
        assert!(dump.contains(
            "hiper_module_op_latency_ns_bucket{module=\"testmod\",op=\"put\",le=\"1024\"}"
        ));
        assert!(dump.contains("hiper_module_op_bytes_total{module=\"testmod\",op=\"put\"}"));
    }

    #[test]
    fn openmetrics_shape() {
        counter("test_dump_total").add(3);
        gauge("test_dump_depth").set(7);
        histogram("test_dump_ns").record(100);
        let dump = dump_openmetrics();
        assert!(dump.contains("# HELP test_dump_total "));
        assert!(dump.contains("# TYPE test_dump_total counter"));
        assert!(dump.contains("test_dump_total "));
        assert!(dump.contains("# TYPE test_dump_depth gauge"));
        assert!(dump.contains("test_dump_depth 7"));
        assert!(dump.contains("# TYPE test_dump_ns histogram"));
        assert!(dump.contains("test_dump_ns_bucket{le=\"128\"} 1"));
        assert!(dump.contains("test_dump_ns_bucket{le=\"+Inf\"} 1"));
        assert!(dump.contains("test_dump_ns_sum 100"));
        assert!(dump.contains("test_dump_ns_count 1"));
        // Every # TYPE line is preceded by a # HELP line for its family.
        let lines: Vec<&str> = dump.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let family = rest.split(' ').next().unwrap();
                assert!(
                    i > 0 && lines[i - 1].starts_with(&format!("# HELP {} ", family)),
                    "no HELP before {:?}",
                    line
                );
            }
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let c = counter_labeled("test_escape_total", label_pair("path", "a\\b\"c\nd"));
        c.add(1);
        let dump = dump_openmetrics();
        assert!(
            dump.contains("test_escape_total{path=\"a\\\\b\\\"c\\nd\"} "),
            "escaped label missing in: {}",
            dump
        );
    }

    #[test]
    fn histogram_saturating_sub_isolates_the_window() {
        let h = Histogram::default();
        h.record(100);
        h.record(1 << 12);
        let before = h.snapshot();
        h.record(1 << 12);
        h.record(1 << 20);
        let delta = h.snapshot().saturating_sub(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, (1 << 12) + (1 << 20));
        assert_eq!(delta.buckets[12], 1);
        assert_eq!(delta.buckets[20], 1);
        assert_eq!(
            delta.buckets[bucket_index(100)],
            0,
            "pre-window sample subtracted"
        );
    }

    #[test]
    fn snapshot_json_roundtrip_and_delta() {
        counter("test_snap_total").add(5);
        gauge("test_snap_depth").set(3);
        histogram("test_snap_ns").record(2_000);
        let before = snapshot();
        counter("test_snap_total").add(2);
        histogram("test_snap_ns").record(4_000);
        let text = snapshot_json();
        let parsed = MetricsSnapshot::parse_json(&text).expect("parse back");
        match parsed.get("test_snap_total", "") {
            Some(SnapshotValue::Counter(n)) => assert!(*n >= 7),
            other => panic!("counter lost in roundtrip: {:?}", other),
        }
        let h = parsed
            .merged_histogram("test_snap_ns")
            .expect("histogram present");
        assert!(h.count >= 2);
        assert_eq!(h.max, 4_000);
        // The delta isolates only what happened after `before`.
        let delta = snapshot().delta_since(&before);
        match delta.get("test_snap_total", "") {
            Some(SnapshotValue::Counter(n)) => assert_eq!(*n, 2),
            other => panic!("bad delta counter: {:?}", other),
        }
        let dh = delta.merged_histogram("test_snap_ns").unwrap();
        assert_eq!(dh.count, 1);
        assert_eq!(dh.sum, 4_000);
    }

    #[test]
    fn snapshot_parse_rejects_malformed() {
        assert!(MetricsSnapshot::parse_json("nope").is_err());
        assert!(MetricsSnapshot::parse_json("{}").is_err());
        assert!(MetricsSnapshot::parse_json(
            "{\"metrics\": [{\"name\": \"x\", \"type\": \"sparkline\"}]}"
        )
        .is_err());
    }

    #[test]
    fn enabled_flag_flips() {
        // Tests share the global; restore the disabled default.
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
