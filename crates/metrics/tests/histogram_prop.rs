//! Property tests for the sharded log₂ histograms: sharding must never
//! lose or invent samples, and every value — across the full `u64` range,
//! including the 0 and `u64::MAX` edges — must land in the bucket whose
//! range contains it.

use std::sync::Arc;

use hiper_metrics::{bucket_index, bucket_upper_bound, Histogram, HIST_BUCKETS};
use proptest::prelude::*;

/// Mix of edge values and full-range values: plain `any::<u64>()` almost
/// never generates the small values where bucket boundaries are densest.
fn interesting_u64() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(u64::MAX),
        Just(u64::MAX - 1),
        0u64..1024,
        any::<u64>(),
        // Exact powers of two and their neighbours (bucket boundaries).
        (0u32..64).prop_map(|s| 1u64 << s),
        (1u32..64).prop_map(|s| (1u64 << s) - 1),
        (0u32..63).prop_map(|s| (1u64 << s) + 1),
    ]
}

proptest! {
    #[test]
    fn bucket_contains_its_value(v in interesting_u64()) {
        let i = bucket_index(v);
        prop_assert!(i < HIST_BUCKETS);
        if v == 0 {
            prop_assert_eq!(i, 0);
        } else {
            // Lower bound: 2^i <= v.
            prop_assert!(v >= (1u64 << i), "v={} below bucket {} floor", v, i);
            // Upper bound: v < 2^(i+1), except bucket 63 which is closed at
            // u64::MAX (its upper bound saturates).
            if i < 63 {
                prop_assert!(v < (1u64 << (i + 1)), "v={} above bucket {} ceiling", v, i);
            }
            prop_assert!(v <= bucket_upper_bound(i));
        }
    }

    #[test]
    fn recorded_sample_lands_in_exactly_one_bucket(v in interesting_u64()) {
        let h = Histogram::default();
        h.record(v);
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, 1);
        prop_assert_eq!(snap.max, v);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), 1);
        prop_assert_eq!(snap.buckets[bucket_index(v)], 1);
    }

    #[test]
    fn merged_shards_preserve_count_and_sum(values in proptest::collection::vec(0u64..1_000_000, 0..200)) {
        // Record from several threads so multiple shards are exercised; the
        // snapshot must see every sample exactly once.
        let h = Arc::new(Histogram::default());
        let chunk = (values.len() / 4).max(1);
        let handles: Vec<_> = values
            .chunks(chunk)
            .map(|c| {
                let h = Arc::clone(&h);
                let c = c.to_vec();
                std::thread::spawn(move || {
                    for v in c {
                        h.record(v);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), values.len() as u64);
        prop_assert_eq!(snap.max, values.iter().copied().max().unwrap_or(0));
        // Per-bucket: the merged bucket counts must match a sequential
        // recount of the same values.
        let mut expect = [0u64; HIST_BUCKETS];
        for &v in &values {
            expect[bucket_index(v)] += 1;
        }
        prop_assert_eq!(snap.buckets, expect);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(values in proptest::collection::vec(any::<u64>(), 1..100)) {
        let h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let q50 = snap.quantile(0.50);
        let q90 = snap.quantile(0.90);
        let q99 = snap.quantile(0.99);
        prop_assert!(q50 <= q90 && q90 <= q99);
        prop_assert!(q99 <= snap.max, "quantiles clamp to the observed max");
        // The median's bucket upper bound must not be below the true median
        // sample (the estimate only over-approximates within its bucket).
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let true_median = sorted[(sorted.len() - 1) / 2];
        prop_assert!(q50 >= true_median.min(snap.max) || bucket_index(q50) >= bucket_index(true_median));
    }
}
