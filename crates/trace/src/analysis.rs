//! Post-mortem trace analysis: task-DAG critical path, per-worker
//! utilization timelines, and load-imbalance / steal-locality summaries.
//!
//! Works over drained [`TraceData`] — either a live drain at the end of a
//! run or a Chrome trace re-parsed back into events (`hiper-bench` ships
//! the loader). The critical path is the longest spawn/join chain in the
//! task DAG: starting from the task that *finished last*, walk parent
//! spawn links back to a root, then partition the wall interval of that
//! chain into contiguous segments — parent compute, module (communication)
//! time inside it, and each child's spawn→begin queue wait, classified by
//! how the executing worker acquired the task (own pop vs steal/injector).
//! The segments are boundaries of one interval, so they sum to the chain's
//! wall time *exactly*; any scheduling improvement must shrink one of them.

use std::collections::BTreeMap;
use std::fmt;

use crate::ring::EventKind;
use crate::TraceData;

/// How the executing worker obtained a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Acquisition {
    /// Popped from the worker's own deque.
    Pop,
    /// Stolen from another worker's deque; payload is the victim worker.
    Steal(u64),
    /// Drained from a place injector (external / cross-place submission).
    Injector,
    /// No acquisition event seen (e.g. ran inline or events dropped).
    #[default]
    Unknown,
}

/// One task's lifecycle, joined across tracks.
#[derive(Debug, Clone, Copy, Default)]
pub struct TaskRecord {
    /// Parent task id (0 = spawned from outside any traced task).
    pub parent: u64,
    /// Spawn timestamp (0 = spawn not seen).
    pub spawn_ts: u64,
    /// Begin timestamp (0 = begin not seen).
    pub begin_ts: u64,
    /// End timestamp (0 = end not seen).
    pub end_ts: u64,
    /// Track index the task executed on.
    pub track: usize,
    /// How the executing worker got it.
    pub acquired: Acquisition,
}

/// What a critical-path segment's time was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// The chain task was executing user code.
    Compute,
    /// The chain task was inside a module call (communication or other
    /// pluggable-library time).
    Module,
    /// The next chain task sat in a deque until its home worker popped it.
    PopWait,
    /// The next chain task sat queued until a thief stole it (or drained it
    /// from an injector) — scheduling latency, the work-stealing tax.
    StealWait,
    /// A message the chain depends on was in flight on the simulated
    /// interconnect (send → modeled delivery).
    Wire,
    /// The chain task resumed on a remote message whose send the trace
    /// does not hold (ring wraparound / untraced sender): the time is
    /// known to be remote-bound but cannot be attributed further.
    BlockedOnRemote,
}

impl SegmentKind {
    /// Stable lowercase label.
    pub fn name(self) -> &'static str {
        match self {
            SegmentKind::Compute => "compute",
            SegmentKind::Module => "module",
            SegmentKind::PopWait => "pop-wait",
            SegmentKind::StealWait => "steal-wait",
            SegmentKind::Wire => "wire",
            SegmentKind::BlockedOnRemote => "blocked-on-remote",
        }
    }
}

/// One contiguous slice of the critical path.
#[derive(Debug, Clone, Copy)]
pub struct Segment {
    /// Task the slice is attributed to.
    pub task: u64,
    /// What the time went to.
    pub kind: SegmentKind,
    /// Slice start (trace-clock ns).
    pub start_ns: u64,
    /// Slice length (ns).
    pub dur_ns: u64,
    /// Simulated rank the slice ran on (`None` for rankless tracks and
    /// wire time, which belongs to no rank).
    pub rank: Option<usize>,
}

/// The longest spawn chain and its exact time decomposition.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// Task ids root-first.
    pub chain: Vec<u64>,
    /// Wall time from the root's begin to the leaf's end.
    pub total_ns: u64,
    /// Contiguous decomposition of `total_ns`; durations sum to it exactly.
    pub segments: Vec<Segment>,
    /// Time the chain spent computing.
    pub compute_ns: u64,
    /// Time the chain spent inside module calls.
    pub module_ns: u64,
    /// Queue waits resolved by the spawning worker's own pop.
    pub pop_wait_ns: u64,
    /// Queue waits resolved by a steal or injector drain.
    pub steal_wait_ns: u64,
    /// Time messages the chain depends on spent on the simulated wire.
    pub wire_ns: u64,
    /// Time the chain was provably waiting on a remote rank whose send
    /// the trace does not hold (lossy / truncated traces).
    pub blocked_remote_ns: u64,
    /// Path time (compute + module) attributed to each simulated rank,
    /// sorted by rank. Empty for rankless (single-process) traces.
    pub per_rank_ns: Vec<(usize, u64)>,
    /// Rank holding the most path time — the straggler the distributed
    /// critical path runs through. `None` for rankless traces.
    pub straggler_rank: Option<usize>,
}

/// One worker's (track's) activity summary plus a coarse utilization
/// timeline: `bins[i]` is the busy fraction of the i-th slice of the run.
#[derive(Debug, Clone)]
pub struct WorkerTimeline {
    /// Track label (thread name).
    pub label: String,
    /// Tasks that began here.
    pub tasks: u64,
    /// Time inside top-level task spans.
    pub busy_ns: u64,
    /// Time inside park spans.
    pub parked_ns: u64,
    /// Busy fraction per time slice, over the whole-trace wall interval.
    pub bins: Vec<f64>,
}

/// Load-imbalance and steal-locality aggregates.
#[derive(Debug, Clone, Default)]
pub struct LoadSummary {
    /// Tasks begun on the busiest track.
    pub max_tasks: u64,
    /// Tasks begun on the least-busy worker track.
    pub min_tasks: u64,
    /// Mean tasks per worker track.
    pub mean_tasks: f64,
    /// `max_tasks / mean_tasks`; 1.0 = perfectly balanced.
    pub imbalance: f64,
    /// Own-deque pops.
    pub pops: u64,
    /// Cross-worker steals.
    pub steals: u64,
    /// Injector drains.
    pub injector_hits: u64,
    /// Steals whose victim was the thief's first probe (`me + 1`): high
    /// means the rotation finds work immediately — good steal locality.
    pub first_probe_steals: u64,
    /// Mean probe depth over steals with a known thief worker index.
    pub mean_probe_depth: f64,
}

/// Full post-mortem analysis of one drained trace.
#[derive(Debug, Clone, Default)]
pub struct ProfileAnalysis {
    /// First event timestamp (ns, trace clock).
    pub start_ns: u64,
    /// Last-minus-first event timestamp.
    pub wall_ns: u64,
    /// Total events analyzed.
    pub events: u64,
    /// Events lost to ring wraparound (analysis may be partial).
    pub dropped: u64,
    /// `MsgDeliver` events with no matching `MsgSend` in the trace —
    /// nonzero means the causal DAG is partial (wraparound ate the sends).
    pub orphan_delivers: u64,
    /// The longest spawn chain, when the trace holds any complete task.
    pub critical_path: Option<CriticalPath>,
    /// Per-track activity (tracks with at least one event).
    pub workers: Vec<WorkerTimeline>,
    /// Imbalance and locality aggregates.
    pub load: LoadSummary,
}

/// One endpoint of a causal message edge (`MsgSend` / `MsgDeliver`
/// payload: `a` = sending span, `b` = src<<32|dst, `c` = message id).
#[derive(Debug, Clone, Copy)]
struct MsgEv {
    ts: u64,
    span: u64,
    src: usize,
    dst: usize,
    id: u64,
}

impl MsgEv {
    fn from_event(e: &crate::ring::TraceEvent) -> MsgEv {
        MsgEv {
            ts: e.ts_ns,
            span: e.a,
            src: (e.b >> 32) as usize,
            dst: (e.b & 0xffff_ffff) as usize,
            id: e.c,
        }
    }
}

/// Utilization timeline resolution.
const BINS: usize = 40;

/// Parses a worker index out of a `hiper-worker-N` thread label.
fn worker_index(label: &str) -> Option<u64> {
    label.strip_prefix("hiper-worker-")?.parse().ok()
}

/// Adds `[s, e)`'s overlap with each bin of `[t0, t0 + wall)` to `bins`.
fn bin_interval(bins: &mut [f64], t0: u64, wall: u64, s: u64, e: u64) {
    if wall == 0 || e <= s {
        return;
    }
    let width = (wall as f64 / bins.len() as f64).max(1.0);
    for (i, bin) in bins.iter_mut().enumerate() {
        let bs = t0 as f64 + i as f64 * width;
        let be = bs + width;
        let lo = (s as f64).max(bs);
        let hi = (e as f64).min(be);
        if hi > lo {
            *bin += (hi - lo) / width;
        }
    }
}

impl ProfileAnalysis {
    /// Analyzes drained trace data.
    pub fn build(data: &TraceData) -> ProfileAnalysis {
        let mut out = ProfileAnalysis::default();
        let mut tasks: BTreeMap<u64, TaskRecord> = BTreeMap::new();
        let mut min_ts = u64::MAX;
        let mut max_ts = 0u64;

        // Pass 1: join task lifecycles across tracks and collect acquisition
        // + steal-locality counters, plus causal message edges for the
        // distributed critical path.
        let mut probe_depths: Vec<u64> = Vec::new();
        let mut sends: BTreeMap<u64, MsgEv> = BTreeMap::new();
        let mut delivers: Vec<MsgEv> = Vec::new();
        for (ti, track) in data.tracks.iter().enumerate() {
            out.dropped += track.dropped;
            let thief = worker_index(&track.label);
            let workers_hint = data
                .tracks
                .iter()
                .filter_map(|t| worker_index(&t.label))
                .max()
                .map(|m| m + 1);
            for e in &track.events {
                out.events += 1;
                min_ts = min_ts.min(e.ts_ns);
                max_ts = max_ts.max(e.ts_ns);
                match e.kind {
                    EventKind::TaskSpawn => {
                        let rec = tasks.entry(e.a).or_default();
                        rec.parent = e.b;
                        rec.spawn_ts = e.ts_ns;
                    }
                    EventKind::TaskBegin => {
                        let rec = tasks.entry(e.a).or_default();
                        rec.begin_ts = e.ts_ns;
                        rec.track = ti;
                    }
                    EventKind::TaskEnd => {
                        tasks.entry(e.a).or_default().end_ts = e.ts_ns;
                    }
                    EventKind::Pop => {
                        out.load.pops += 1;
                        if e.a != 0 {
                            tasks.entry(e.a).or_default().acquired = Acquisition::Pop;
                        }
                    }
                    EventKind::Steal => {
                        out.load.steals += 1;
                        if e.a != 0 {
                            tasks.entry(e.a).or_default().acquired = Acquisition::Steal(e.b);
                        }
                        if let (Some(me), Some(workers)) = (thief, workers_hint) {
                            let depth = (e.b + workers - me) % workers;
                            probe_depths.push(depth.max(1));
                            if depth == 1 {
                                out.load.first_probe_steals += 1;
                            }
                        }
                    }
                    EventKind::InjectorDrain => {
                        out.load.injector_hits += 1;
                        if e.a != 0 {
                            tasks.entry(e.a).or_default().acquired = Acquisition::Injector;
                        }
                    }
                    EventKind::MsgSend => {
                        sends.entry(e.c).or_insert_with(|| MsgEv::from_event(e));
                    }
                    EventKind::MsgDeliver => {
                        delivers.push(MsgEv::from_event(e));
                    }
                    _ => {}
                }
            }
        }
        if min_ts == u64::MAX {
            return out;
        }
        out.start_ns = min_ts;
        out.wall_ns = max_ts - min_ts;
        if !probe_depths.is_empty() {
            out.load.mean_probe_depth =
                probe_depths.iter().sum::<u64>() as f64 / probe_depths.len() as f64;
        }

        // Pass 2: per-track spans — top-level task busy intervals feed the
        // utilization bins, module intervals feed critical-path attribution.
        let mut module_intervals: Vec<Vec<(u64, u64)>> = vec![Vec::new(); data.tracks.len()];
        for (ti, track) in data.tracks.iter().enumerate() {
            if track.events.is_empty() {
                continue;
            }
            let mut tl = WorkerTimeline {
                label: track.label.clone(),
                tasks: 0,
                busy_ns: 0,
                parked_ns: 0,
                bins: vec![0.0; BINS],
            };
            let mut task_stack: Vec<u64> = Vec::new();
            let mut module_stack: Vec<u64> = Vec::new();
            let mut park_start: Option<u64> = None;
            for e in &track.events {
                match e.kind {
                    EventKind::TaskBegin => {
                        tl.tasks += 1;
                        task_stack.push(e.ts_ns);
                    }
                    EventKind::TaskEnd => {
                        if let Some(begin) = task_stack.pop() {
                            if task_stack.is_empty() {
                                tl.busy_ns += e.ts_ns.saturating_sub(begin);
                                bin_interval(&mut tl.bins, min_ts, out.wall_ns, begin, e.ts_ns);
                            }
                        }
                    }
                    EventKind::Park => park_start = Some(e.ts_ns),
                    EventKind::Unpark => {
                        if let Some(begin) = park_start.take() {
                            tl.parked_ns += e.ts_ns.saturating_sub(begin);
                        }
                    }
                    EventKind::ModuleEnter => module_stack.push(e.ts_ns),
                    EventKind::ModuleExit => {
                        if let Some(begin) = module_stack.pop() {
                            // Top-level module spans only: nested calls are
                            // already covered by the outer interval.
                            if module_stack.is_empty() {
                                module_intervals[ti].push((begin, e.ts_ns));
                            }
                        }
                    }
                    _ => {}
                }
            }
            out.workers.push(tl);
        }

        // Load imbalance over *worker* tracks (external threads excluded —
        // their "tasks" are finish-scope bodies, not stealable work).
        let worker_tasks: Vec<u64> = out
            .workers
            .iter()
            .filter(|w| worker_index(&w.label).is_some())
            .map(|w| w.tasks)
            .collect();
        if !worker_tasks.is_empty() {
            out.load.max_tasks = worker_tasks.iter().copied().max().unwrap_or(0);
            out.load.min_tasks = worker_tasks.iter().copied().min().unwrap_or(0);
            out.load.mean_tasks =
                worker_tasks.iter().sum::<u64>() as f64 / worker_tasks.len() as f64;
            if out.load.mean_tasks > 0.0 {
                out.load.imbalance = out.load.max_tasks as f64 / out.load.mean_tasks;
            }
        }

        // Distributed critical path: when the trace carries ranked tracks
        // and causal message edges, stitch the per-rank DAGs through the
        // send→deliver edges. Falls back to the local spawn-chain walk for
        // rankless traces (and when the stitch finds no complete task).
        out.orphan_delivers = delivers
            .iter()
            .filter(|d| !sends.contains_key(&d.id))
            .count() as u64;
        let track_ranks: Vec<Option<usize>> = data.tracks.iter().map(|t| t.rank).collect();
        let ranked = track_ranks.iter().any(|r| r.is_some());
        out.critical_path = if ranked && !delivers.is_empty() {
            let mut by_rank: BTreeMap<usize, Vec<MsgEv>> = BTreeMap::new();
            for d in &delivers {
                by_rank.entry(d.dst).or_default().push(*d);
            }
            for list in by_rank.values_mut() {
                list.sort_by_key(|d| d.ts);
            }
            distributed_critical_path(&tasks, &module_intervals, &track_ranks, &sends, &by_rank)
                .or_else(|| critical_path(&tasks, &module_intervals))
        } else {
            critical_path(&tasks, &module_intervals)
        };
        out
    }
}

/// Total overlap between `[s, e)` and the (unsorted, top-level, pairwise
/// disjoint) intervals recorded for one track.
fn overlap_ns(intervals: &[(u64, u64)], s: u64, e: u64) -> u64 {
    intervals
        .iter()
        .map(|&(is, ie)| ie.min(e).saturating_sub(is.max(s)))
        .sum()
}

fn critical_path(
    tasks: &BTreeMap<u64, TaskRecord>,
    module_intervals: &[Vec<(u64, u64)>],
) -> Option<CriticalPath> {
    // Leaf: the last-finishing complete task that spawned nothing. Finish
    // scopes make ancestors end *after* all their descendants (the join),
    // so the raw last-to-finish task is usually the root and its "chain"
    // would be one task long; the last true leaf's chain is the actual
    // longest spawn chain bounding the makespan from below. Fall back to
    // any complete task when every complete task has children (truncated
    // traces).
    let parents: std::collections::BTreeSet<u64> = tasks
        .values()
        .map(|r| r.parent)
        .filter(|&p| p != 0)
        .collect();
    let complete = |r: &&TaskRecord| r.begin_ts != 0 && r.end_ts != 0;
    let (&leaf_id, _) = tasks
        .iter()
        .filter(|(id, r)| complete(r) && !parents.contains(id))
        .max_by_key(|(_, r)| r.end_ts)
        .or_else(|| {
            tasks
                .iter()
                .filter(|(_, r)| complete(r))
                .max_by_key(|(_, r)| r.end_ts)
        })?;

    // Walk spawn links back to a root (a task whose parent was untraced or
    // never began). Guard against cycles from garbled events.
    let mut chain = vec![leaf_id];
    let mut cur = leaf_id;
    while chain.len() <= tasks.len() {
        let parent = tasks[&cur].parent;
        match tasks.get(&parent) {
            Some(p) if parent != 0 && p.begin_ts != 0 && !chain.contains(&parent) => {
                chain.push(parent);
                cur = parent;
            }
            _ => break,
        }
    }
    chain.reverse();

    let mut cp = CriticalPath {
        chain: chain.clone(),
        ..CriticalPath::default()
    };
    let root = &tasks[&chain[0]];
    let leaf = &tasks[&chain[chain.len() - 1]];
    let start = root.begin_ts;
    cp.total_ns = leaf.end_ts.saturating_sub(start);

    // Partition [root.begin, leaf.end] at every child's spawn and begin.
    // Timestamps are clamped monotone so the slices tile the interval
    // exactly even if cross-thread clock reads jitter by a few ns.
    let mut push = |cp: &mut CriticalPath, task: u64, kind: SegmentKind, s: u64, e: u64| {
        let dur = e.saturating_sub(s);
        if dur == 0 {
            return;
        }
        match kind {
            SegmentKind::Compute => cp.compute_ns += dur,
            SegmentKind::Module => cp.module_ns += dur,
            SegmentKind::PopWait => cp.pop_wait_ns += dur,
            SegmentKind::StealWait => cp.steal_wait_ns += dur,
            SegmentKind::Wire => cp.wire_ns += dur,
            SegmentKind::BlockedOnRemote => cp.blocked_remote_ns += dur,
        }
        cp.segments.push(Segment {
            task,
            kind,
            start_ns: s,
            dur_ns: dur,
            rank: None,
        });
    };
    // Splits one execution slice of `owner` into compute + module time
    // using the owner track's module intervals. The module total within
    // the slice is emitted as a single segment (attribution, not layout).
    let compute_slice = |cp: &mut CriticalPath,
                         push: &mut dyn FnMut(&mut CriticalPath, u64, SegmentKind, u64, u64),
                         owner: u64,
                         rec: &TaskRecord,
                         s: u64,
                         e: u64| {
        let m = module_intervals
            .get(rec.track)
            .map_or(0, |iv| overlap_ns(iv, s, e))
            .min(e.saturating_sub(s));
        push(cp, owner, SegmentKind::Compute, s, e.saturating_sub(m));
        push(cp, owner, SegmentKind::Module, e.saturating_sub(m), e);
    };

    let mut mark = start;
    for win in chain.windows(2) {
        let (parent_id, child_id) = (win[0], win[1]);
        let parent = &tasks[&parent_id];
        let child = &tasks[&child_id];
        let spawn = child.spawn_ts.clamp(mark, u64::MAX);
        let begin = child.begin_ts.clamp(spawn, u64::MAX);
        compute_slice(&mut cp, &mut push, parent_id, parent, mark, spawn);
        let wait_kind = match child.acquired {
            Acquisition::Pop | Acquisition::Unknown => SegmentKind::PopWait,
            Acquisition::Steal(_) | Acquisition::Injector => SegmentKind::StealWait,
        };
        push(&mut cp, child_id, wait_kind, spawn, begin);
        mark = begin;
    }
    let end = leaf.end_ts.clamp(mark, u64::MAX);
    compute_slice(&mut cp, &mut push, chain[chain.len() - 1], leaf, mark, end);
    Some(cp)
}

/// Stitches per-rank task DAGs into one distributed critical path by
/// walking causal edges *backward* from the globally last-finishing
/// complete task. At each step the walk sits on a rank at a cut time and
/// asks what the chain was last waiting on before the cut:
///
/// 1. **A delivered message.** The latest `MsgDeliver` into the rank
///    within the current task's lifetime yields a compute slice
///    `[deliver, cut]` (module-split), a [`SegmentKind::Wire`] slice
///    `[send, deliver]`, and a hop to the *sending* rank at the send
///    timestamp — continuing on the sending span's task when that task
///    lives on the sending rank (handler-side sends carry the inherited
///    remote span, so the span's task may live elsewhere).
/// 2. **An orphan delivery** (send lost to ring wraparound): the slice
///    back to the task's begin is [`SegmentKind::BlockedOnRemote`] —
///    provably remote-bound, not attributable further.
/// 3. **No delivery:** the task computed from its begin; the walk crosses
///    its spawn edge exactly like the local algorithm.
///
/// Segments are emitted back-to-back, so they tile the path interval
/// exactly. Per-rank deliver cursors only move backward, so every message
/// hop consumes an event and the walk terminates even on zero-delay
/// (instant) networks where send and deliver share one timestamp.
fn distributed_critical_path(
    tasks: &BTreeMap<u64, TaskRecord>,
    module_intervals: &[Vec<(u64, u64)>],
    track_ranks: &[Option<usize>],
    sends: &BTreeMap<u64, MsgEv>,
    delivers_by_rank: &BTreeMap<usize, Vec<MsgEv>>,
) -> Option<CriticalPath> {
    let complete = |r: &TaskRecord| r.begin_ts != 0 && r.end_ts != 0;
    // Leaf: the globally last-finishing complete task. Unlike the local
    // walk this is usually a rank body (the straggler's): message hops
    // let the walk cover the whole run interval from there.
    let (&leaf_id, leaf) = tasks
        .iter()
        .filter(|(_, r)| complete(r))
        .max_by_key(|(_, r)| r.end_ts)?;
    let rank_of = |rec: &TaskRecord| track_ranks.get(rec.track).copied().flatten();

    // Built newest-first, reversed at the end.
    let mut segs: Vec<Segment> = Vec::new();
    let mut chain_rev: Vec<u64> = vec![leaf_id];
    let push = |segs: &mut Vec<Segment>,
                task: u64,
                kind: SegmentKind,
                rank: Option<usize>,
                s: u64,
                e: u64| {
        if e > s {
            segs.push(Segment {
                task,
                kind,
                start_ns: s,
                dur_ns: e - s,
                rank,
            });
        }
    };
    // Module-split slice, emitted newest-first (module tail, then compute).
    let compute_slice = |segs: &mut Vec<Segment>,
                         owner: u64,
                         rec: Option<&TaskRecord>,
                         rank: Option<usize>,
                         s: u64,
                         e: u64| {
        let m = rec
            .and_then(|r| module_intervals.get(r.track))
            .map_or(0, |iv| overlap_ns(iv, s, e))
            .min(e.saturating_sub(s));
        push(
            segs,
            owner,
            SegmentKind::Module,
            rank,
            e.saturating_sub(m),
            e,
        );
        push(
            segs,
            owner,
            SegmentKind::Compute,
            rank,
            s,
            e.saturating_sub(m),
        );
    };

    let mut cursors: BTreeMap<usize, usize> = delivers_by_rank
        .iter()
        .map(|(r, v)| (*r, v.len()))
        .collect();
    let total_delivers: usize = delivers_by_rank.values().map(|v| v.len()).sum();

    // Walk state: the task the chain is inside (when attributable), the
    // rank it sits on, and the cut time after which everything is already
    // explained. `cut` is non-increasing; each iteration either consumes
    // a deliver event or crosses a spawn edge, so the loop bound is slack.
    let mut cur_task: Option<u64> = Some(leaf_id);
    let mut cur_rank = rank_of(leaf);
    let mut cut = leaf.end_ts;

    // Bound: each iteration consumes a deliver event or crosses spawn
    // edges toward a root; a deliver hop can re-enter an already-walked
    // task (blocking bodies resume once per message), so spawn crossings
    // are bounded per deliver, not globally. The cap is termination
    // insurance against garbled parent cycles, sized not to truncate
    // legitimate walks.
    for _ in 0..(tasks.len() + 4 * total_delivers + 64) {
        let rec = cur_task.and_then(|id| tasks.get(&id));
        let owner = cur_task.unwrap_or(0);
        let lo = rec.map_or(0, |r| r.begin_ts).min(cut);

        // 1. Latest unconsumed delivery into this rank within (lo, cut].
        let mut resumed: Option<MsgEv> = None;
        if let Some(r) = cur_rank {
            if let (Some(list), Some(cur)) = (delivers_by_rank.get(&r), cursors.get_mut(&r)) {
                while *cur > 0 && list[*cur - 1].ts > cut {
                    *cur -= 1;
                }
                if *cur > 0 && list[*cur - 1].ts > lo {
                    *cur -= 1;
                    resumed = Some(list[*cur]);
                }
            }
        }

        if let Some(d) = resumed {
            if let Some(s) = sends.get(&d.id) {
                let d_ts = d.ts.min(cut).max(s.ts.min(cut));
                compute_slice(&mut segs, owner, rec, cur_rank, d_ts, cut);
                push(
                    &mut segs,
                    s.span,
                    SegmentKind::Wire,
                    None,
                    s.ts.min(cut),
                    d_ts,
                );
                cut = s.ts.min(cut);
                cur_rank = Some(s.src);
                cur_task = match tasks.get(&s.span) {
                    Some(sr) if sr.begin_ts != 0 && rank_of(sr) == Some(s.src) => {
                        chain_rev.push(s.span);
                        Some(s.span)
                    }
                    _ => None,
                };
                continue;
            }
            // Orphan delivery: remote-bound back to the task's begin.
            let d_ts = d.ts.min(cut);
            compute_slice(&mut segs, owner, rec, cur_rank, d_ts, cut);
            push(
                &mut segs,
                owner,
                SegmentKind::BlockedOnRemote,
                cur_rank,
                lo,
                d_ts,
            );
            cut = lo;
        } else {
            compute_slice(&mut segs, owner, rec, cur_rank, lo, cut);
            cut = lo;
        }

        // 2. Spawn edge: cross to the parent task like the local walk.
        let Some(r) = rec else { break };
        let parent = r.parent;
        let wait_kind = match r.acquired {
            Acquisition::Pop | Acquisition::Unknown => SegmentKind::PopWait,
            Acquisition::Steal(_) | Acquisition::Injector => SegmentKind::StealWait,
        };
        match tasks.get(&parent) {
            Some(p) if parent != 0 && p.begin_ts != 0 => {
                let spawn = r.spawn_ts.min(cut);
                push(&mut segs, owner, wait_kind, cur_rank, spawn, cut);
                cut = spawn;
                cur_rank = rank_of(p);
                cur_task = Some(parent);
                chain_rev.push(parent);
            }
            _ => {
                // Root of the walk (parent untraced): still charge its
                // queue wait so the path reaches back to the spawn that
                // created the chain's origin — for rank bodies that is
                // the injector wait between cluster submit and pickup.
                if r.spawn_ts != 0 {
                    let spawn = r.spawn_ts.min(cut);
                    push(&mut segs, owner, wait_kind, cur_rank, spawn, cut);
                    cut = spawn;
                }
                break;
            }
        }
    }

    segs.reverse();
    chain_rev.reverse();
    let mut cp = CriticalPath {
        chain: chain_rev,
        total_ns: leaf.end_ts.saturating_sub(cut),
        ..CriticalPath::default()
    };
    let mut per_rank: BTreeMap<usize, u64> = BTreeMap::new();
    for s in &segs {
        match s.kind {
            SegmentKind::Compute => cp.compute_ns += s.dur_ns,
            SegmentKind::Module => cp.module_ns += s.dur_ns,
            SegmentKind::PopWait => cp.pop_wait_ns += s.dur_ns,
            SegmentKind::StealWait => cp.steal_wait_ns += s.dur_ns,
            SegmentKind::Wire => cp.wire_ns += s.dur_ns,
            SegmentKind::BlockedOnRemote => cp.blocked_remote_ns += s.dur_ns,
        }
        if matches!(s.kind, SegmentKind::Compute | SegmentKind::Module) {
            if let Some(rk) = s.rank {
                *per_rank.entry(rk).or_default() += s.dur_ns;
            }
        }
    }
    cp.straggler_rank = per_rank.iter().max_by_key(|&(_, ns)| *ns).map(|(&r, _)| r);
    cp.per_rank_ns = per_rank.into_iter().collect();
    cp.segments = segs;
    Some(cp)
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{} ns", ns)
    }
}

fn bar(frac: f64) -> char {
    const RAMP: [char; 9] = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];
    let i = (frac.clamp(0.0, 1.0) * (RAMP.len() - 1) as f64).round() as usize;
    RAMP[i]
}

impl fmt::Display for CriticalPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "critical path: {} tasks, {} wall",
            self.chain.len(),
            fmt_ns(self.total_ns)
        )?;
        let pct = |ns: u64| {
            if self.total_ns == 0 {
                0.0
            } else {
                100.0 * ns as f64 / self.total_ns as f64
            }
        };
        writeln!(
            f,
            "  compute    {:>12} ({:5.1}%)",
            fmt_ns(self.compute_ns),
            pct(self.compute_ns)
        )?;
        writeln!(
            f,
            "  module     {:>12} ({:5.1}%)",
            fmt_ns(self.module_ns),
            pct(self.module_ns)
        )?;
        writeln!(
            f,
            "  pop-wait   {:>12} ({:5.1}%)",
            fmt_ns(self.pop_wait_ns),
            pct(self.pop_wait_ns)
        )?;
        writeln!(
            f,
            "  steal-wait {:>12} ({:5.1}%)",
            fmt_ns(self.steal_wait_ns),
            pct(self.steal_wait_ns)
        )?;
        if self.wire_ns > 0 || self.blocked_remote_ns > 0 || !self.per_rank_ns.is_empty() {
            writeln!(
                f,
                "  wire       {:>12} ({:5.1}%)",
                fmt_ns(self.wire_ns),
                pct(self.wire_ns)
            )?;
            writeln!(
                f,
                "  blocked-on-remote {:>5} ({:5.1}%)",
                fmt_ns(self.blocked_remote_ns),
                pct(self.blocked_remote_ns)
            )?;
        }
        if !self.per_rank_ns.is_empty() {
            writeln!(f, "  per-rank path time:")?;
            for (r, ns) in &self.per_rank_ns {
                let tag = if Some(*r) == self.straggler_rank {
                    "  <- straggler"
                } else {
                    ""
                };
                writeln!(
                    f,
                    "    rank {:<4} {:>12} ({:5.1}%){}",
                    r,
                    fmt_ns(*ns),
                    pct(*ns),
                    tag
                )?;
            }
        }
        let mut worst: Vec<&Segment> = self.segments.iter().collect();
        worst.sort_by_key(|s| std::cmp::Reverse(s.dur_ns));
        writeln!(f, "  longest segments:")?;
        for s in worst.iter().take(8) {
            let rank = s.rank.map(|r| format!("  rank {}", r)).unwrap_or_default();
            writeln!(
                f,
                "    task {:>6}  {:<17} {:>12}{}",
                s.task,
                s.kind.name(),
                fmt_ns(s.dur_ns),
                rank
            )?;
        }
        Ok(())
    }
}

impl fmt::Display for ProfileAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "profile: {} events ({} dropped), wall {}",
            self.events,
            self.dropped,
            fmt_ns(self.wall_ns)
        )?;
        if self.dropped > 0 || self.orphan_delivers > 0 {
            writeln!(
                f,
                "  WARNING: trace is incomplete ({} events lost to ring wraparound, {} message \
                 delivers without a matching send) — the task DAG and critical path below are \
                 PARTIAL; raise HIPER_TRACE_BUF to capture the full run",
                self.dropped, self.orphan_delivers
            )?;
        }
        if let Some(cp) = &self.critical_path {
            write!(f, "{}", cp)?;
        }
        if !self.workers.is_empty() {
            writeln!(
                f,
                "  per-worker utilization (busy over run, {} bins):",
                BINS
            )?;
            for w in &self.workers {
                let util = if self.wall_ns > 0 {
                    100.0 * w.busy_ns as f64 / self.wall_ns as f64
                } else {
                    0.0
                };
                let line: String = w.bins.iter().map(|&b| bar(b)).collect();
                writeln!(
                    f,
                    "    {:<24} [{}] busy {:>10} ({:5.1}%)  parked {:>10}  tasks {}",
                    w.label,
                    line,
                    fmt_ns(w.busy_ns),
                    util,
                    fmt_ns(w.parked_ns),
                    w.tasks
                )?;
            }
        }
        let l = &self.load;
        writeln!(
            f,
            "  load: tasks/worker mean {:.1} min {} max {} (imbalance {:.2}x)",
            l.mean_tasks, l.min_tasks, l.max_tasks, l.imbalance
        )?;
        writeln!(
            f,
            "  acquisition: pops {} steals {} injector {}",
            l.pops, l.steals, l.injector_hits
        )?;
        if l.steals > 0 {
            writeln!(
                f,
                "  steal locality: first-probe {}/{} ({:.1}%), mean probe depth {:.2}",
                l.first_probe_steals,
                l.steals,
                100.0 * l.first_probe_steals as f64 / l.steals.max(1) as f64,
                l.mean_probe_depth
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::TraceEvent;
    use crate::TrackData;

    fn e(ts: u64, kind: EventKind, a: u64, b: u64, c: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            kind,
            a,
            b,
            c,
        }
    }

    /// root(1) runs on worker-0, spawns child(2) at t=200 which is stolen
    /// by worker-1, begins at t=500, ends at t=900.
    fn two_task_chain() -> TraceData {
        TraceData {
            tracks: vec![
                TrackData {
                    label: "hiper-worker-0".into(),
                    events: vec![
                        e(100, EventKind::TaskBegin, 1, 0, 0),
                        e(200, EventKind::TaskSpawn, 2, 1, 0),
                        e(400, EventKind::TaskEnd, 1, 0, 0),
                    ],
                    dropped: 0,
                    rank: None,
                },
                TrackData {
                    label: "hiper-worker-1".into(),
                    events: vec![
                        e(480, EventKind::Steal, 2, 0, 0),
                        e(500, EventKind::TaskBegin, 2, 0, 0),
                        e(900, EventKind::TaskEnd, 2, 0, 0),
                    ],
                    dropped: 0,
                    rank: None,
                },
            ],
        }
    }

    #[test]
    fn critical_path_segments_tile_the_interval() {
        let analysis = ProfileAnalysis::build(&two_task_chain());
        let cp = analysis.critical_path.as_ref().expect("chain present");
        assert_eq!(cp.chain, vec![1, 2]);
        assert_eq!(cp.total_ns, 800, "root begin 100 -> leaf end 900");
        let sum: u64 = cp.segments.iter().map(|s| s.dur_ns).sum();
        assert_eq!(sum, cp.total_ns, "segments partition the interval");
        assert_eq!(cp.compute_ns, 500, "100..200 on root + 500..900 on leaf");
        assert_eq!(cp.steal_wait_ns, 300, "spawn 200 -> begin 500, stolen");
        assert_eq!(cp.pop_wait_ns, 0);
    }

    #[test]
    fn module_time_is_attributed_inside_compute() {
        let mut data = two_task_chain();
        // Leaf spends 300..? no — worker-1 runs a module span inside task 2.
        data.tracks[1].events = vec![
            e(480, EventKind::Steal, 2, 0, 0),
            e(500, EventKind::TaskBegin, 2, 0, 0),
            e(600, EventKind::ModuleEnter, 1, 0, 0),
            e(850, EventKind::ModuleExit, 1, 0, 0),
            e(900, EventKind::TaskEnd, 2, 0, 0),
        ];
        let cp = ProfileAnalysis::build(&data)
            .critical_path
            .expect("chain present");
        assert_eq!(cp.module_ns, 250);
        assert_eq!(cp.compute_ns, 250, "100..200 + (400 - 250) on leaf");
        let sum: u64 = cp.segments.iter().map(|s| s.dur_ns).sum();
        assert_eq!(sum, cp.total_ns);
    }

    #[test]
    fn load_summary_counts_acquisitions() {
        let analysis = ProfileAnalysis::build(&two_task_chain());
        assert_eq!(analysis.load.steals, 1);
        assert_eq!(analysis.load.pops, 0);
        assert_eq!(analysis.load.first_probe_steals, 1, "worker-1 stole from 0");
        assert_eq!(analysis.workers.len(), 2);
        assert!((analysis.load.imbalance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_yields_no_path() {
        let analysis = ProfileAnalysis::build(&TraceData::default());
        assert!(analysis.critical_path.is_none());
        assert_eq!(analysis.events, 0);
        // Display must not panic on the empty analysis.
        let _ = analysis.to_string();
    }

    #[test]
    fn display_mentions_all_sections() {
        let shown = ProfileAnalysis::build(&two_task_chain()).to_string();
        assert!(shown.contains("critical path"));
        assert!(shown.contains("per-worker utilization"));
        assert!(shown.contains("steal locality"));
    }

    /// Two ranks ping-ponging: rank 0's body task 1 sends msg 10 at 300
    /// (delivered 400), rank 1's body task 2 replies with msg 11 at 600
    /// (delivered 700), rank 0 finishes at 1000.
    fn two_rank_pingpong() -> TraceData {
        TraceData {
            tracks: vec![
                TrackData {
                    label: "hiper-worker-0".into(),
                    events: vec![
                        e(100, EventKind::TaskBegin, 1, 0, 0),
                        e(1000, EventKind::TaskEnd, 1, 0, 0),
                    ],
                    dropped: 0,
                    rank: Some(0),
                },
                TrackData {
                    label: "hiper-worker-0".into(),
                    events: vec![
                        e(150, EventKind::TaskBegin, 2, 0, 0),
                        e(820, EventKind::TaskEnd, 2, 0, 0),
                    ],
                    dropped: 0,
                    rank: Some(1),
                },
                TrackData {
                    label: "netsim-engine".into(),
                    events: vec![
                        e(300, EventKind::MsgSend, 1, 1, 10),
                        e(400, EventKind::MsgDeliver, 1, 1, 10),
                        e(600, EventKind::MsgSend, 2, 1 << 32, 11),
                        e(700, EventKind::MsgDeliver, 2, 1 << 32, 11),
                    ],
                    dropped: 0,
                    rank: None,
                },
            ],
        }
    }

    #[test]
    fn distributed_path_crosses_ranks_and_tiles_exactly() {
        let analysis = ProfileAnalysis::build(&two_rank_pingpong());
        let cp = analysis.critical_path.as_ref().expect("path present");
        // Walk: rank 0 compute [700,1000] <- wire [600,700] <- rank 1
        // compute [400,600] <- wire [300,400] <- rank 0 compute [100,300].
        assert_eq!(cp.chain, vec![1, 2, 1], "hops rank0 -> rank1 -> rank0");
        assert_eq!(cp.total_ns, 900, "leaf end 1000 - path start 100");
        let sum: u64 = cp.segments.iter().map(|s| s.dur_ns).sum();
        assert_eq!(sum, cp.total_ns, "segments tile the interval exactly");
        assert_eq!(cp.wire_ns, 200, "two 100ns flights");
        assert_eq!(cp.compute_ns, 700);
        assert_eq!(cp.blocked_remote_ns, 0);
        assert_eq!(cp.per_rank_ns, vec![(0, 500), (1, 200)]);
        assert_eq!(cp.straggler_rank, Some(0));
        assert_eq!(analysis.orphan_delivers, 0);
        let shown = analysis.to_string();
        assert!(shown.contains("wire"));
        assert!(shown.contains("straggler"));
    }

    #[test]
    fn orphan_deliver_degrades_to_blocked_on_remote() {
        let mut data = two_rank_pingpong();
        // Drop the send of msg 11: rank 0's resume is now an orphan edge.
        data.tracks[2].events.remove(2);
        data.tracks[2].dropped = 1;
        let analysis = ProfileAnalysis::build(&data);
        assert_eq!(analysis.orphan_delivers, 1);
        let cp = analysis
            .critical_path
            .as_ref()
            .expect("partial path still built");
        let sum: u64 = cp.segments.iter().map(|s| s.dur_ns).sum();
        assert_eq!(sum, cp.total_ns);
        assert_eq!(cp.blocked_remote_ns, 600, "task begin 100 -> deliver 700");
        assert!(analysis.to_string().contains("WARNING"));
    }

    #[test]
    fn lossy_wrapped_trace_degrades_gracefully() {
        // Ring wraparound ate the run prefix: an orphan begin with no end,
        // plus a complete task whose spawn/parent events are gone. The
        // profiler must still build a partial DAG and warn loudly.
        let data = TraceData {
            tracks: vec![TrackData {
                label: "hiper-worker-0".into(),
                events: vec![
                    e(100, EventKind::TaskBegin, 3, 0, 0),
                    e(200, EventKind::TaskBegin, 4, 0, 0),
                    e(300, EventKind::TaskEnd, 4, 0, 0),
                ],
                dropped: 57,
                rank: None,
            }],
        };
        let analysis = ProfileAnalysis::build(&data);
        assert_eq!(analysis.dropped, 57);
        let cp = analysis
            .critical_path
            .as_ref()
            .expect("partial path from task 4");
        assert_eq!(cp.chain, vec![4]);
        let shown = analysis.to_string();
        assert!(shown.contains("WARNING"), "lossy trace must warn: {shown}");
        assert!(shown.contains("PARTIAL"));
    }
}
