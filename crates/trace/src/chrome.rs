//! Chrome trace-event JSON export.
//!
//! Produces the `{"traceEvents": [...]}` object form of the [Trace Event
//! Format], loadable in Perfetto (`ui.perfetto.dev`) and
//! `chrome://tracing`. Layout:
//!
//! * **pid 1 — "hiper runtime"**: one thread track per event ring (i.e. per
//!   worker thread, rank main thread, or other emitter). Task execution,
//!   park spans, and module spans are `B`/`E` duration events; pops,
//!   steals, spawns and injector drains are thread-scoped instants.
//! * **pid 2 — "netsim"**: one track per simulated rank. A message send is
//!   a complete (`X`) event on the *source* rank's track whose duration is
//!   the modeled in-flight delay; delivery is an instant on the
//!   *destination* rank's track. Causal `MsgSend`/`MsgDeliver` edges ride
//!   the same tracks as instants carrying the parent span and message id.
//!   Because the delivery engine shares the tracer's clock
//!   ([`crate::clock`]), these interleave exactly with the worker tracks.
//! * **pid 10+N — "rank N runtime"**: in SPMD (cluster-simulator) runs,
//!   rings whose owning thread was tagged with a simulated rank move to a
//!   per-rank process so each rank's workers group together; rankless
//!   rings stay under pid 1. Importers ([`crate::TrackData::rank`] round-
//!   trips through `hiper-bench`'s traceload) recover the rank as
//!   `pid - 10`.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! Events are stably sorted by timestamp before writing; within one ring
//! timestamps are already monotone, so `B`/`E` nesting (which is per-track,
//! and every duration track is fed by exactly one ring) is preserved.

use std::fmt::Write as _;

use crate::ring::{EventKind, TraceEvent};
use crate::{resolve, TraceData};

/// Process id for rankless runtime tracks.
pub const RUNTIME_PID: u64 = 1;
/// Process id for the simulated-network tracks.
pub const NETSIM_PID: u64 = 2;
/// Ranked runtime tracks live at `RANK_PID_BASE + rank` ("rank N runtime").
pub const RANK_PID_BASE: u64 = 10;

fn esc(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// µs with ns precision, as Chrome's `ts`/`dur` fields expect.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

struct EventJson<'a> {
    name: &'a str,
    ph: char,
    ts_ns: u64,
    pid: u64,
    tid: u64,
    dur_ns: Option<u64>,
    /// (key, value) pairs; values are raw JSON fragments.
    args: Vec<(&'static str, String)>,
    thread_scoped_instant: bool,
}

fn push_event(out: &mut String, e: &EventJson) {
    out.push_str("  {\"name\":\"");
    esc(e.name, out);
    let _ = write!(
        out,
        "\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
        e.ph,
        us(e.ts_ns),
        e.pid,
        e.tid
    );
    if let Some(dur) = e.dur_ns {
        let _ = write!(out, ",\"dur\":{}", us(dur));
    }
    if e.thread_scoped_instant {
        out.push_str(",\"s\":\"t\"");
    }
    if !e.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in e.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", k, v);
        }
        out.push('}');
    }
    out.push_str("},\n");
}

fn meta(out: &mut String, name: &str, pid: u64, tid: Option<u64>, value: &str) {
    let _ = write!(
        out,
        "  {{\"name\":\"{}\",\"ph\":\"M\",\"pid\":{}",
        name, pid
    );
    if let Some(tid) = tid {
        let _ = write!(out, ",\"tid\":{}", tid);
    }
    out.push_str(",\"args\":{\"name\":\"");
    esc(value, out);
    out.push_str("\"}},\n");
}

fn module_span_name(e: &TraceEvent) -> String {
    let module = resolve(e.a);
    let op = resolve(e.b);
    if op.is_empty() {
        module.to_string()
    } else {
        format!("{}:{}", module, op)
    }
}

/// Renders drained trace data as a Chrome trace-event JSON document.
pub fn chrome_trace_json(data: &TraceData) -> String {
    // (track index, event) pairs, stably sorted by timestamp.
    let mut all: Vec<(usize, &TraceEvent)> = Vec::with_capacity(data.len());
    for (ti, track) in data.tracks.iter().enumerate() {
        for e in &track.events {
            all.push((ti, e));
        }
    }
    all.sort_by_key(|(_, e)| e.ts_ns);

    let mut out = String::with_capacity(128 + all.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    meta(&mut out, "process_name", RUNTIME_PID, None, "hiper runtime");
    meta(&mut out, "process_name", NETSIM_PID, None, "netsim");
    // Runtime tracks tagged with a simulated rank group under a per-rank
    // process; everything else stays under pid 1.
    let track_pid: Vec<u64> = data
        .tracks
        .iter()
        .map(|t| match t.rank {
            Some(r) => RANK_PID_BASE + r as u64,
            None => RUNTIME_PID,
        })
        .collect();
    for rank in data
        .tracks
        .iter()
        .filter_map(|t| t.rank)
        .collect::<std::collections::BTreeSet<_>>()
    {
        meta(
            &mut out,
            "process_name",
            RANK_PID_BASE + rank as u64,
            None,
            &format!("rank {} runtime", rank),
        );
    }
    let mut ranks_seen = std::collections::BTreeSet::new();
    for (ti, track) in data.tracks.iter().enumerate() {
        meta(
            &mut out,
            "thread_name",
            track_pid[ti],
            Some(ti as u64),
            &track.label,
        );
        for e in &track.events {
            match e.kind {
                EventKind::NetSend
                | EventKind::NetDeliver
                | EventKind::NetDrop
                | EventKind::NetDup => {
                    ranks_seen.insert(e.a >> 32);
                    ranks_seen.insert(e.a & 0xffff_ffff);
                }
                EventKind::MsgSend | EventKind::MsgDeliver => {
                    ranks_seen.insert(e.b >> 32);
                    ranks_seen.insert(e.b & 0xffff_ffff);
                }
                EventKind::RankDown | EventKind::RankRestored => {
                    ranks_seen.insert(e.a);
                }
                _ => {}
            }
        }
    }
    for rank in &ranks_seen {
        meta(
            &mut out,
            "thread_name",
            NETSIM_PID,
            Some(*rank),
            &format!("rank {}", rank),
        );
    }
    // Surface ring wraparound where it happened: a track that lost events
    // may legitimately have unbalanced B/E pairs (validators can relax).
    for (ti, track) in data.tracks.iter().enumerate() {
        if track.dropped > 0 {
            push_event(
                &mut out,
                &EventJson {
                    name: "dropped events",
                    ph: 'i',
                    ts_ns: track.events.first().map_or(0, |e| e.ts_ns),
                    pid: track_pid[ti],
                    tid: ti as u64,
                    dur_ns: None,
                    args: vec![("count", track.dropped.to_string())],
                    thread_scoped_instant: true,
                },
            );
        }
    }

    for (ti, e) in all {
        let tid = ti as u64;
        let rpid = track_pid[ti];
        let json = match e.kind {
            EventKind::TaskSpawn => EventJson {
                name: "spawn",
                ph: 'i',
                ts_ns: e.ts_ns,
                pid: rpid,
                tid,
                dur_ns: None,
                args: vec![
                    ("task", e.a.to_string()),
                    ("parent", e.b.to_string()),
                    ("place", e.c.to_string()),
                ],
                thread_scoped_instant: true,
            },
            EventKind::TaskBegin => EventJson {
                name: "task",
                ph: 'B',
                ts_ns: e.ts_ns,
                pid: rpid,
                tid,
                dur_ns: None,
                args: vec![("task", e.a.to_string()), ("place", e.c.to_string())],
                thread_scoped_instant: false,
            },
            EventKind::TaskEnd => EventJson {
                name: "task",
                ph: 'E',
                ts_ns: e.ts_ns,
                pid: rpid,
                tid,
                dur_ns: None,
                args: vec![("task", e.a.to_string())],
                thread_scoped_instant: false,
            },
            EventKind::Pop => EventJson {
                name: "pop",
                ph: 'i',
                ts_ns: e.ts_ns,
                pid: rpid,
                tid,
                dur_ns: None,
                args: vec![("task", e.a.to_string()), ("place", e.b.to_string())],
                thread_scoped_instant: true,
            },
            EventKind::Steal => EventJson {
                name: "steal",
                ph: 'i',
                ts_ns: e.ts_ns,
                pid: rpid,
                tid,
                dur_ns: None,
                args: vec![
                    ("task", e.a.to_string()),
                    ("victim", e.b.to_string()),
                    ("place", e.c.to_string()),
                ],
                thread_scoped_instant: true,
            },
            EventKind::BatchSteal => EventJson {
                name: "steal.batch",
                ph: 'i',
                ts_ns: e.ts_ns,
                pid: rpid,
                tid,
                dur_ns: None,
                args: vec![("banked", e.a.to_string())],
                thread_scoped_instant: true,
            },
            EventKind::InjectorDrain => EventJson {
                name: "injector",
                ph: 'i',
                ts_ns: e.ts_ns,
                pid: rpid,
                tid,
                dur_ns: None,
                args: vec![("task", e.a.to_string()), ("place", e.b.to_string())],
                thread_scoped_instant: true,
            },
            EventKind::Park => EventJson {
                name: "park",
                ph: 'B',
                ts_ns: e.ts_ns,
                pid: rpid,
                tid,
                dur_ns: None,
                args: Vec::new(),
                thread_scoped_instant: false,
            },
            EventKind::Unpark => EventJson {
                name: "park",
                ph: 'E',
                ts_ns: e.ts_ns,
                pid: rpid,
                tid,
                dur_ns: None,
                args: vec![("woken", e.a.to_string())],
                thread_scoped_instant: false,
            },
            EventKind::ModuleEnter | EventKind::ModuleExit => {
                let name = module_span_name(e);
                let mut args = Vec::new();
                if e.kind == EventKind::ModuleEnter && e.c > 0 {
                    args.push(("bytes", e.c.to_string()));
                }
                push_event(
                    &mut out,
                    &EventJson {
                        name: &name,
                        ph: if e.kind == EventKind::ModuleEnter {
                            'B'
                        } else {
                            'E'
                        },
                        ts_ns: e.ts_ns,
                        pid: rpid,
                        tid,
                        dur_ns: None,
                        args,
                        thread_scoped_instant: false,
                    },
                );
                continue;
            }
            EventKind::NetSend => {
                let (src, dst) = (e.a >> 32, e.a & 0xffff_ffff);
                let name = format!("msg to {}", dst);
                push_event(
                    &mut out,
                    &EventJson {
                        name: &name,
                        ph: 'X',
                        ts_ns: e.ts_ns,
                        pid: NETSIM_PID,
                        tid: src,
                        dur_ns: Some(e.c.max(1)),
                        args: vec![
                            ("src", src.to_string()),
                            ("dst", dst.to_string()),
                            ("bytes", e.b.to_string()),
                            ("delay_ns", e.c.to_string()),
                        ],
                        thread_scoped_instant: false,
                    },
                );
                continue;
            }
            EventKind::NetDeliver => {
                let (src, dst) = (e.a >> 32, e.a & 0xffff_ffff);
                push_event(
                    &mut out,
                    &EventJson {
                        name: "deliver",
                        ph: 'i',
                        ts_ns: e.ts_ns,
                        pid: NETSIM_PID,
                        tid: dst,
                        dur_ns: None,
                        args: vec![("src", src.to_string()), ("bytes", e.b.to_string())],
                        thread_scoped_instant: true,
                    },
                );
                continue;
            }
            EventKind::NetDrop | EventKind::NetDup => {
                let (src, dst) = (e.a >> 32, e.a & 0xffff_ffff);
                let mut args = vec![
                    ("src", src.to_string()),
                    ("dst", dst.to_string()),
                    ("bytes", e.b.to_string()),
                ];
                if e.kind == EventKind::NetDrop {
                    args.push(("cause", e.c.to_string()));
                }
                push_event(
                    &mut out,
                    &EventJson {
                        name: if e.kind == EventKind::NetDrop {
                            "drop"
                        } else {
                            "dup"
                        },
                        ph: 'i',
                        ts_ns: e.ts_ns,
                        pid: NETSIM_PID,
                        tid: src,
                        dur_ns: None,
                        args,
                        thread_scoped_instant: true,
                    },
                );
                continue;
            }
            EventKind::RelRetry => {
                let (src, dst) = (e.a >> 32, e.a & 0xffff_ffff);
                push_event(
                    &mut out,
                    &EventJson {
                        name: "retry",
                        ph: 'i',
                        ts_ns: e.ts_ns,
                        pid: NETSIM_PID,
                        tid: src,
                        dur_ns: None,
                        args: vec![
                            ("dst", dst.to_string()),
                            ("seq", e.b.to_string()),
                            ("attempt", e.c.to_string()),
                        ],
                        thread_scoped_instant: true,
                    },
                );
                continue;
            }
            EventKind::MsgSend | EventKind::MsgDeliver => {
                // Causal edge endpoints: a = parent span, b = src<<32|dst,
                // c = message id. Sends sit on the source rank's netsim
                // track, delivers (stamped at the modeled due time) on the
                // destination's, so the edge is visible as a pair of
                // instants bracketing the modeled wire time.
                let (src, dst) = (e.b >> 32, e.b & 0xffff_ffff);
                let send = e.kind == EventKind::MsgSend;
                push_event(
                    &mut out,
                    &EventJson {
                        name: if send { "msg_send" } else { "msg_deliver" },
                        ph: 'i',
                        ts_ns: e.ts_ns,
                        pid: NETSIM_PID,
                        tid: if send { src } else { dst },
                        dur_ns: None,
                        args: vec![
                            ("span", e.a.to_string()),
                            ("src", src.to_string()),
                            ("dst", dst.to_string()),
                            ("msg", e.c.to_string()),
                        ],
                        thread_scoped_instant: true,
                    },
                );
                continue;
            }
            EventKind::RankDown | EventKind::RankRestored => {
                // Supervision lifecycle markers on the rank's netsim track:
                // a = rank, b = new transport epoch (RankRestored only).
                let restored = e.kind == EventKind::RankRestored;
                let mut args = vec![("rank", e.a.to_string())];
                if restored {
                    args.push(("epoch", e.b.to_string()));
                }
                push_event(
                    &mut out,
                    &EventJson {
                        name: if restored {
                            "rank_restored"
                        } else {
                            "rank_down"
                        },
                        ph: 'i',
                        ts_ns: e.ts_ns,
                        pid: NETSIM_PID,
                        tid: e.a,
                        dur_ns: None,
                        args,
                        thread_scoped_instant: true,
                    },
                );
                continue;
            }
            EventKind::TaskRetry => EventJson {
                name: "task_retry",
                ph: 'i',
                ts_ns: e.ts_ns,
                pid: rpid,
                tid,
                dur_ns: None,
                args: vec![
                    ("attempt", e.a.to_string()),
                    ("max_attempts", e.b.to_string()),
                ],
                thread_scoped_instant: true,
            },
            EventKind::TaskPanic => EventJson {
                name: "task panic",
                ph: 'i',
                ts_ns: e.ts_ns,
                pid: rpid,
                tid,
                dur_ns: None,
                args: vec![("task", e.a.to_string()), ("place", e.b.to_string())],
                thread_scoped_instant: true,
            },
        };
        push_event(&mut out, &json);
    }
    // Strip the trailing ",\n" and close.
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrackData;

    fn data(events: Vec<TraceEvent>) -> TraceData {
        TraceData {
            tracks: vec![TrackData {
                label: "worker-0".into(),
                events,
                dropped: 0,
                rank: None,
            }],
        }
    }

    #[test]
    fn emits_valid_shape_and_pairs() {
        let d = data(vec![
            TraceEvent {
                ts_ns: 1000,
                kind: EventKind::TaskBegin,
                a: 1,
                b: 0,
                c: 0,
            },
            TraceEvent {
                ts_ns: 1500,
                kind: EventKind::Pop,
                a: 2,
                b: 0,
                c: 0,
            },
            TraceEvent {
                ts_ns: 2000,
                kind: EventKind::TaskEnd,
                a: 1,
                b: 0,
                c: 0,
            },
            TraceEvent {
                ts_ns: 2500,
                kind: EventKind::NetSend,
                a: 1u64 << 32, // src 1, dst 0
                b: 64,
                c: 40_000,
            },
        ]);
        let json = chrome_trace_json(&d);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"pid\":2"));
        assert!(json.contains("hiper runtime"));
        assert!(json.trim_end().ends_with("]}"));
        // ts rendering: 1000 ns = 1.000 us.
        assert!(json.contains("\"ts\":1.000"));
    }

    #[test]
    fn escapes_labels() {
        let d = TraceData {
            tracks: vec![TrackData {
                label: "we\"ird\\name".into(),
                events: vec![],
                dropped: 0,
                rank: None,
            }],
        };
        let json = chrome_trace_json(&d);
        assert!(json.contains("we\\\"ird\\\\name"));
    }
}
