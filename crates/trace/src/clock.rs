//! The shared monotonic trace clock.
//!
//! Every event in a trace — worker events, module spans, simulated-network
//! sends and deliveries — is timestamped from *one* epoch so tracks from
//! different threads (and the netsim delivery engine) interleave correctly
//! on the exported timeline. The epoch is the first call to [`now_ns`]
//! anywhere in the process; timestamps are nanoseconds since then.
//!
//! The netsim delivery engine routes its due-time arithmetic through this
//! clock too (rather than calling `Instant::now()` independently at the
//! schedule and delivery sites), which is what makes a `NetDeliver` event
//! land at exactly `NetSend + modeled delay` on the exported timeline.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The process-wide trace epoch. First caller pins it.
pub fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch. Monotone and shared by every emitter.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Converts a trace timestamp back to an [`Instant`] (for condvar deadlines
/// in components that schedule against the trace clock, e.g. the netsim
/// delivery engine).
pub fn instant_at(ts_ns: u64) -> Instant {
    epoch() + Duration::from_nanos(ts_ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_and_shared() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
        let handles: Vec<_> = (0..4).map(|_| std::thread::spawn(now_ns)).collect();
        let floor = a;
        for h in handles {
            assert!(h.join().unwrap() >= floor);
        }
    }

    #[test]
    fn instant_roundtrip() {
        let t = now_ns();
        let back = instant_at(t);
        // `back` is in the past (or now); converting forward again must not
        // move it before `t`.
        assert!(back <= Instant::now());
        assert!(instant_at(t + 1_000_000) > back);
    }
}
