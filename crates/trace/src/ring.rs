//! Per-thread lock-free event ring buffers.
//!
//! Each emitting thread owns one fixed-capacity ring. The owning thread is
//! the *only* writer; the collector reads concurrently. Slots hold the five
//! words of a [`TraceEvent`] as relaxed atomics (so concurrent reads are
//! race-free in the memory-model sense), and the write cursor counts total
//! events ever written: publishing is a single `Release` store of
//! `head + 1`, with no RMW and no fence on the emit path.
//!
//! On wrap the writer overwrites the oldest slot — *drop-oldest* semantics.
//! The collector computes how many events fell off the back since its last
//! drain and surfaces that as a dropped-events counter rather than silently
//! pretending the trace is complete. If the writer laps the collector
//! *during* a drain, an event read from the contested window may mix words
//! of two events; drains happen at shutdown or between phases in practice,
//! so the window is empty there, and the slot-atomics guarantee this is at
//! worst a garbled event, never undefined behavior.

use std::sync::atomic::{AtomicU64, Ordering};

/// What happened. Discriminants are stable (they appear raw in ring slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A task was created. `a` = task id, `b` = parent task id (0 = none),
    /// `c` = place index.
    TaskSpawn = 1,
    /// A task started executing. `a` = task id, `c` = place index.
    TaskBegin = 2,
    /// A task finished executing. `a` = task id.
    TaskEnd = 3,
    /// A worker popped from its own deque. `a` = task id, `b` = place index.
    Pop = 4,
    /// A worker stole from another worker's deque. `a` = task id,
    /// `b` = victim worker, `c` = place index.
    Steal = 5,
    /// A successful steal banked extra tasks in the thief's home deque.
    /// `a` = tasks banked (lower bound).
    BatchSteal = 6,
    /// A worker drained a place injector. `a` = task id, `b` = place index.
    InjectorDrain = 7,
    /// A worker parked (begin of an idle span).
    Park = 8,
    /// A worker unparked (end of the idle span). `a` = 1 if explicitly
    /// woken, 0 on timeout.
    Unpark = 9,
    /// Entry into a pluggable module's API. `a` = interned module name,
    /// `b` = interned op name (0 = unspecified), `c` = payload bytes.
    ModuleEnter = 10,
    /// Exit from a module API. `a`/`b` as in `ModuleEnter`.
    ModuleExit = 11,
    /// A simulated-network message was injected. `a` = src<<32|dst,
    /// `b` = wire bytes, `c` = modeled delay in ns.
    NetSend = 12,
    /// A simulated-network message was delivered. `a` = src<<32|dst,
    /// `b` = wire bytes.
    NetDeliver = 13,
    /// A simulated-network message was dropped by fault injection (or a
    /// panicking handler). `a` = src<<32|dst, `b` = wire bytes, `c` = cause
    /// (1 = random drop, 2 = partition/kill window, 3 = handler panic).
    NetDrop = 14,
    /// Fault injection delivered an extra copy of a message.
    /// `a` = src<<32|dst, `b` = wire bytes.
    NetDup = 15,
    /// A reliable transport retransmitted an unacked frame.
    /// `a` = src<<32|dst, `b` = frame sequence number, `c` = attempt count.
    RelRetry = 16,
    /// A task panicked and poisoned its finish scope. `a` = task id
    /// (0 when spawned untraced), `b` = place index.
    TaskPanic = 17,
    /// Causal edge: a message left a rank carrying a span. `a` = parent
    /// span id (trace id of the sending task, 0 = untraced), `b` =
    /// src<<32|dst, `c` = globally unique message id. Emitted with the
    /// same timestamp as the adjacent `NetSend`.
    MsgSend = 18,
    /// Causal edge: the message arrived. `a` = parent span id, `b` =
    /// src<<32|dst, `c` = the matching `MsgSend` message id. Timestamped
    /// at the modeled due time, so deliver ts = send ts + modeled delay.
    MsgDeliver = 19,
    /// A simulated rank went down (supervised kill or detected failure).
    /// `a` = rank, `b` = reserved (0).
    RankDown = 20,
    /// A previously-down rank came back after recovery. `a` = rank,
    /// `b` = new reliable-transport epoch (0 when unknown).
    RankRestored = 21,
    /// A supervised finish scope re-executed its body after a transient
    /// failure. `a` = attempt number (1-based), `b` = max attempts,
    /// `c` = interned error excerpt (0 = none).
    TaskRetry = 22,
}

impl EventKind {
    /// Decodes a raw discriminant (drain path). `None` for a garbled slot.
    pub fn from_u64(v: u64) -> Option<EventKind> {
        use EventKind::*;
        Some(match v {
            1 => TaskSpawn,
            2 => TaskBegin,
            3 => TaskEnd,
            4 => Pop,
            5 => Steal,
            6 => BatchSteal,
            7 => InjectorDrain,
            8 => Park,
            9 => Unpark,
            10 => ModuleEnter,
            11 => ModuleExit,
            12 => NetSend,
            13 => NetDeliver,
            14 => NetDrop,
            15 => NetDup,
            16 => RelRetry,
            17 => TaskPanic,
            18 => MsgSend,
            19 => MsgDeliver,
            20 => RankDown,
            21 => RankRestored,
            22 => TaskRetry,
            _ => return None,
        })
    }

    /// Stable lowercase name (report keys).
    pub fn name(self) -> &'static str {
        use EventKind::*;
        match self {
            TaskSpawn => "task_spawn",
            TaskBegin => "task_begin",
            TaskEnd => "task_end",
            Pop => "pop",
            Steal => "steal",
            BatchSteal => "batch_steal",
            InjectorDrain => "injector_drain",
            Park => "park",
            Unpark => "unpark",
            ModuleEnter => "module_enter",
            ModuleExit => "module_exit",
            NetSend => "net_send",
            NetDeliver => "net_deliver",
            NetDrop => "net_drop",
            NetDup => "net_dup",
            RelRetry => "rel_retry",
            TaskPanic => "task_panic",
            MsgSend => "msg_send",
            MsgDeliver => "msg_deliver",
            RankDown => "rank_down",
            RankRestored => "rank_restored",
            TaskRetry => "task_retry",
        }
    }
}

/// One structured, timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the trace epoch ([`crate::clock`]).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload; see [`EventKind`] docs.
    pub a: u64,
    /// Kind-specific payload.
    pub b: u64,
    /// Kind-specific payload.
    pub c: u64,
}

/// Words per slot: ts, kind, a, b, c.
const SLOT_WORDS: usize = 5;

#[derive(Default)]
struct Slot([AtomicU64; SLOT_WORDS]);

/// Pads the write cursor to its own cache line so the collector's reads
/// never contend with a neighbouring ring's cursor.
#[repr(align(128))]
struct PaddedCursor(AtomicU64);

/// A single-writer, fixed-capacity, drop-oldest event ring.
pub struct EventRing {
    label: String,
    mask: u64,
    slots: Box<[Slot]>,
    /// Total events ever written (not an index); slot = head & mask.
    head: PaddedCursor,
}

impl EventRing {
    /// Creates a ring holding `capacity` events (rounded up to a power of
    /// two, minimum 8).
    pub fn with_capacity(label: impl Into<String>, capacity: usize) -> EventRing {
        let cap = capacity.max(8).next_power_of_two();
        EventRing {
            label: label.into(),
            mask: (cap - 1) as u64,
            slots: (0..cap).map(|_| Slot::default()).collect(),
            head: PaddedCursor(AtomicU64::new(0)),
        }
    }

    /// The ring's label (usually the owning thread's name).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever written.
    pub fn written(&self) -> u64 {
        self.head.0.load(Ordering::Acquire)
    }

    /// Records one event. MUST only be called by the ring's owning thread
    /// (single-writer invariant); the global tracer guarantees this by
    /// handing each thread its own ring.
    #[inline]
    pub fn emit(&self, e: TraceEvent) {
        let h = self.head.0.load(Ordering::Relaxed);
        let slot = &self.slots[(h & self.mask) as usize];
        slot.0[0].store(e.ts_ns, Ordering::Relaxed);
        slot.0[1].store(e.kind as u64, Ordering::Relaxed);
        slot.0[2].store(e.a, Ordering::Relaxed);
        slot.0[3].store(e.b, Ordering::Relaxed);
        slot.0[4].store(e.c, Ordering::Relaxed);
        self.head.0.store(h + 1, Ordering::Release);
    }

    /// Reads every event written since `read_pos` (a cursor value returned
    /// by a previous call, 0 initially). Returns `(events, new_read_pos,
    /// dropped)`, where `dropped` counts events overwritten before they
    /// could be read. Garbled slots (writer lapped us mid-drain) are
    /// skipped and counted as dropped.
    pub fn drain_from(&self, read_pos: u64) -> (Vec<TraceEvent>, u64, u64) {
        let head = self.head.0.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = read_pos.max(head.saturating_sub(cap));
        let mut dropped = start - read_pos;
        let mut events = Vec::with_capacity((head - start) as usize);
        for i in start..head {
            let slot = &self.slots[(i & self.mask) as usize];
            let ts = slot.0[0].load(Ordering::Relaxed);
            let kind = slot.0[1].load(Ordering::Relaxed);
            let a = slot.0[2].load(Ordering::Relaxed);
            let b = slot.0[3].load(Ordering::Relaxed);
            let c = slot.0[4].load(Ordering::Relaxed);
            match EventKind::from_u64(kind) {
                Some(kind) => events.push(TraceEvent {
                    ts_ns: ts,
                    kind,
                    a,
                    b,
                    c,
                }),
                None => dropped += 1,
            }
        }
        (events, head, dropped)
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("label", &self.label)
            .field("capacity", &self.capacity())
            .field("written", &self.written())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, a: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: a,
            kind,
            a,
            b: 0,
            c: 0,
        }
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(EventRing::with_capacity("x", 0).capacity(), 8);
        assert_eq!(EventRing::with_capacity("x", 9).capacity(), 16);
        assert_eq!(EventRing::with_capacity("x", 64).capacity(), 64);
    }

    #[test]
    fn emit_and_drain_in_order() {
        let ring = EventRing::with_capacity("t", 16);
        for i in 0..10 {
            ring.emit(ev(EventKind::Pop, i));
        }
        let (events, pos, dropped) = ring.drain_from(0);
        assert_eq!(events.len(), 10);
        assert_eq!(pos, 10);
        assert_eq!(dropped, 0);
        assert!(events.iter().enumerate().all(|(i, e)| e.a == i as u64));
        // Incremental drain picks up only the new tail.
        ring.emit(ev(EventKind::Steal, 99));
        let (events, pos, dropped) = ring.drain_from(pos);
        assert_eq!((events.len(), pos, dropped), (1, 11, 0));
        assert_eq!(events[0].kind, EventKind::Steal);
    }
}
