//! Structured runtime tracing for HiPER (paper §V).
//!
//! "Like any unified scheduler, the HiPER runtime is aware of all of the
//! work executing on a system." This crate turns that awareness into data:
//! timestamped structured events — task lifecycle, scheduler transitions,
//! module entry/exit, simulated-network sends and deliveries — recorded
//! into per-thread lock-free ring buffers and exported as Chrome
//! trace-event JSON (loadable in Perfetto / `chrome://tracing`) plus a
//! compact aggregated report.
//!
//! # Cost model
//!
//! Tracing is disabled by default. Every emit site checks one global
//! `AtomicBool` with a relaxed load and does nothing else when disabled, so
//! instrumented hot paths stay hot. When enabled, an emit is one clock read
//! plus five relaxed stores into the calling thread's own ring — no locks,
//! no allocation, no cross-thread cache traffic (measured numbers live in
//! `BENCH_trace_overhead.json`).
//!
//! # Usage
//!
//! ```
//! // In a binary: honor --trace <out.json> / HIPER_TRACE=out.json.
//! let session = hiper_trace::session_from_env_args();
//! // ... run traced work ...
//! drop(session); // drains all rings, writes the JSON, prints the report path
//! ```
//!
//! Rings are *drop-oldest*: a thread that outruns its ring overwrites its
//! own oldest events and the loss is surfaced as a dropped-events counter,
//! never as a stall of the traced program.

pub mod analysis;
pub mod chrome;
pub mod clock;
pub mod diff;
pub mod report;
mod ring;

pub use ring::{EventKind, EventRing, TraceEvent};

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, RwLock};

/// Global on/off switch. Relaxed loads on the emit path: flipping the flag
/// is a SeqCst store, and emitters observe it "soon" — exact cutover
/// ordering against in-flight events is not needed (events carry their own
/// timestamps).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Task-id allocator. Id 0 is reserved for "untraced".
static NEXT_TASK_ID: AtomicU64 = AtomicU64::new(1);

/// Default per-thread ring capacity (events). Overridable with
/// `HIPER_TRACE_BUF` (parsed once, at first ring registration).
const DEFAULT_RING_CAPACITY: usize = 1 << 16;

thread_local! {
    /// This thread's ring, created and registered on first emit.
    static THREAD_RING: RefCell<Option<Arc<EventRing>>> = const { RefCell::new(None) };
    /// Trace id of the task currently executing on this thread (0 = none).
    static CURRENT_TASK: Cell<u64> = const { Cell::new(0) };
    /// Simulated rank this thread belongs to (`None` outside SPMD runs).
    /// Captured into the ring's registration so per-rank tracks can be
    /// separated in the exported trace.
    static AMBIENT_RANK: Cell<Option<usize>> = const { Cell::new(None) };
}

struct Registered {
    ring: Arc<EventRing>,
    /// Collector cursor into `ring`; guarded by the registry lock.
    read_pos: u64,
    /// Ambient rank of the owning thread at registration time.
    rank: Option<usize>,
}

struct Registry {
    rings: Mutex<Vec<Registered>>,
    /// Interned strings for module/op names; id = index + 1, 0 = none.
    strings: RwLock<Vec<&'static str>>,
    ring_capacity: usize,
    thread_seq: AtomicU64,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        rings: Mutex::new(Vec::new()),
        strings: RwLock::new(Vec::new()),
        ring_capacity: std::env::var("HIPER_TRACE_BUF")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_RING_CAPACITY),
        thread_seq: AtomicU64::new(0),
    })
}

/// True when tracing is on. One relaxed load; inline this check before
/// computing event payloads on hot paths.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on or off. Safe to flip at any time from any thread;
/// events already in rings are kept.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
    if on {
        // Pin the epoch now so the first events don't race epoch init.
        let _ = clock::epoch();
    }
}

/// Allocates a fresh task id for spawn-site attribution, or 0 when tracing
/// is disabled (0 marks the task untraced for its whole lifetime).
#[inline]
pub fn fresh_task_id() -> u64 {
    if enabled() {
        NEXT_TASK_ID.fetch_add(1, Ordering::Relaxed)
    } else {
        0
    }
}

/// The trace id of the task currently executing on this thread (0 = none).
/// Used as the parent id at spawn sites.
#[inline]
pub fn current_task() -> u64 {
    CURRENT_TASK.with(|c| c.get())
}

/// Installs `id` as the current task, returning the previous value (restore
/// it when the task finishes — tasks nest under help-first blocking).
#[inline]
pub fn set_current_task(id: u64) -> u64 {
    CURRENT_TASK.with(|c| c.replace(id))
}

/// Tags the calling thread as belonging to simulated rank `rank`. Set on
/// SPMD rank-main threads before the per-rank runtime spawns its workers;
/// workers inherit it at spawn so every ring registered afterwards carries
/// the rank. Must be called before this thread's first emit to take effect
/// for the ring label.
pub fn set_ambient_rank(rank: usize) {
    AMBIENT_RANK.with(|c| c.set(Some(rank)));
}

/// The simulated rank the calling thread was tagged with, if any.
pub fn ambient_rank() -> Option<usize> {
    AMBIENT_RANK.with(|c| c.get())
}

/// Interns a static string (module or op name), returning a stable nonzero
/// id events can carry. Idempotent; cheap read-mostly lookup.
pub fn intern(s: &'static str) -> u64 {
    let reg = registry();
    {
        let strings = reg.strings.read();
        if let Some(i) = strings.iter().position(|&x| std::ptr::eq(x, s) || x == s) {
            return (i + 1) as u64;
        }
    }
    let mut strings = reg.strings.write();
    if let Some(i) = strings.iter().position(|&x| x == s) {
        return (i + 1) as u64;
    }
    strings.push(s);
    strings.len() as u64
}

/// Resolves an interned id back to its string ("" for 0 or unknown ids).
pub fn resolve(id: u64) -> &'static str {
    if id == 0 {
        return "";
    }
    registry()
        .strings
        .read()
        .get((id - 1) as usize)
        .copied()
        .unwrap_or("")
}

/// Records one event on the calling thread's ring (registering the ring on
/// first use). No-op when tracing is disabled.
#[inline]
pub fn emit(kind: EventKind, a: u64, b: u64, c: u64) {
    if !enabled() {
        return;
    }
    emit_always(kind, a, b, c);
}

/// Records one event regardless of the enable flag (callers that already
/// checked [`enabled`] and must keep begin/end spans balanced).
pub fn emit_always(kind: EventKind, a: u64, b: u64, c: u64) {
    emit_event(TraceEvent {
        ts_ns: clock::now_ns(),
        kind,
        a,
        b,
        c,
    });
}

/// Records one event with an explicit timestamp instead of the current
/// clock. No-op when tracing is disabled. Used by netsim to stamp
/// `MsgDeliver` at the modeled due time (so the exported timeline satisfies
/// deliver = send + modeled delay exactly) and to give `MsgSend`/`NetSend`
/// pairs one shared timestamp.
#[inline]
pub fn emit_at(ts_ns: u64, kind: EventKind, a: u64, b: u64, c: u64) {
    if !enabled() {
        return;
    }
    emit_event(TraceEvent {
        ts_ns,
        kind,
        a,
        b,
        c,
    });
}

fn emit_event(e: TraceEvent) {
    THREAD_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        let ring = slot.get_or_insert_with(register_thread_ring);
        ring.emit(e);
    });
}

fn register_thread_ring() -> Arc<EventRing> {
    let reg = registry();
    let seq = reg.thread_seq.fetch_add(1, Ordering::Relaxed);
    let label = std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("thread-{}", seq));
    let ring = Arc::new(EventRing::with_capacity(label, reg.ring_capacity));
    reg.rings.lock().push(Registered {
        ring: Arc::clone(&ring),
        read_pos: 0,
        rank: ambient_rank(),
    });
    ring
}

/// One ring's worth of drained events.
#[derive(Debug)]
pub struct TrackData {
    /// Ring label (owning thread's name).
    pub label: String,
    /// Events in emit order (timestamps are monotone within a track).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring wraparound since the previous drain.
    pub dropped: u64,
    /// Simulated rank the owning thread belonged to (`None` for
    /// single-runtime / non-SPMD threads).
    pub rank: Option<usize>,
}

/// Everything drained from every ring.
#[derive(Debug, Default)]
pub struct TraceData {
    /// One entry per registered ring (including rings of exited threads).
    pub tracks: Vec<TrackData>,
}

impl TraceData {
    /// Total events across tracks.
    pub fn len(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// True when no track holds any event.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total dropped events across tracks.
    pub fn dropped(&self) -> u64 {
        self.tracks.iter().map(|t| t.dropped).sum()
    }
}

/// Events lost to ring wraparound so far, across all rings, *without*
/// draining (the collector cursors are left untouched, so a later
/// [`drain`] still returns everything still reachable). Harness `--stats`
/// reports poll this to warn that a trace is incomplete.
pub fn rings_dropped() -> u64 {
    let reg = registry();
    let rings = reg.rings.lock();
    rings
        .iter()
        .map(|entry| {
            let written = entry.ring.written();
            let reachable = entry.ring.capacity() as u64;
            written
                .saturating_sub(reachable)
                .saturating_sub(entry.read_pos)
        })
        .sum()
}

/// Drains every registered ring (incremental: a second drain returns only
/// events emitted since the first). Call after the traced workload has
/// quiesced — at shutdown or between phases — so writers aren't racing the
/// collector.
pub fn drain() -> TraceData {
    let reg = registry();
    let mut rings = reg.rings.lock();
    let mut tracks = Vec::with_capacity(rings.len());
    for entry in rings.iter_mut() {
        let (events, pos, dropped) = entry.ring.drain_from(entry.read_pos);
        entry.read_pos = pos;
        tracks.push(TrackData {
            label: entry.ring.label().to_string(),
            events,
            dropped,
            rank: entry.rank,
        });
    }
    TraceData { tracks }
}

/// Copies every registered ring's reachable events *without* advancing the
/// collector cursors: a later [`drain`] still returns everything. Used by
/// the stall watchdog to embed the trace tail in a flight record without
/// stealing events from the eventual end-of-run export. Writers may still
/// be appending concurrently; the snapshot is a best-effort view, exactly
/// like any drain taken before quiescence.
pub fn snapshot() -> TraceData {
    let reg = registry();
    let rings = reg.rings.lock();
    let mut tracks = Vec::with_capacity(rings.len());
    for entry in rings.iter() {
        let (events, _pos, dropped) = entry.ring.drain_from(entry.read_pos);
        tracks.push(TrackData {
            label: entry.ring.label().to_string(),
            events,
            dropped,
            rank: entry.rank,
        });
    }
    TraceData { tracks }
}

/// An enabled tracing session that, on [`finish`](TraceSession::finish) (or
/// drop), disables tracing, drains every ring, and writes Chrome-trace JSON
/// to its output path.
pub struct TraceSession {
    path: std::path::PathBuf,
    /// Also print the aggregated report to stderr at finish.
    pub report: bool,
    finished: bool,
}

impl TraceSession {
    /// Enables tracing; the trace is written to `path` when the session
    /// ends.
    pub fn start(path: impl Into<std::path::PathBuf>) -> TraceSession {
        set_enabled(true);
        TraceSession {
            path: path.into(),
            report: true,
            finished: false,
        }
    }

    /// The output path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Disables tracing, drains, writes the trace file, and returns the
    /// drained data (for callers that also want the aggregate).
    pub fn finish(mut self) -> std::io::Result<TraceData> {
        self.finished = true;
        self.finish_inner()
    }

    fn finish_inner(&mut self) -> std::io::Result<TraceData> {
        set_enabled(false);
        let data = drain();
        let json = chrome::chrome_trace_json(&data);
        std::fs::write(&self.path, json)?;
        if data.dropped() > 0 {
            // Loud by design: a wrapped ring means the timeline has holes
            // and every downstream analysis (trace_check pairing, critical
            // path, queue latencies) is undercounting.
            eprintln!(
                "[hiper-trace] WARNING: {} event(s) lost to ring wraparound — \
                 the trace is INCOMPLETE; raise HIPER_TRACE_BUF (current \
                 default {} events/thread) or trace a shorter window",
                data.dropped(),
                registry().ring_capacity
            );
        }
        if self.report {
            let rpt = report::TraceReport::build(&data);
            eprintln!(
                "[hiper-trace] wrote {} ({} events, {} dropped)",
                self.path.display(),
                data.len(),
                data.dropped()
            );
            eprintln!("{}", rpt);
        }
        Ok(data)
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        if !self.finished {
            if let Err(e) = self.finish_inner() {
                eprintln!(
                    "[hiper-trace] failed to write {}: {}",
                    self.path.display(),
                    e
                );
            }
        }
    }
}

/// Builds a session from the conventional CLI surface: `--trace <out.json>`
/// (or `--trace=<out.json>`) in `std::env::args`, falling back to the
/// `HIPER_TRACE` environment variable. Returns `None` when neither is set.
pub fn session_from_env_args() -> Option<TraceSession> {
    let mut args = std::env::args();
    let mut path: Option<String> = None;
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            path = args.next();
            break;
        }
        if let Some(rest) = arg.strip_prefix("--trace=") {
            path = Some(rest.to_string());
            break;
        }
    }
    let path = path.or_else(|| std::env::var("HIPER_TRACE").ok())?;
    if path.is_empty() {
        return None;
    }
    Some(TraceSession::start(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_resolvable() {
        let a = intern("test-module-x");
        let b = intern("test-module-x");
        assert_eq!(a, b);
        assert_ne!(a, 0);
        assert_eq!(resolve(a), "test-module-x");
        assert_eq!(resolve(0), "");
    }

    #[test]
    fn fresh_ids_zero_when_disabled() {
        // Tests in this binary share the global flag; hold no assumptions
        // about other tests' state beyond toggling it ourselves.
        set_enabled(false);
        assert_eq!(fresh_task_id(), 0);
        set_enabled(true);
        let a = fresh_task_id();
        let b = fresh_task_id();
        assert!(a != 0 && b != 0 && a != b);
        set_enabled(false);
    }

    #[test]
    fn current_task_nests() {
        assert_eq!(current_task(), 0);
        let prev = set_current_task(7);
        assert_eq!(prev, 0);
        assert_eq!(current_task(), 7);
        let prev2 = set_current_task(9);
        assert_eq!(prev2, 7);
        set_current_task(prev2);
        set_current_task(prev);
        assert_eq!(current_task(), 0);
    }
}
