//! Differential profiling: aligns two same-workload traces (baseline vs
//! candidate) and attributes the wall-clock delta to concrete causes —
//! per-segment shifts on the critical path (compute / module / pop-wait /
//! steal-wait / wire / blocked-on-remote), per-module:op time-share moves,
//! per-worker utilization deltas, and spawn→begin queue-latency
//! distribution shifts (DESIGN.md §2.14).
//!
//! The unit of comparison is a [`DiffInput`]: a compact per-run profile
//! extracted from drained [`TraceData`] (or re-loaded Chrome JSON) by
//! [`DiffInput::from_trace`], optionally refined with a machine-readable
//! metrics snapshot via [`DiffInput::apply_metrics`]. Profiles serialize to
//! a few KB of JSON — cheap enough to commit next to the perf-gate
//! baseline — and two of them diff without re-reading the source traces.
//!
//! Alignment is structural, not positional: task ids differ across runs,
//! so tasks are matched by a signature hashed from their spawn-tree path
//! (root ordinal, then each child's spawn ordinal under its parent) and
//! modules by their interned `module:op` labels. A diff of a trace against
//! itself is exactly zero everywhere — the self-test the roundtrip suite
//! pins.

use std::collections::BTreeMap;
use std::fmt;

use hiper_metrics::{bucket_index, HistogramSnapshot, MetricsSnapshot};
use hiper_platform::json::Json;

use crate::analysis::{ProfileAnalysis, SegmentKind};
use crate::ring::EventKind;
use crate::{resolve, TraceData};

/// The runtime's spawn→begin latency histogram; when a metrics snapshot
/// carries it, [`DiffInput::apply_metrics`] prefers it over the
/// trace-derived histogram (metrics see every task, rings can wrap).
pub const QUEUE_LATENCY_METRIC: &str = "hiper_task_queue_latency_ns";

/// Critical-path segment kinds in report order.
pub const PATH_KINDS: [SegmentKind; 6] = [
    SegmentKind::Compute,
    SegmentKind::Module,
    SegmentKind::PopWait,
    SegmentKind::StealWait,
    SegmentKind::Wire,
    SegmentKind::BlockedOnRemote,
];

fn kind_index(kind: SegmentKind) -> usize {
    PATH_KINDS.iter().position(|&k| k == kind).unwrap_or(0)
}

/// Per-`module:op` aggregates for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModuleStat {
    /// Completed spans (every nesting level, like the trace report).
    pub calls: u64,
    /// Total span time across all tracks (concurrent spans sum).
    pub total_ns: u64,
    /// Overlap of this module's spans with the critical path.
    pub path_ns: u64,
    /// Task owning the largest on-path slice (0 = none).
    pub path_task: u64,
    /// Rank of that slice (`None` for rankless traces).
    pub path_rank: Option<usize>,
}

/// One worker's busy aggregate, keyed by `(rank, label)` so the same
/// worker matches across runs and trace reloads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStat {
    /// Simulated rank (`None` for rankless tracks).
    pub rank: Option<usize>,
    /// Thread label.
    pub label: String,
    /// Tasks that began here.
    pub tasks: u64,
    /// Time inside top-level task spans.
    pub busy_ns: u64,
}

/// Structural signature of a run's task DAG. Each task hashes its
/// spawn-tree path (parent signature + its spawn ordinal among siblings),
/// so two runs of the same workload produce the same signature multiset
/// even though raw task ids differ.
#[derive(Debug, Clone, Default)]
pub struct DagSignature {
    /// Tasks in the DAG.
    pub tasks: u64,
    /// Order-independent fold (xor) of all task signatures.
    pub digest: u64,
    /// Sorted per-task signatures. Empty when the profile was re-loaded
    /// from compact JSON (only the digest survives serialization).
    pub sigs: Vec<u64>,
}

/// A compact, diffable profile of one run.
#[derive(Debug, Clone, Default)]
pub struct DiffInput {
    /// Run label (bench name or trace file stem).
    pub label: String,
    /// First-to-last event timestamp.
    pub wall_ns: u64,
    /// Events analyzed.
    pub events: u64,
    /// Events lost to ring wraparound.
    pub dropped: u64,
    /// Message delivers with no matching send.
    pub orphan_delivers: u64,
    /// Critical-path wall time (0 when no complete task).
    pub path_total_ns: u64,
    /// Path time per segment kind, indexed like [`PATH_KINDS`].
    pub path_kind_ns: [u64; 6],
    /// Path time per rank (distributed traces).
    pub per_rank_path_ns: Vec<(usize, u64)>,
    /// Rank holding the most path time.
    pub straggler_rank: Option<usize>,
    /// Per-`module:op` aggregates.
    pub modules: BTreeMap<String, ModuleStat>,
    /// Per-worker busy aggregates, sorted by `(rank, label)`.
    pub workers: Vec<WorkerStat>,
    /// Spawn→begin queue latency distribution.
    pub queue: HistogramSnapshot,
    /// Task-DAG structural signature.
    pub dag: DagSignature,
}

/// True when this profile came from a lossy trace: the critical path and
/// DAG alignment below it are PARTIAL.
impl DiffInput {
    /// Whether the underlying trace was lossy.
    pub fn partial(&self) -> bool {
        self.dropped > 0 || self.orphan_delivers > 0
    }
}

struct TaskRec {
    parent: u64,
    spawn_ts: u64,
    begin_ts: u64,
    track: usize,
}

/// FNV-1a fold step, the signature hash.
fn fnv(h: u64, v: u64) -> u64 {
    let mut h = h;
    for i in 0..8 {
        h ^= (v >> (i * 8)) & 0xff;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn dag_signatures(tasks: &BTreeMap<u64, TaskRec>) -> Vec<u64> {
    // Children sorted by spawn time: the ordinal is the structural
    // position, stable across runs of a deterministic workload.
    let mut children: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
    let mut roots: Vec<(u64, u64)> = Vec::new();
    for (&id, rec) in tasks {
        let key = rec.spawn_ts.max(rec.begin_ts);
        if rec.parent != 0 && tasks.contains_key(&rec.parent) {
            children.entry(rec.parent).or_default().push((key, id));
        } else {
            roots.push((key, id));
        }
    }
    roots.sort_unstable();
    for list in children.values_mut() {
        list.sort_unstable();
    }
    const SEED: u64 = 0xcbf2_9ce4_8422_2325;
    let mut sigs: BTreeMap<u64, u64> = BTreeMap::new();
    // Worklist from the roots down; parent signatures are always resolved
    // before children because the spawn tree is acyclic (cycle-garbled
    // tasks simply never get a signature and fall out of the multiset).
    let mut work: Vec<u64> = Vec::with_capacity(tasks.len());
    for (ordinal, &(_, id)) in roots.iter().enumerate() {
        sigs.insert(id, fnv(SEED, ordinal as u64));
        work.push(id);
    }
    while let Some(id) = work.pop() {
        let parent_sig = sigs[&id];
        if let Some(kids) = children.get(&id) {
            for (ordinal, &(_, kid)) in kids.iter().enumerate() {
                if let std::collections::btree_map::Entry::Vacant(slot) = sigs.entry(kid) {
                    slot.insert(fnv(parent_sig, ordinal as u64));
                    work.push(kid);
                }
            }
        }
    }
    let mut out: Vec<u64> = sigs.into_values().collect();
    out.sort_unstable();
    out
}

fn hist_record(h: &mut HistogramSnapshot, v: u64) {
    h.buckets[bucket_index(v)] += 1;
    h.count += 1;
    h.sum += v;
    h.max = h.max.max(v);
}

impl DiffInput {
    /// Extracts a diffable profile from drained trace data.
    pub fn from_trace(label: &str, data: &TraceData) -> DiffInput {
        let analysis = ProfileAnalysis::build(data);
        let mut out = DiffInput {
            label: label.to_string(),
            wall_ns: analysis.wall_ns,
            events: analysis.events,
            dropped: analysis.dropped,
            orphan_delivers: analysis.orphan_delivers,
            ..DiffInput::default()
        };

        // Pass 1: task lifecycles (for signatures + queue latency) and
        // per-track *labeled* top-level module intervals (the analysis
        // keeps them unlabeled; attribution needs the names).
        let mut tasks: BTreeMap<u64, TaskRec> = BTreeMap::new();
        let mut labeled: Vec<Vec<(u64, u64, String)>> = vec![Vec::new(); data.tracks.len()];
        let mut track_rank: Vec<Option<usize>> = Vec::with_capacity(data.tracks.len());
        for (ti, track) in data.tracks.iter().enumerate() {
            track_rank.push(track.rank);
            let mut module_stack: Vec<(String, u64)> = Vec::new();
            for e in &track.events {
                match e.kind {
                    EventKind::TaskSpawn => {
                        let rec = tasks.entry(e.a).or_insert(TaskRec {
                            parent: 0,
                            spawn_ts: 0,
                            begin_ts: 0,
                            track: usize::MAX,
                        });
                        rec.parent = e.b;
                        rec.spawn_ts = e.ts_ns;
                    }
                    EventKind::TaskBegin => {
                        let rec = tasks.entry(e.a).or_insert(TaskRec {
                            parent: 0,
                            spawn_ts: 0,
                            begin_ts: 0,
                            track: usize::MAX,
                        });
                        rec.begin_ts = e.ts_ns;
                        rec.track = ti;
                        if rec.spawn_ts != 0 {
                            hist_record(&mut out.queue, e.ts_ns.saturating_sub(rec.spawn_ts));
                        }
                    }
                    EventKind::ModuleEnter => {
                        let module = resolve(e.a);
                        let op = resolve(e.b);
                        let key = if op.is_empty() {
                            module.to_string()
                        } else {
                            format!("{}:{}", module, op)
                        };
                        module_stack.push((key, e.ts_ns));
                    }
                    EventKind::ModuleExit => {
                        if let Some((key, begin)) = module_stack.pop() {
                            let dur = e.ts_ns.saturating_sub(begin);
                            let stat = out.modules.entry(key.clone()).or_default();
                            stat.calls += 1;
                            stat.total_ns += dur;
                            if module_stack.is_empty() {
                                labeled[ti].push((begin, e.ts_ns, key));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        // Workers: top-level busy spans per track, keyed (rank, label).
        let mut workers: BTreeMap<(i64, String), WorkerStat> = BTreeMap::new();
        for (ti, track) in data.tracks.iter().enumerate() {
            let mut task_stack: Vec<u64> = Vec::new();
            let mut busy = 0u64;
            let mut begun = 0u64;
            for e in &track.events {
                match e.kind {
                    EventKind::TaskBegin => {
                        begun += 1;
                        task_stack.push(e.ts_ns);
                    }
                    EventKind::TaskEnd => {
                        if let Some(begin) = task_stack.pop() {
                            if task_stack.is_empty() {
                                busy += e.ts_ns.saturating_sub(begin);
                            }
                        }
                    }
                    _ => {}
                }
            }
            if begun == 0 && busy == 0 {
                continue;
            }
            let rank_key = track.rank.map_or(-1, |r| r as i64);
            let w = workers
                .entry((rank_key, track.label.clone()))
                .or_insert_with(|| WorkerStat {
                    rank: track_rank[ti],
                    label: track.label.clone(),
                    tasks: 0,
                    busy_ns: 0,
                });
            w.tasks += begun;
            w.busy_ns += busy;
        }
        out.workers = workers.into_values().collect();

        // Critical path: kind totals plus labeled on-path module overlap.
        // Module-split slices tile the path (analysis invariant), so
        // overlapping *every* compute/module path slice against the owner
        // track's labeled top-level intervals recovers exactly the path's
        // module time, now with names attached.
        if let Some(cp) = &analysis.critical_path {
            out.path_total_ns = cp.total_ns;
            out.per_rank_path_ns = cp.per_rank_ns.clone();
            out.straggler_rank = cp.straggler_rank;
            for seg in &cp.segments {
                out.path_kind_ns[kind_index(seg.kind)] += seg.dur_ns;
                if !matches!(seg.kind, SegmentKind::Compute | SegmentKind::Module) {
                    continue;
                }
                let Some(rec) = tasks.get(&seg.task) else {
                    continue;
                };
                let Some(intervals) = labeled.get(rec.track) else {
                    continue;
                };
                let (s, e) = (seg.start_ns, seg.start_ns + seg.dur_ns);
                for (is, ie, key) in intervals {
                    let ov = (*ie).min(e).saturating_sub((*is).max(s));
                    if ov == 0 {
                        continue;
                    }
                    let stat = out.modules.entry(key.clone()).or_default();
                    stat.path_ns += ov;
                    if seg.task != 0 && stat.path_task == 0 {
                        stat.path_task = seg.task;
                        stat.path_rank = seg.rank;
                    }
                }
            }
        }

        // DAG signature.
        let sigs = dag_signatures(&tasks);
        out.dag = DagSignature {
            tasks: sigs.len() as u64,
            digest: sigs.iter().fold(0u64, |acc, &s| acc ^ s),
            sigs,
        };
        out
    }

    /// Refines the profile with a machine-readable metrics snapshot (a
    /// per-run *delta*, see [`hiper_metrics::MetricsSnapshot::delta_since`]):
    /// the runtime's queue-latency histogram replaces the trace-derived one
    /// when present, since metrics see every task while rings can wrap.
    pub fn apply_metrics(&mut self, snap: &MetricsSnapshot) {
        if let Some(h) = snap.merged_histogram(QUEUE_LATENCY_METRIC) {
            if h.count > 0 {
                self.queue = h;
            }
        }
    }

    /// Serializes the profile to JSON (the `*.profile.json` the perf gate
    /// stores next to its baseline). Per-task signatures do not survive —
    /// only the order-independent digest — keeping the file a few KB.
    pub fn to_json(&self) -> String {
        let mut doc = BTreeMap::new();
        doc.insert("hiper_profile".to_string(), Json::from("v1"));
        doc.insert("label".to_string(), Json::from(self.label.as_str()));
        let n = |v: u64| Json::Number(v as f64);
        doc.insert("wall_ns".to_string(), n(self.wall_ns));
        doc.insert("events".to_string(), n(self.events));
        doc.insert("dropped".to_string(), n(self.dropped));
        doc.insert("orphan_delivers".to_string(), n(self.orphan_delivers));
        doc.insert("path_total_ns".to_string(), n(self.path_total_ns));
        let mut kinds = BTreeMap::new();
        for (i, &k) in PATH_KINDS.iter().enumerate() {
            kinds.insert(k.name().to_string(), n(self.path_kind_ns[i]));
        }
        doc.insert("path_kind_ns".to_string(), Json::Object(kinds));
        doc.insert(
            "per_rank_path_ns".to_string(),
            Json::Array(
                self.per_rank_path_ns
                    .iter()
                    .map(|&(r, ns)| Json::Array(vec![n(r as u64), n(ns)]))
                    .collect(),
            ),
        );
        if let Some(r) = self.straggler_rank {
            doc.insert("straggler_rank".to_string(), n(r as u64));
        }
        let mut modules = BTreeMap::new();
        for (name, m) in &self.modules {
            let mut obj = BTreeMap::new();
            obj.insert("calls".to_string(), n(m.calls));
            obj.insert("total_ns".to_string(), n(m.total_ns));
            obj.insert("path_ns".to_string(), n(m.path_ns));
            obj.insert("path_task".to_string(), n(m.path_task));
            if let Some(r) = m.path_rank {
                obj.insert("path_rank".to_string(), n(r as u64));
            }
            modules.insert(name.clone(), Json::Object(obj));
        }
        doc.insert("modules".to_string(), Json::Object(modules));
        doc.insert(
            "workers".to_string(),
            Json::Array(
                self.workers
                    .iter()
                    .map(|w| {
                        let mut obj = BTreeMap::new();
                        if let Some(r) = w.rank {
                            obj.insert("rank".to_string(), n(r as u64));
                        }
                        obj.insert("label".to_string(), Json::from(w.label.as_str()));
                        obj.insert("tasks".to_string(), n(w.tasks));
                        obj.insert("busy_ns".to_string(), n(w.busy_ns));
                        Json::Object(obj)
                    })
                    .collect(),
            ),
        );
        let mut queue = BTreeMap::new();
        queue.insert("count".to_string(), n(self.queue.count));
        queue.insert("sum".to_string(), n(self.queue.sum));
        queue.insert("max".to_string(), n(self.queue.max));
        queue.insert(
            "buckets".to_string(),
            Json::Array(
                self.queue
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| Json::Array(vec![n(i as u64), n(c)]))
                    .collect(),
            ),
        );
        doc.insert("queue_latency_ns".to_string(), Json::Object(queue));
        let mut dag = BTreeMap::new();
        dag.insert("tasks".to_string(), n(self.dag.tasks));
        // The digest uses all 64 bits; hex text keeps it exact through the
        // f64-only JSON number type.
        dag.insert(
            "digest".to_string(),
            Json::from(format!("{:016x}", self.dag.digest)),
        );
        doc.insert("dag".to_string(), Json::Object(dag));
        let mut out = Json::Object(doc).pretty();
        out.push('\n');
        out
    }

    /// Parses a profile written by [`DiffInput::to_json`].
    pub fn parse_json(text: &str) -> Result<DiffInput, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        if doc.get("hiper_profile").and_then(Json::as_str).is_none() {
            return Err("not a hiper profile (missing hiper_profile marker)".into());
        }
        let num = |j: &Json, k: &str| j.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let mut out = DiffInput {
            label: doc
                .get("label")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            wall_ns: num(&doc, "wall_ns"),
            events: num(&doc, "events"),
            dropped: num(&doc, "dropped"),
            orphan_delivers: num(&doc, "orphan_delivers"),
            path_total_ns: num(&doc, "path_total_ns"),
            straggler_rank: doc
                .get("straggler_rank")
                .and_then(Json::as_f64)
                .map(|r| r as usize),
            ..DiffInput::default()
        };
        if let Some(kinds) = doc.get("path_kind_ns").and_then(Json::as_object) {
            for (i, &k) in PATH_KINDS.iter().enumerate() {
                out.path_kind_ns[i] =
                    kinds.get(k.name()).and_then(Json::as_f64).unwrap_or(0.0) as u64;
            }
        }
        for pair in doc
            .get("per_rank_path_ns")
            .and_then(Json::as_array)
            .unwrap_or(&[])
        {
            let pair = pair.as_array().unwrap_or(&[]);
            if let (Some(r), Some(ns)) = (
                pair.first().and_then(Json::as_f64),
                pair.get(1).and_then(Json::as_f64),
            ) {
                out.per_rank_path_ns.push((r as usize, ns as u64));
            }
        }
        if let Some(modules) = doc.get("modules").and_then(Json::as_object) {
            for (name, m) in modules {
                out.modules.insert(
                    name.clone(),
                    ModuleStat {
                        calls: num(m, "calls"),
                        total_ns: num(m, "total_ns"),
                        path_ns: num(m, "path_ns"),
                        path_task: num(m, "path_task"),
                        path_rank: m
                            .get("path_rank")
                            .and_then(Json::as_f64)
                            .map(|r| r as usize),
                    },
                );
            }
        }
        for w in doc.get("workers").and_then(Json::as_array).unwrap_or(&[]) {
            out.workers.push(WorkerStat {
                rank: w.get("rank").and_then(Json::as_f64).map(|r| r as usize),
                label: w
                    .get("label")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                tasks: num(w, "tasks"),
                busy_ns: num(w, "busy_ns"),
            });
        }
        if let Some(q) = doc.get("queue_latency_ns") {
            out.queue.count = num(q, "count");
            out.queue.sum = num(q, "sum");
            out.queue.max = num(q, "max");
            for pair in q.get("buckets").and_then(Json::as_array).unwrap_or(&[]) {
                let pair = pair.as_array().unwrap_or(&[]);
                let i = pair.first().and_then(Json::as_f64).unwrap_or(0.0) as usize;
                let c = pair.get(1).and_then(Json::as_f64).unwrap_or(0.0) as u64;
                if i < out.queue.buckets.len() {
                    out.queue.buckets[i] = c;
                }
            }
        }
        if let Some(dag) = doc.get("dag") {
            out.dag.tasks = num(dag, "tasks");
            out.dag.digest = dag
                .get("digest")
                .and_then(Json::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .unwrap_or(0);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// The diff
// ---------------------------------------------------------------------

/// How well the two task DAGs align.
#[derive(Debug, Clone, Default)]
pub struct Alignment {
    /// Tasks in the baseline DAG.
    pub base_tasks: u64,
    /// Tasks in the candidate DAG.
    pub cand_tasks: u64,
    /// Structural signatures present in both multisets (0 when either
    /// side carries only a digest).
    pub matched: u64,
    /// Matched fraction of the larger DAG; with digest-only profiles this
    /// is 1.0 on digest+count equality, else 0.0.
    pub fraction: f64,
    /// Digests (and task counts) are identical.
    pub exact: bool,
}

fn align(base: &DagSignature, cand: &DagSignature) -> Alignment {
    let mut out = Alignment {
        base_tasks: base.tasks,
        cand_tasks: cand.tasks,
        exact: base.digest == cand.digest && base.tasks == cand.tasks,
        ..Alignment::default()
    };
    let denom = base.tasks.max(cand.tasks);
    if !base.sigs.is_empty() && !cand.sigs.is_empty() {
        // Both sorted: multiset intersection in one pass.
        let (mut i, mut j, mut matched) = (0usize, 0usize, 0u64);
        while i < base.sigs.len() && j < cand.sigs.len() {
            match base.sigs[i].cmp(&cand.sigs[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    matched += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        out.matched = matched;
        out.fraction = if denom == 0 {
            1.0
        } else {
            matched as f64 / denom as f64
        };
    } else {
        out.fraction = if out.exact { 1.0 } else { 0.0 };
        out.matched = if out.exact { base.tasks } else { 0 };
    }
    out
}

/// One segment kind's before/after on the critical path.
#[derive(Debug, Clone)]
pub struct KindDelta {
    /// Segment kind label.
    pub name: &'static str,
    /// Baseline path ns.
    pub base_ns: u64,
    /// Candidate path ns.
    pub cand_ns: u64,
    /// Candidate minus baseline; positive = slower.
    pub delta_ns: i64,
}

/// One module's before/after.
#[derive(Debug, Clone)]
pub struct ModuleShift {
    /// `module` or `module:op`.
    pub name: String,
    /// Baseline aggregates (default when the module is new).
    pub base: ModuleStat,
    /// Candidate aggregates (default when the module vanished).
    pub cand: ModuleStat,
    /// Whole-trace span-time delta (candidate minus baseline).
    pub delta_total_ns: i64,
    /// On-critical-path overlap delta.
    pub delta_path_ns: i64,
    /// Share of baseline wall time.
    pub base_share: f64,
    /// Share of candidate wall time.
    pub cand_share: f64,
}

/// One worker's utilization before/after.
#[derive(Debug, Clone)]
pub struct WorkerShift {
    /// Simulated rank.
    pub rank: Option<usize>,
    /// Thread label.
    pub label: String,
    /// Baseline busy ns.
    pub base_busy_ns: u64,
    /// Candidate busy ns.
    pub cand_busy_ns: u64,
    /// Busy delta (candidate minus baseline).
    pub delta_ns: i64,
    /// Baseline busy / baseline wall.
    pub base_util: f64,
    /// Candidate busy / candidate wall.
    pub cand_util: f64,
}

/// Spawn→begin latency distribution shift.
#[derive(Debug, Clone, Default)]
pub struct QueueShift {
    /// Baseline distribution.
    pub base: HistogramSnapshot,
    /// Candidate distribution.
    pub cand: HistogramSnapshot,
    /// p50 shift in ns (candidate minus baseline).
    pub d_p50: i64,
    /// p90 shift in ns.
    pub d_p90: i64,
    /// p99 shift in ns.
    pub d_p99: i64,
    /// Mean shift in ns.
    pub d_mean: f64,
}

/// One ranked contributor to the wall-clock delta.
#[derive(Debug, Clone)]
pub struct Contributor {
    /// `critical-path`, `module`, or `queue`.
    pub category: &'static str,
    /// What moved (segment kind, `module:op`, or quantile).
    pub name: String,
    /// Baseline ns.
    pub base_ns: u64,
    /// Candidate ns.
    pub cand_ns: u64,
    /// Candidate minus baseline; positive = the candidate is slower here.
    pub delta_ns: i64,
    /// |delta| over |the run-level delta being attributed|.
    pub share: f64,
    /// Where on the timeline the shift sits.
    pub location: String,
}

/// Knobs for [`TraceDiff::build`].
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Ranked contributors to keep.
    pub top: usize,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions { top: 10 }
    }
}

/// The full differential profile of candidate vs baseline.
#[derive(Debug, Clone, Default)]
pub struct TraceDiff {
    /// Baseline run label.
    pub base_label: String,
    /// Candidate run label.
    pub cand_label: String,
    /// Wall-clock delta (candidate minus baseline).
    pub wall_delta_ns: i64,
    /// Critical-path total delta.
    pub path_delta_ns: i64,
    /// Either side's trace was lossy — treat the attribution as PARTIAL.
    pub partial: bool,
    /// Task-DAG alignment quality.
    pub alignment: Alignment,
    /// Per-kind critical-path deltas, in [`PATH_KINDS`] order.
    pub path_kinds: Vec<KindDelta>,
    /// Per-module shifts, sorted by |total delta| descending.
    pub modules: Vec<ModuleShift>,
    /// Per-worker utilization shifts, sorted by |busy delta| descending.
    pub workers: Vec<WorkerShift>,
    /// Queue-latency distribution shift.
    pub queue: QueueShift,
    /// Straggler rank before/after.
    pub straggler: (Option<usize>, Option<usize>),
    /// Top contributors to the wall-clock delta, |delta| descending.
    pub ranked: Vec<Contributor>,
}

fn d(cand: u64, base: u64) -> i64 {
    cand as i64 - base as i64
}

impl TraceDiff {
    /// Diffs two profiles of the same workload.
    pub fn build(base: &DiffInput, cand: &DiffInput, opts: DiffOptions) -> TraceDiff {
        let mut out = TraceDiff {
            base_label: base.label.clone(),
            cand_label: cand.label.clone(),
            wall_delta_ns: d(cand.wall_ns, base.wall_ns),
            path_delta_ns: d(cand.path_total_ns, base.path_total_ns),
            partial: base.partial() || cand.partial(),
            alignment: align(&base.dag, &cand.dag),
            straggler: (base.straggler_rank, cand.straggler_rank),
            ..TraceDiff::default()
        };

        for (i, &k) in PATH_KINDS.iter().enumerate() {
            out.path_kinds.push(KindDelta {
                name: k.name(),
                base_ns: base.path_kind_ns[i],
                cand_ns: cand.path_kind_ns[i],
                delta_ns: d(cand.path_kind_ns[i], base.path_kind_ns[i]),
            });
        }

        let share_of = |ns: u64, wall: u64| {
            if wall == 0 {
                0.0
            } else {
                ns as f64 / wall as f64
            }
        };
        let names: std::collections::BTreeSet<&String> =
            base.modules.keys().chain(cand.modules.keys()).collect();
        for name in names {
            let b = base.modules.get(name).cloned().unwrap_or_default();
            let c = cand.modules.get(name).cloned().unwrap_or_default();
            out.modules.push(ModuleShift {
                name: name.clone(),
                delta_total_ns: d(c.total_ns, b.total_ns),
                delta_path_ns: d(c.path_ns, b.path_ns),
                base_share: share_of(b.total_ns, base.wall_ns),
                cand_share: share_of(c.total_ns, cand.wall_ns),
                base: b,
                cand: c,
            });
        }
        out.modules
            .sort_by_key(|m| std::cmp::Reverse(m.delta_total_ns.unsigned_abs()));

        let mut worker_keys: std::collections::BTreeSet<(i64, &String)> =
            std::collections::BTreeSet::new();
        for w in base.workers.iter().chain(cand.workers.iter()) {
            worker_keys.insert((w.rank.map_or(-1, |r| r as i64), &w.label));
        }
        let find = |list: &[WorkerStat], rank: i64, label: &str| {
            list.iter()
                .find(|w| w.rank.map_or(-1, |r| r as i64) == rank && w.label == label)
                .cloned()
                .unwrap_or_default()
        };
        for (rank_key, label) in worker_keys {
            let b = find(&base.workers, rank_key, label);
            let c = find(&cand.workers, rank_key, label);
            out.workers.push(WorkerShift {
                rank: if rank_key < 0 {
                    None
                } else {
                    Some(rank_key as usize)
                },
                label: label.clone(),
                base_busy_ns: b.busy_ns,
                cand_busy_ns: c.busy_ns,
                delta_ns: d(c.busy_ns, b.busy_ns),
                base_util: share_of(b.busy_ns, base.wall_ns),
                cand_util: share_of(c.busy_ns, cand.wall_ns),
            });
        }
        out.workers
            .sort_by_key(|w| std::cmp::Reverse(w.delta_ns.unsigned_abs()));

        out.queue = QueueShift {
            d_p50: d(cand.queue.quantile(0.50), base.queue.quantile(0.50)),
            d_p90: d(cand.queue.quantile(0.90), base.queue.quantile(0.90)),
            d_p99: d(cand.queue.quantile(0.99), base.queue.quantile(0.99)),
            d_mean: cand.queue.mean() - base.queue.mean(),
            base: base.queue.clone(),
            cand: cand.queue.clone(),
        };

        // Ranked attribution. The denominator is the critical-path delta
        // when both runs have one (that is the number a regression moves),
        // else the raw wall delta. Module entries use whole-trace span
        // time — a slowed op shows up there even when the path walk
        // charges the stall to wire/blocked segments — and carry their
        // path location. The aggregate `module` path kind is left out of
        // the ranking (per-module entries subsume it); worker busy deltas
        // stay in their own table since they sum concurrent work and
        // would double-count against path segments.
        let denom = if base.path_total_ns > 0 && cand.path_total_ns > 0 {
            out.path_delta_ns.unsigned_abs()
        } else {
            out.wall_delta_ns.unsigned_abs()
        };
        let share = |delta: i64| {
            if denom == 0 {
                0.0
            } else {
                delta.unsigned_abs() as f64 / denom as f64
            }
        };
        let mut ranked: Vec<Contributor> = Vec::new();
        for kd in &out.path_kinds {
            if kd.delta_ns == 0 || kd.name == SegmentKind::Module.name() {
                continue;
            }
            ranked.push(Contributor {
                category: "critical-path",
                name: kd.name.to_string(),
                base_ns: kd.base_ns,
                cand_ns: kd.cand_ns,
                delta_ns: kd.delta_ns,
                share: share(kd.delta_ns),
                location: "critical path".to_string(),
            });
        }
        for m in &out.modules {
            if m.delta_total_ns == 0 {
                continue;
            }
            let location = if m.base.path_ns > 0 || m.cand.path_ns > 0 {
                let stat = if m.cand.path_ns > 0 { &m.cand } else { &m.base };
                match stat.path_rank {
                    Some(r) => format!("critical path (task {}, rank {})", stat.path_task, r),
                    None => format!("critical path (task {})", stat.path_task),
                }
            } else {
                "off-path".to_string()
            };
            ranked.push(Contributor {
                category: "module",
                name: m.name.clone(),
                base_ns: m.base.total_ns,
                cand_ns: m.cand.total_ns,
                delta_ns: m.delta_total_ns,
                share: share(m.delta_total_ns),
                location,
            });
        }
        if out.queue.base.count > 0 && out.queue.cand.count > 0 && out.queue.d_p90 != 0 {
            ranked.push(Contributor {
                category: "queue",
                name: "spawn->begin p90".to_string(),
                base_ns: out.queue.base.quantile(0.90),
                cand_ns: out.queue.cand.quantile(0.90),
                delta_ns: out.queue.d_p90,
                share: share(out.queue.d_p90),
                location: "scheduler queues".to_string(),
            });
        }
        ranked.sort_by(|a, b| {
            b.delta_ns
                .unsigned_abs()
                .cmp(&a.delta_ns.unsigned_abs())
                .then_with(|| a.name.cmp(&b.name))
        });
        ranked.truncate(opts.top);
        out.ranked = ranked;
        out
    }

    /// Renders the attribution report as markdown (`ATTRIBUTION_*.md`).
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let pm = fmt_delta;
        s.push_str(&format!(
            "# Differential profile: `{}` -> `{}`\n\n",
            self.base_label, self.cand_label
        ));
        if self.partial {
            s.push_str(
                "> **PARTIAL**: at least one trace lost events (ring wraparound or \
                 orphan message delivers); attributions below are a lower bound.\n\n",
            );
        }
        s.push_str(&format!(
            "- wall-clock delta: {} | critical-path delta: {}\n",
            pm(self.wall_delta_ns),
            pm(self.path_delta_ns)
        ));
        s.push_str(&format!(
            "- DAG alignment: {}/{} vs {} tasks matched ({:.1}%{})\n",
            self.alignment.matched,
            self.alignment.base_tasks,
            self.alignment.cand_tasks,
            100.0 * self.alignment.fraction,
            if self.alignment.exact { ", exact" } else { "" }
        ));
        if self.straggler.0 != self.straggler.1 {
            s.push_str(&format!(
                "- straggler rank moved: {:?} -> {:?}\n",
                self.straggler.0, self.straggler.1
            ));
        }
        s.push('\n');

        s.push_str("## Top contributors\n\n");
        if self.ranked.is_empty() {
            s.push_str("No nonzero contributors — the runs are identical at this resolution.\n\n");
        } else {
            s.push_str(
                "| # | category | what | baseline | candidate | delta | share | location |\n",
            );
            s.push_str(
                "|---|----------|------|----------|-----------|-------|-------|----------|\n",
            );
            for (i, c) in self.ranked.iter().enumerate() {
                s.push_str(&format!(
                    "| {} | {} | `{}` | {} | {} | {} | {:.1}% | {} |\n",
                    i + 1,
                    c.category,
                    c.name,
                    fmt_ns(c.base_ns),
                    fmt_ns(c.cand_ns),
                    pm(c.delta_ns),
                    100.0 * c.share,
                    c.location
                ));
            }
            s.push('\n');
        }

        s.push_str("## Critical-path segments\n\n");
        s.push_str(
            "| kind | baseline | candidate | delta |\n|------|----------|-----------|-------|\n",
        );
        for k in &self.path_kinds {
            s.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                k.name,
                fmt_ns(k.base_ns),
                fmt_ns(k.cand_ns),
                pm(k.delta_ns)
            ));
        }
        s.push('\n');

        if !self.modules.is_empty() {
            s.push_str("## Module attribution (whole-trace span time, ranked)\n\n");
            s.push_str(
                "| module:op | calls | baseline | candidate | delta | on-path delta | share of wall |\n\
                 |-----------|-------|----------|-----------|-------|---------------|---------------|\n",
            );
            for m in &self.modules {
                s.push_str(&format!(
                    "| `{}` | {} -> {} | {} | {} | {} | {} | {:.1}% -> {:.1}% |\n",
                    m.name,
                    m.base.calls,
                    m.cand.calls,
                    fmt_ns(m.base.total_ns),
                    fmt_ns(m.cand.total_ns),
                    pm(m.delta_total_ns),
                    pm(m.delta_path_ns),
                    100.0 * m.base_share,
                    100.0 * m.cand_share
                ));
            }
            s.push('\n');
        }

        if !self.workers.is_empty() {
            s.push_str("## Worker utilization\n\n");
            s.push_str(
                "| rank | worker | baseline busy | candidate busy | delta | util |\n\
                 |------|--------|---------------|----------------|-------|------|\n",
            );
            for w in &self.workers {
                s.push_str(&format!(
                    "| {} | {} | {} | {} | {} | {:.1}% -> {:.1}% |\n",
                    w.rank.map_or("-".to_string(), |r| r.to_string()),
                    w.label,
                    fmt_ns(w.base_busy_ns),
                    fmt_ns(w.cand_busy_ns),
                    pm(w.delta_ns),
                    100.0 * w.base_util,
                    100.0 * w.cand_util
                ));
            }
            s.push('\n');
        }

        if self.queue.base.count > 0 || self.queue.cand.count > 0 {
            s.push_str("## Queue latency (spawn->begin)\n\n");
            s.push_str(
                "| | baseline | candidate | delta |\n|---|----------|-----------|-------|\n",
            );
            s.push_str(&format!(
                "| samples | {} | {} | {} |\n",
                self.queue.base.count,
                self.queue.cand.count,
                pm(d(self.queue.cand.count, self.queue.base.count))
            ));
            s.push_str(&format!(
                "| mean | {} | {} | {} |\n",
                fmt_ns(self.queue.base.mean() as u64),
                fmt_ns(self.queue.cand.mean() as u64),
                fmt_delta(self.queue.d_mean as i64)
            ));
            for (q, dq) in [
                (0.50, self.queue.d_p50),
                (0.90, self.queue.d_p90),
                (0.99, self.queue.d_p99),
            ] {
                s.push_str(&format!(
                    "| p{:.0} | {} | {} | {} |\n",
                    q * 100.0,
                    fmt_ns(self.queue.base.quantile(q)),
                    fmt_ns(self.queue.cand.quantile(q)),
                    pm(dq)
                ));
            }
            s.push('\n');
        }
        s
    }

    /// Renders the attribution as JSON (`ATTRIBUTION_*.json`).
    pub fn to_json(&self) -> String {
        let n = |v: u64| Json::Number(v as f64);
        let i = |v: i64| Json::Number(v as f64);
        let mut doc = BTreeMap::new();
        doc.insert("hiper_diff".to_string(), Json::from("v1"));
        doc.insert("base".to_string(), Json::from(self.base_label.as_str()));
        doc.insert(
            "candidate".to_string(),
            Json::from(self.cand_label.as_str()),
        );
        doc.insert("wall_delta_ns".to_string(), i(self.wall_delta_ns));
        doc.insert("path_delta_ns".to_string(), i(self.path_delta_ns));
        doc.insert("partial".to_string(), Json::Bool(self.partial));
        let mut alignment = BTreeMap::new();
        alignment.insert("base_tasks".to_string(), n(self.alignment.base_tasks));
        alignment.insert("cand_tasks".to_string(), n(self.alignment.cand_tasks));
        alignment.insert("matched".to_string(), n(self.alignment.matched));
        alignment.insert(
            "fraction".to_string(),
            Json::Number(self.alignment.fraction),
        );
        alignment.insert("exact".to_string(), Json::Bool(self.alignment.exact));
        doc.insert("alignment".to_string(), Json::Object(alignment));
        let mut kinds = BTreeMap::new();
        for k in &self.path_kinds {
            let mut obj = BTreeMap::new();
            obj.insert("base_ns".to_string(), n(k.base_ns));
            obj.insert("cand_ns".to_string(), n(k.cand_ns));
            obj.insert("delta_ns".to_string(), i(k.delta_ns));
            kinds.insert(k.name.to_string(), Json::Object(obj));
        }
        doc.insert("path_kinds".to_string(), Json::Object(kinds));
        doc.insert(
            "ranked".to_string(),
            Json::Array(
                self.ranked
                    .iter()
                    .map(|c| {
                        let mut obj = BTreeMap::new();
                        obj.insert("category".to_string(), Json::from(c.category));
                        obj.insert("name".to_string(), Json::from(c.name.as_str()));
                        obj.insert("base_ns".to_string(), n(c.base_ns));
                        obj.insert("cand_ns".to_string(), n(c.cand_ns));
                        obj.insert("delta_ns".to_string(), i(c.delta_ns));
                        obj.insert("share".to_string(), Json::Number(c.share));
                        obj.insert("location".to_string(), Json::from(c.location.as_str()));
                        Json::Object(obj)
                    })
                    .collect(),
            ),
        );
        doc.insert(
            "modules".to_string(),
            Json::Array(
                self.modules
                    .iter()
                    .map(|m| {
                        let mut obj = BTreeMap::new();
                        obj.insert("name".to_string(), Json::from(m.name.as_str()));
                        obj.insert("base_total_ns".to_string(), n(m.base.total_ns));
                        obj.insert("cand_total_ns".to_string(), n(m.cand.total_ns));
                        obj.insert("delta_total_ns".to_string(), i(m.delta_total_ns));
                        obj.insert("delta_path_ns".to_string(), i(m.delta_path_ns));
                        Json::Object(obj)
                    })
                    .collect(),
            ),
        );
        doc.insert(
            "workers".to_string(),
            Json::Array(
                self.workers
                    .iter()
                    .map(|w| {
                        let mut obj = BTreeMap::new();
                        if let Some(r) = w.rank {
                            obj.insert("rank".to_string(), n(r as u64));
                        }
                        obj.insert("label".to_string(), Json::from(w.label.as_str()));
                        obj.insert("base_busy_ns".to_string(), n(w.base_busy_ns));
                        obj.insert("cand_busy_ns".to_string(), n(w.cand_busy_ns));
                        obj.insert("delta_ns".to_string(), i(w.delta_ns));
                        Json::Object(obj)
                    })
                    .collect(),
            ),
        );
        let mut queue = BTreeMap::new();
        queue.insert("d_p50_ns".to_string(), i(self.queue.d_p50));
        queue.insert("d_p90_ns".to_string(), i(self.queue.d_p90));
        queue.insert("d_p99_ns".to_string(), i(self.queue.d_p99));
        queue.insert("d_mean_ns".to_string(), Json::Number(self.queue.d_mean));
        doc.insert("queue".to_string(), Json::Object(queue));
        let mut out = Json::Object(doc).pretty();
        out.push('\n');
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{} ns", ns)
    }
}

fn fmt_delta(ns: i64) -> String {
    if ns < 0 {
        format!("-{}", fmt_ns(ns.unsigned_abs()))
    } else {
        format!("+{}", fmt_ns(ns.unsigned_abs()))
    }
}

impl fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::TraceEvent;
    use crate::{TraceData, TrackData};

    fn e(ts: u64, kind: EventKind, a: u64, b: u64, c: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            kind,
            a,
            b,
            c,
        }
    }

    /// Two ranks ping-ponging with labeled module spans: rank 0's body
    /// task 1 spends [250, 950] in `mpi:recv`; rank 1's task 2 spends
    /// [420, 580] in `mpi:send`. Msg 10 flies 300->400, msg 11 600->700.
    /// `scale` stretches every module span's tail by that factor (the
    /// synthetic stand-in for a slowed module op).
    fn pingpong(scale: u64) -> TraceData {
        let m = crate::intern("mpi");
        let recv = crate::intern("recv");
        let send = crate::intern("send");
        let stretch = |base: u64, start: u64| start + (base - start) * scale;
        TraceData {
            tracks: vec![
                TrackData {
                    label: "hiper-worker-0".into(),
                    events: vec![
                        e(50, EventKind::TaskSpawn, 1, 0, 0),
                        e(100, EventKind::TaskBegin, 1, 0, 0),
                        e(250, EventKind::ModuleEnter, m, recv, 0),
                        e(stretch(950, 250), EventKind::ModuleExit, m, recv, 0),
                        e(stretch(1000, 250), EventKind::TaskEnd, 1, 0, 0),
                    ],
                    dropped: 0,
                    rank: Some(0),
                },
                TrackData {
                    label: "hiper-worker-0".into(),
                    events: vec![
                        e(120, EventKind::TaskSpawn, 2, 0, 0),
                        e(150, EventKind::TaskBegin, 2, 0, 0),
                        e(420, EventKind::ModuleEnter, m, send, 0),
                        e(580, EventKind::ModuleExit, m, send, 0),
                        e(820, EventKind::TaskEnd, 2, 0, 0),
                    ],
                    dropped: 0,
                    rank: Some(1),
                },
                TrackData {
                    label: "netsim-engine".into(),
                    events: vec![
                        e(300, EventKind::MsgSend, 1, 1, 10),
                        e(400, EventKind::MsgDeliver, 1, 1, 10),
                        e(600, EventKind::MsgSend, 2, 1 << 32, 11),
                        e(stretch(700, 600), EventKind::MsgDeliver, 2, 1 << 32, 11),
                    ],
                    dropped: 0,
                    rank: None,
                },
            ],
        }
    }

    #[test]
    fn self_diff_is_exactly_zero() {
        let input = DiffInput::from_trace("run", &pingpong(1));
        let diff = TraceDiff::build(&input, &input, DiffOptions::default());
        assert_eq!(diff.wall_delta_ns, 0);
        assert_eq!(diff.path_delta_ns, 0);
        assert!(
            diff.ranked.is_empty(),
            "no nonzero contributor: {:?}",
            diff.ranked
        );
        assert!(diff.path_kinds.iter().all(|k| k.delta_ns == 0));
        assert!(diff.modules.iter().all(|m| m.delta_total_ns == 0));
        assert!(diff.workers.iter().all(|w| w.delta_ns == 0));
        assert!(diff.alignment.exact);
        assert!((diff.alignment.fraction - 1.0).abs() < 1e-12);
        assert!(!diff.partial);
    }

    #[test]
    fn module_slowdown_is_attributed_to_the_module() {
        let base = DiffInput::from_trace("base", &pingpong(1));
        let cand = DiffInput::from_trace("cand", &pingpong(2));
        let diff = TraceDiff::build(&base, &cand, DiffOptions::default());
        assert!(diff.wall_delta_ns > 0, "stretched run is slower");
        let top_module = diff
            .ranked
            .iter()
            .find(|c| c.category == "module")
            .expect("module contributor present");
        assert_eq!(top_module.name, "mpi:recv", "ranked: {:?}", diff.ranked);
        assert!(top_module.delta_ns > 0);
        assert_eq!(diff.modules[0].name, "mpi:recv");
        assert!(
            top_module.location.contains("critical path"),
            "slowed module sits on the path: {}",
            top_module.location
        );
        // Alignment still matches: the DAG shape did not change.
        assert!(diff.alignment.exact);
    }

    #[test]
    fn on_path_module_time_matches_path_module_total() {
        let input = DiffInput::from_trace("run", &pingpong(1));
        let per_label: u64 = input.modules.values().map(|m| m.path_ns).sum();
        let kind_total = input.path_kind_ns[kind_index(SegmentKind::Module)];
        assert_eq!(
            per_label, kind_total,
            "labeled on-path module time tiles the path's module segments"
        );
        assert!(kind_total > 0, "the recv span sits on the path");
    }

    #[test]
    fn profile_json_roundtrip_diffs_to_zero() {
        let live = DiffInput::from_trace("run", &pingpong(1));
        let loaded = DiffInput::parse_json(&live.to_json()).expect("parse profile back");
        let diff = TraceDiff::build(&live, &loaded, DiffOptions::default());
        assert_eq!(diff.wall_delta_ns, 0);
        assert!(diff.ranked.is_empty(), "{:?}", diff.ranked);
        // The reloaded side carries only the digest; equality still holds.
        assert!(diff.alignment.exact);
        assert!((diff.alignment.fraction - 1.0).abs() < 1e-12);
        assert_eq!(loaded.dag.tasks, live.dag.tasks);
        assert_eq!(loaded.dag.digest, live.dag.digest);
        assert_eq!(loaded.queue.count, live.queue.count);
        assert_eq!(loaded.workers, live.workers);
    }

    #[test]
    fn metrics_snapshot_overrides_queue_histogram() {
        let mut input = DiffInput::from_trace("run", &pingpong(1));
        let trace_count = input.queue.count;
        assert!(trace_count > 0);
        let h = hiper_metrics::histogram("hiper_task_queue_latency_ns");
        h.record(1 << 14);
        h.record(1 << 14);
        h.record(1 << 14);
        let snap = hiper_metrics::snapshot();
        input.apply_metrics(&snap);
        assert!(
            input.queue.count >= 3,
            "metrics histogram replaced the trace-derived one"
        );
    }

    #[test]
    fn dag_signatures_ignore_task_ids() {
        // Same shape, shifted ids and timestamps: signatures must match.
        let shape = |id0: u64, t0: u64| {
            let mut tasks = BTreeMap::new();
            tasks.insert(
                id0,
                TaskRec {
                    parent: 0,
                    spawn_ts: t0,
                    begin_ts: t0 + 1,
                    track: 0,
                },
            );
            for k in 0..3u64 {
                tasks.insert(
                    id0 + 1 + k,
                    TaskRec {
                        parent: id0,
                        spawn_ts: t0 + 10 + k,
                        begin_ts: t0 + 20 + k,
                        track: 0,
                    },
                );
            }
            dag_signatures(&tasks)
        };
        assert_eq!(shape(1, 100), shape(501, 9_000));
        // A different shape (one child moved under another) diverges.
        let mut tasks = BTreeMap::new();
        tasks.insert(
            1,
            TaskRec {
                parent: 0,
                spawn_ts: 100,
                begin_ts: 101,
                track: 0,
            },
        );
        tasks.insert(
            2,
            TaskRec {
                parent: 1,
                spawn_ts: 110,
                begin_ts: 120,
                track: 0,
            },
        );
        tasks.insert(
            3,
            TaskRec {
                parent: 2,
                spawn_ts: 111,
                begin_ts: 121,
                track: 0,
            },
        );
        tasks.insert(
            4,
            TaskRec {
                parent: 1,
                spawn_ts: 112,
                begin_ts: 122,
                track: 0,
            },
        );
        assert_ne!(shape(1, 100), dag_signatures(&tasks));
    }

    #[test]
    fn partial_traces_are_flagged() {
        let mut data = pingpong(1);
        data.tracks[2].events.remove(2); // lose the send of msg 11
        data.tracks[2].dropped = 1;
        let base = DiffInput::from_trace("base", &pingpong(1));
        let cand = DiffInput::from_trace("cand", &data);
        assert!(cand.partial());
        let diff = TraceDiff::build(&base, &cand, DiffOptions::default());
        assert!(diff.partial);
        assert!(diff.to_markdown().contains("PARTIAL"));
    }

    #[test]
    fn markdown_and_json_render() {
        let base = DiffInput::from_trace("base", &pingpong(1));
        let cand = DiffInput::from_trace("cand", &pingpong(3));
        let diff = TraceDiff::build(&base, &cand, DiffOptions { top: 5 });
        let md = diff.to_markdown();
        assert!(md.contains("Top contributors"));
        assert!(md.contains("mpi:recv"));
        assert!(md.contains("Critical-path segments"));
        let json = diff.to_json();
        let doc = Json::parse(&json).expect("valid json");
        assert_eq!(doc.get("hiper_diff").and_then(Json::as_str), Some("v1"));
        assert!(doc
            .get("ranked")
            .and_then(Json::as_array)
            .is_some_and(|r| !r.is_empty()));
        assert!(diff.ranked.len() <= 5);
    }
}
