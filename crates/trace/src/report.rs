//! Compact aggregated report over a drained trace — the paper's Fig. 9-style
//! breakdown: where did the wall time go, per track and per module, plus a
//! queue-latency histogram for scheduler tuning.

use std::collections::BTreeMap;
use std::fmt;

use crate::ring::EventKind;
use crate::{resolve, TraceData};

/// Log2-bucketed histogram of nanosecond durations. Bucket `i` holds
/// samples in `[2^i, 2^(i+1))` ns; bucket 0 also holds sub-ns samples.
#[derive(Debug, Default, Clone)]
pub struct LatencyHistogram {
    /// Bucket counts; index = floor(log2(ns)).
    pub buckets: [u64; 32],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (ns), for the mean.
    pub total_ns: u64,
}

impl LatencyHistogram {
    /// Records one duration.
    pub fn record(&mut self, ns: u64) {
        let idx = (64 - ns.max(1).leading_zeros() as usize - 1).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_ns += ns;
    }

    /// Approximate quantile (upper bucket bound), e.g. `0.5` for the median.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        1u64 << self.buckets.len()
    }
}

/// Per-track execution summary.
#[derive(Debug, Clone)]
pub struct TrackSummary {
    /// Ring label (thread name).
    pub label: String,
    /// Events recorded on this track.
    pub events: u64,
    /// Events lost to wraparound.
    pub dropped: u64,
    /// Tasks that began executing here.
    pub tasks: u64,
    /// Time inside top-level task spans (ns). Nested (help-first) task time
    /// counts once, under the outermost span.
    pub busy_ns: u64,
    /// Time inside park spans (ns).
    pub parked_ns: u64,
}

/// The aggregated report.
#[derive(Debug, Default)]
pub struct TraceReport {
    /// First-to-last event timestamp across all tracks (ns).
    pub wall_ns: u64,
    /// Total events drained.
    pub events: u64,
    /// Total events dropped by ring wraparound.
    pub dropped: u64,
    /// Event counts by kind name.
    pub counts: BTreeMap<&'static str, u64>,
    /// Per-track summaries (tracks that recorded at least one event).
    pub tracks: Vec<TrackSummary>,
    /// Per-module span totals: name -> (calls, total ns). Keys are
    /// `module` or `module:op`.
    pub modules: BTreeMap<String, (u64, u64)>,
    /// Task queue latency (spawn -> begin) across all tracks.
    pub queue_latency: LatencyHistogram,
    /// Park span durations (how long workers slept).
    pub park_latency: LatencyHistogram,
}

impl TraceReport {
    /// Aggregates drained trace data.
    pub fn build(data: &TraceData) -> TraceReport {
        let mut rpt = TraceReport::default();
        let mut spawn_ts: BTreeMap<u64, u64> = BTreeMap::new();
        let mut min_ts = u64::MAX;
        let mut max_ts = 0u64;

        // Pass 1: spawn timestamps (spawn and begin usually happen on
        // different tracks).
        for track in &data.tracks {
            for e in &track.events {
                if e.kind == EventKind::TaskSpawn {
                    spawn_ts.insert(e.a, e.ts_ns);
                }
            }
        }

        for track in &data.tracks {
            let mut summary = TrackSummary {
                label: track.label.clone(),
                events: track.events.len() as u64,
                dropped: track.dropped,
                tasks: 0,
                busy_ns: 0,
                parked_ns: 0,
            };
            // Span stacks local to the track (single-writer rings keep
            // these well-nested).
            let mut task_stack: Vec<u64> = Vec::new();
            let mut park_start: Option<u64> = None;
            let mut module_stack: Vec<(String, u64)> = Vec::new();
            for e in &track.events {
                rpt.events += 1;
                *rpt.counts.entry(e.kind.name()).or_insert(0) += 1;
                min_ts = min_ts.min(e.ts_ns);
                max_ts = max_ts.max(e.ts_ns);
                match e.kind {
                    EventKind::TaskBegin => {
                        summary.tasks += 1;
                        if let Some(&spawn) = spawn_ts.get(&e.a) {
                            rpt.queue_latency.record(e.ts_ns.saturating_sub(spawn));
                        }
                        task_stack.push(e.ts_ns);
                    }
                    EventKind::TaskEnd => {
                        if let Some(begin) = task_stack.pop() {
                            if task_stack.is_empty() {
                                summary.busy_ns += e.ts_ns.saturating_sub(begin);
                            }
                        }
                    }
                    EventKind::Park => park_start = Some(e.ts_ns),
                    EventKind::Unpark => {
                        if let Some(begin) = park_start.take() {
                            let dur = e.ts_ns.saturating_sub(begin);
                            summary.parked_ns += dur;
                            rpt.park_latency.record(dur);
                        }
                    }
                    EventKind::ModuleEnter => {
                        let module = resolve(e.a);
                        let op = resolve(e.b);
                        let key = if op.is_empty() {
                            module.to_string()
                        } else {
                            format!("{}:{}", module, op)
                        };
                        module_stack.push((key, e.ts_ns));
                    }
                    EventKind::ModuleExit => {
                        if let Some((key, begin)) = module_stack.pop() {
                            let entry = rpt.modules.entry(key).or_insert((0, 0));
                            entry.0 += 1;
                            entry.1 += e.ts_ns.saturating_sub(begin);
                        }
                    }
                    _ => {}
                }
            }
            rpt.dropped += track.dropped;
            if summary.events > 0 {
                rpt.tracks.push(summary);
            }
        }
        if max_ts >= min_ts && min_ts != u64::MAX {
            rpt.wall_ns = max_ts - min_ts;
        }
        rpt
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{} ns", ns)
    }
}

impl fmt::Display for TraceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace report: {} events ({} dropped), wall {}",
            self.events,
            self.dropped,
            fmt_ns(self.wall_ns)
        )?;
        writeln!(f, "  events by kind:")?;
        for (kind, n) in &self.counts {
            writeln!(f, "    {:<16} {:>10}", kind, n)?;
        }
        if !self.tracks.is_empty() {
            writeln!(f, "  per-track (busy = top-level task spans):")?;
            for t in &self.tracks {
                let share = if self.wall_ns > 0 {
                    100.0 * t.busy_ns as f64 / self.wall_ns as f64
                } else {
                    0.0
                };
                writeln!(
                    f,
                    "    {:<24} tasks {:>7}  busy {:>10} ({:5.1}%)  parked {:>10}  dropped {}",
                    t.label,
                    t.tasks,
                    fmt_ns(t.busy_ns),
                    share,
                    fmt_ns(t.parked_ns),
                    t.dropped
                )?;
            }
        }
        if !self.modules.is_empty() {
            let total: u64 = self.modules.values().map(|(_, ns)| ns).sum();
            writeln!(f, "  per-module time:")?;
            for (name, (calls, ns)) in &self.modules {
                let share = if total > 0 {
                    100.0 * *ns as f64 / total as f64
                } else {
                    0.0
                };
                writeln!(
                    f,
                    "    {:<24} calls {:>7}  total {:>10} ({:5.1}% of module time)",
                    name,
                    calls,
                    fmt_ns(*ns),
                    share
                )?;
            }
        }
        if self.queue_latency.count > 0 {
            writeln!(
                f,
                "  task queue latency (spawn->begin): n={} mean {} p50 <{} p99 <{}",
                self.queue_latency.count,
                fmt_ns(self.queue_latency.total_ns / self.queue_latency.count),
                fmt_ns(self.queue_latency.quantile(0.5)),
                fmt_ns(self.queue_latency.quantile(0.99)),
            )?;
        }
        if self.park_latency.count > 0 {
            writeln!(
                f,
                "  park spans: n={} mean {} p50 <{}",
                self.park_latency.count,
                fmt_ns(self.park_latency.total_ns / self.park_latency.count),
                fmt_ns(self.park_latency.quantile(0.5)),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::TraceEvent;
    use crate::TrackData;

    fn e(ts: u64, kind: EventKind, a: u64, b: u64, c: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            kind,
            a,
            b,
            c,
        }
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(1_000); // bucket 9 (512..1024 contains? 1000 -> log2=9)
        }
        h.record(1 << 30);
        assert_eq!(h.count, 100);
        assert!(h.quantile(0.5) <= 2048);
        assert!(h.quantile(1.0) >= 1 << 30);
    }

    #[test]
    fn builds_breakdown() {
        let m = crate::intern("mpi");
        let op = crate::intern("send");
        let data = TraceData {
            tracks: vec![
                TrackData {
                    label: "w0".into(),
                    events: vec![
                        e(0, EventKind::TaskSpawn, 1, 0, 0),
                        e(100, EventKind::TaskBegin, 1, 0, 0),
                        e(200, EventKind::ModuleEnter, m, op, 64),
                        e(700, EventKind::ModuleExit, m, op, 0),
                        e(1_100, EventKind::TaskEnd, 1, 0, 0),
                        e(1_200, EventKind::Park, 0, 0, 0),
                        e(1_500, EventKind::Unpark, 1, 0, 0),
                    ],
                    dropped: 2,
                    rank: None,
                },
                TrackData {
                    label: "empty".into(),
                    events: vec![],
                    dropped: 0,
                    rank: None,
                },
            ],
        };
        let rpt = TraceReport::build(&data);
        assert_eq!(rpt.events, 7);
        assert_eq!(rpt.dropped, 2);
        assert_eq!(rpt.wall_ns, 1_500);
        assert_eq!(rpt.tracks.len(), 1, "empty tracks omitted");
        assert_eq!(rpt.tracks[0].busy_ns, 1_000);
        assert_eq!(rpt.tracks[0].parked_ns, 300);
        let (calls, ns) = rpt.modules.get("mpi:send").copied().unwrap();
        assert_eq!((calls, ns), (1, 500));
        assert_eq!(rpt.queue_latency.count, 1);
        assert_eq!(rpt.queue_latency.total_ns, 100);
        let shown = rpt.to_string();
        assert!(shown.contains("mpi:send"));
        assert!(shown.contains("per-track"));
    }

    #[test]
    fn nested_tasks_count_busy_once() {
        let data = TraceData {
            tracks: vec![TrackData {
                label: "w0".into(),
                events: vec![
                    e(0, EventKind::TaskBegin, 1, 0, 0),
                    e(100, EventKind::TaskBegin, 2, 0, 0),
                    e(400, EventKind::TaskEnd, 2, 0, 0),
                    e(1_000, EventKind::TaskEnd, 1, 0, 0),
                ],
                dropped: 0,
                rank: None,
            }],
        };
        let rpt = TraceReport::build(&data);
        assert_eq!(rpt.tracks[0].busy_ns, 1_000, "no double counting");
        assert_eq!(rpt.tracks[0].tasks, 2);
    }
}
