//! Stress tests for the lock-free event rings and the global enable flag.
//!
//! Tests in this binary share process-global tracing state (the enable
//! flag, the ring registry, the task-id allocator), so every test that
//! touches them serializes on [`lock`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use hiper_trace::{EventKind, EventRing, TraceEvent};

fn lock() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn ev(seq: u64) -> TraceEvent {
    TraceEvent {
        ts_ns: seq,
        kind: EventKind::Pop,
        a: seq,
        b: 0,
        c: 0,
    }
}

#[test]
fn wraparound_keeps_newest_and_counts_dropped() {
    let ring = EventRing::with_capacity("wrap", 16);
    let cap = ring.capacity() as u64;
    let total = 100u64;
    for i in 0..total {
        ring.emit(ev(i));
    }
    let (events, pos, dropped) = ring.drain_from(0);
    assert_eq!(pos, total);
    assert_eq!(dropped, total - cap, "everything overwritten is counted");
    assert_eq!(events.len() as u64, cap, "a full ring of newest events");
    let got: Vec<u64> = events.iter().map(|e| e.a).collect();
    let want: Vec<u64> = (total - cap..total).collect();
    assert_eq!(got, want, "survivors are exactly the newest, in order");

    // Incremental drain: nothing new since.
    let (more, pos2, dropped2) = ring.drain_from(pos);
    assert!(more.is_empty());
    assert_eq!(pos2, pos);
    assert_eq!(dropped2, 0);
}

#[test]
fn under_capacity_drain_is_lossless() {
    let ring = EventRing::with_capacity("lossless", 1024);
    for i in 0..1000 {
        ring.emit(ev(i));
    }
    let (events, _, dropped) = ring.drain_from(0);
    assert_eq!(dropped, 0);
    assert_eq!(events.len(), 1000);
    assert!(events.windows(2).all(|w| w[0].a + 1 == w[1].a));
}

#[test]
fn concurrent_emitters_lose_nothing_under_capacity() {
    let _gate = lock();
    hiper_trace::set_enabled(true);
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 4096; // well under the default 65536 ring cap
    const BASE: u64 = 0x5EED_0000_0000;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    hiper_trace::emit(EventKind::Steal, BASE + t * PER_THREAD + i, t, 0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    hiper_trace::set_enabled(false);
    let data = hiper_trace::drain();
    let mut seen: Vec<u64> = data
        .tracks
        .iter()
        .flat_map(|t| t.events.iter())
        .filter(|e| e.kind == EventKind::Steal && e.a >= BASE)
        .map(|e| e.a - BASE)
        .collect();
    seen.sort_unstable();
    assert_eq!(seen.len() as u64, THREADS * PER_THREAD, "no event lost");
    assert!(
        seen.windows(2).all(|w| w[0] + 1 == w[1]),
        "every payload exactly once"
    );
    // Per-thread rings: each thread's events are in emit order on its track.
    for track in &data.tracks {
        let mine: Vec<u64> = track
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Steal && e.a >= BASE)
            .map(|e| e.a)
            .collect();
        assert!(mine.windows(2).all(|w| w[0] < w[1]));
    }
}

#[test]
fn enable_disable_flips_race_free_under_emit_load() {
    let _gate = lock();
    let stop = Arc::new(AtomicBool::new(false));
    let flipper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut on = false;
            while !stop.load(Ordering::Relaxed) {
                on = !on;
                hiper_trace::set_enabled(on);
                std::thread::yield_now();
            }
            hiper_trace::set_enabled(false);
        })
    };
    const MARK: u64 = 0xF11B_0000_0000;
    let emitters: Vec<_> = (0..4u64)
        .map(|t| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut emitted = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Balanced span even if the flag flips mid-pair.
                    if hiper_trace::enabled() {
                        hiper_trace::emit_always(EventKind::Park, MARK + t, 0, 0);
                        hiper_trace::emit_always(EventKind::Unpark, MARK + t, 0, 0);
                        emitted += 1;
                    }
                    hiper_trace::emit(EventKind::Pop, MARK + t, emitted, 0);
                }
                emitted
            })
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(200));
    stop.store(true, Ordering::Relaxed);
    let counts: Vec<u64> = emitters.into_iter().map(|h| h.join().unwrap()).collect();
    flipper.join().unwrap();

    let data = hiper_trace::drain();
    for track in &data.tracks {
        let (mut parks, mut unparks) = (0u64, 0u64);
        for e in &track.events {
            // Every drained event is well-formed (kinds survive the u64
            // round-trip; no torn slots while writers are quiesced).
            assert!(EventKind::from_u64(e.kind as u64).is_some());
            if e.a & !0xFFFF_FFFF == MARK & !0xFFFF_FFFF {
                match e.kind {
                    EventKind::Park => parks += 1,
                    EventKind::Unpark => unparks += 1,
                    _ => {}
                }
            }
        }
        if track.dropped == 0 {
            assert_eq!(parks, unparks, "spans stay balanced per track");
        } else {
            // Drop-oldest trims a prefix; Park/Unpark pairs are emitted
            // back-to-back, so at most one pair is split by the cut.
            assert!(
                parks.abs_diff(unparks) <= 1,
                "lossy track out of balance: {} parks, {} unparks",
                parks,
                unparks
            );
        }
    }
    // Sanity: the stress actually exercised the enabled path.
    assert!(counts.iter().sum::<u64>() > 0, "flipper never enabled?");
}
