//! Property tests: arbitrary JSON values roundtrip through both serializers,
//! and arbitrary generated platform configs roundtrip through the JSON file
//! format.

use hiper_platform::json::Json;
use hiper_platform::{PathPolicy, PlaceId, PlaceKind, PlatformConfig};
use proptest::prelude::*;

fn json_strategy() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        // Finite numbers only; stick to a range that roundtrips through the
        // integer fast-path and the float path.
        (-1.0e12..1.0e12f64).prop_map(Json::Number),
        "[a-zA-Z0-9 _\\-\"\\\\\n\t]{0,20}".prop_map(Json::String),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..8).prop_map(Json::Array),
            proptest::collection::btree_map("[a-z]{1,8}", inner, 0..8).prop_map(Json::Object),
        ]
    })
}

/// f64 text formatting is lossless for round-trippable values, but compare
/// numbers with tolerance anyway to be robust to double formatting subtleties.
fn approx_eq(a: &Json, b: &Json) -> bool {
    match (a, b) {
        (Json::Number(x), Json::Number(y)) => {
            (x - y).abs() <= f64::EPSILON * x.abs().max(y.abs()).max(1.0)
        }
        (Json::Array(x), Json::Array(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(a, b)| approx_eq(a, b))
        }
        (Json::Object(x), Json::Object(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((ka, va), (kb, vb))| ka == kb && approx_eq(va, vb))
        }
        _ => a == b,
    }
}

proptest! {
    #[test]
    fn compact_roundtrip(v in json_strategy()) {
        let reparsed = Json::parse(&v.compact()).unwrap();
        prop_assert!(approx_eq(&reparsed, &v), "{:?} != {:?}", reparsed, v);
    }

    #[test]
    fn pretty_roundtrip(v in json_strategy()) {
        let reparsed = Json::parse(&v.pretty()).unwrap();
        prop_assert!(approx_eq(&reparsed, &v));
    }

    #[test]
    fn platform_config_roundtrip(
        workers in 1usize..16,
        gpus in 0usize..4,
        extra_edges in proptest::collection::vec((0u32..6, 0u32..6), 0..6),
    ) {
        let mut cfg = hiper_platform::autogen::smp_with_gpus(workers, gpus);
        let n = cfg.graph.len() as u32;
        for (a, b) in extra_edges {
            cfg.graph.add_edge(PlaceId(a % n), PlaceId(b % n));
        }
        let doc = cfg.to_json();
        let cfg2 = PlatformConfig::from_json(&doc).unwrap();
        prop_assert_eq!(cfg2.workers, cfg.workers);
        prop_assert_eq!(cfg2.graph.edges(), cfg.graph.edges());
        prop_assert_eq!(cfg2.worker_homes, cfg.worker_homes);
    }

    #[test]
    fn paths_cover_home_and_are_duplicate_free(
        workers in 1usize..8,
        gpus in 0usize..3,
        policy_idx in 0usize..4,
    ) {
        let cfg = hiper_platform::autogen::smp_with_gpus(workers, gpus);
        let policy = [
            PathPolicy::HomeOnly,
            PathPolicy::HomeFirst,
            PathPolicy::Hierarchical,
            PathPolicy::RandomizedHomeFirst,
        ][policy_idx];
        for (w, &home) in cfg.worker_homes.iter().enumerate() {
            let path = policy.generate(&cfg.graph, w, home);
            prop_assert_eq!(path[0], home);
            let mut sorted = path.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), path.len(), "path has duplicates");
            prop_assert!(path.iter().all(|p| p.index() < cfg.graph.len()));
        }
        // Interconnect must be reachable on full-coverage policies (MPI
        // module requirement).
        if policy != PathPolicy::HomeOnly {
            let net = cfg.graph.first_of_kind(&PlaceKind::Interconnect).unwrap();
            let path = policy.generate(&cfg.graph, 0, cfg.worker_homes[0]);
            prop_assert!(path.contains(&net));
        }
    }
}
