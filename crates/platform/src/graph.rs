//! The place graph: an undirected, unweighted graph of [`Place`]s.

use std::collections::VecDeque;

use crate::place::{Place, PlaceId, PlaceKind};

/// An undirected, unweighted graph of places (paper §II-A).
///
/// Nodes logically represent hardware components; an edge represents direct
/// accessibility between two components (e.g. system memory ↔ GPU device
/// memory means data is directly transferrable between them).
#[derive(Debug, Clone, Default)]
pub struct PlaceGraph {
    places: Vec<Place>,
    /// Adjacency lists, indexed by `PlaceId`.
    adjacency: Vec<Vec<PlaceId>>,
}

impl PlaceGraph {
    /// Creates an empty graph.
    pub fn new() -> PlaceGraph {
        PlaceGraph::default()
    }

    /// Adds a place of `kind` named `name`, returning its id.
    pub fn add_place(&mut self, kind: PlaceKind, name: impl Into<String>) -> PlaceId {
        let id = PlaceId(self.places.len() as u32);
        self.places.push(Place::new(id, kind, name));
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds a fully-constructed place (asserts the id is the next dense id).
    pub fn push_place(&mut self, place: Place) -> PlaceId {
        assert_eq!(
            place.id.index(),
            self.places.len(),
            "places must be added in dense id order"
        );
        let id = place.id;
        self.places.push(place);
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected edge. Duplicate edges are ignored.
    pub fn add_edge(&mut self, a: PlaceId, b: PlaceId) {
        assert!(a.index() < self.places.len() && b.index() < self.places.len());
        if a == b {
            return;
        }
        if !self.adjacency[a.index()].contains(&b) {
            self.adjacency[a.index()].push(b);
            self.adjacency[b.index()].push(a);
        }
    }

    /// Number of places.
    pub fn len(&self) -> usize {
        self.places.len()
    }

    /// True if the graph has no places.
    pub fn is_empty(&self) -> bool {
        self.places.is_empty()
    }

    /// The place with the given id.
    pub fn place(&self, id: PlaceId) -> &Place {
        &self.places[id.index()]
    }

    /// Mutable access to a place (used while building configurations).
    pub fn place_mut(&mut self, id: PlaceId) -> &mut Place {
        &mut self.places[id.index()]
    }

    /// All places, in id order.
    pub fn places(&self) -> &[Place] {
        &self.places
    }

    /// Direct neighbors of `id`.
    pub fn neighbors(&self, id: PlaceId) -> &[PlaceId] {
        &self.adjacency[id.index()]
    }

    /// True if `a` and `b` are directly connected.
    pub fn has_edge(&self, a: PlaceId, b: PlaceId) -> bool {
        self.adjacency[a.index()].contains(&b)
    }

    /// All edges as (low, high) pairs, each reported once.
    pub fn edges(&self) -> Vec<(PlaceId, PlaceId)> {
        let mut out = Vec::new();
        for (i, nbrs) in self.adjacency.iter().enumerate() {
            for &n in nbrs {
                if (i as u32) < n.0 {
                    out.push((PlaceId(i as u32), n));
                }
            }
        }
        out
    }

    /// Ids of all places of the given kind, in id order.
    pub fn places_of_kind(&self, kind: &PlaceKind) -> Vec<PlaceId> {
        self.places
            .iter()
            .filter(|p| &p.kind == kind)
            .map(|p| p.id)
            .collect()
    }

    /// The first place of the given kind, if any. Modules use this to assert
    /// the platform model meets their requirements (e.g. the MPI module
    /// requires one Interconnect place, paper §II-C1).
    pub fn first_of_kind(&self, kind: &PlaceKind) -> Option<PlaceId> {
        self.places.iter().find(|p| &p.kind == kind).map(|p| p.id)
    }

    /// Looks a place up by name.
    pub fn by_name(&self, name: &str) -> Option<PlaceId> {
        self.places.iter().find(|p| p.name == name).map(|p| p.id)
    }

    /// BFS hop distances from `from` to every place (`None` = unreachable).
    pub fn distances_from(&self, from: PlaceId) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.places.len()];
        dist[from.index()] = Some(0);
        let mut queue = VecDeque::from([from]);
        while let Some(p) = queue.pop_front() {
            let d = dist[p.index()].unwrap();
            for &n in self.neighbors(p) {
                if dist[n.index()].is_none() {
                    dist[n.index()] = Some(d + 1);
                    queue.push_back(n);
                }
            }
        }
        dist
    }

    /// All place ids ordered by BFS hop distance from `from` (places at equal
    /// distance keep id order; unreachable places come last in id order).
    /// This ordering is the basis of the hierarchy-aware path policy.
    pub fn bfs_order(&self, from: PlaceId) -> Vec<PlaceId> {
        let dist = self.distances_from(from);
        let mut ids: Vec<PlaceId> = self.places.iter().map(|p| p.id).collect();
        ids.sort_by_key(|p| (dist[p.index()].unwrap_or(u32::MAX), p.0));
        ids
    }

    /// True if every place can reach every other place.
    pub fn is_connected(&self) -> bool {
        if self.places.is_empty() {
            return true;
        }
        self.distances_from(PlaceId(0)).iter().all(Option::is_some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PlaceGraph {
        // sysmem -- gpu0
        //   |   \
        // inter  gpu1      disk (isolated)
        let mut g = PlaceGraph::new();
        let sys = g.add_place(PlaceKind::SystemMemory, "sysmem");
        let gpu0 = g.add_place(PlaceKind::GpuMemory, "gpu0");
        let gpu1 = g.add_place(PlaceKind::GpuMemory, "gpu1");
        let inter = g.add_place(PlaceKind::Interconnect, "net");
        g.add_place(PlaceKind::LocalDisk, "disk");
        g.add_edge(sys, gpu0);
        g.add_edge(sys, gpu1);
        g.add_edge(sys, inter);
        g
    }

    #[test]
    fn build_and_query() {
        let g = sample();
        assert_eq!(g.len(), 5);
        assert!(g.has_edge(PlaceId(0), PlaceId(1)));
        assert!(g.has_edge(PlaceId(1), PlaceId(0)));
        assert!(!g.has_edge(PlaceId(1), PlaceId(2)));
        assert_eq!(g.neighbors(PlaceId(0)).len(), 3);
        assert_eq!(g.edges().len(), 3);
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let mut g = sample();
        g.add_edge(PlaceId(0), PlaceId(1));
        g.add_edge(PlaceId(1), PlaceId(0));
        g.add_edge(PlaceId(2), PlaceId(2));
        assert_eq!(g.edges().len(), 3);
        assert!(!g.has_edge(PlaceId(2), PlaceId(2)));
    }

    #[test]
    fn kind_queries() {
        let g = sample();
        assert_eq!(g.places_of_kind(&PlaceKind::GpuMemory).len(), 2);
        assert_eq!(g.first_of_kind(&PlaceKind::Interconnect), Some(PlaceId(3)));
        assert_eq!(g.first_of_kind(&PlaceKind::Nvm), None);
        assert_eq!(g.by_name("gpu1"), Some(PlaceId(2)));
        assert_eq!(g.by_name("nope"), None);
    }

    #[test]
    fn bfs_distances_and_order() {
        let g = sample();
        let d = g.distances_from(PlaceId(1)); // gpu0
        assert_eq!(d[1], Some(0));
        assert_eq!(d[0], Some(1)); // sysmem
        assert_eq!(d[2], Some(2)); // gpu1 via sysmem
        assert_eq!(d[4], None); // disk unreachable
        let order = g.bfs_order(PlaceId(1));
        assert_eq!(order[0], PlaceId(1));
        assert_eq!(order[1], PlaceId(0));
        assert_eq!(*order.last().unwrap(), PlaceId(4));
    }

    #[test]
    fn connectivity() {
        let mut g = sample();
        assert!(!g.is_connected());
        g.add_edge(PlaceId(0), PlaceId(4));
        assert!(g.is_connected());
        assert!(PlaceGraph::new().is_connected());
    }
}
