//! Places: the nodes of the platform model graph.

use std::collections::BTreeMap;
use std::fmt;

/// Index of a place within its [`PlaceGraph`](crate::PlaceGraph).
///
/// Place ids are dense (`0..graph.len()`), so runtime structures index
/// per-place arrays directly with them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub u32);

impl PlaceId {
    /// The id as a usable array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// The kind of hardware component a place logically represents.
///
/// The kinds below cover the components the paper's modules target (system
/// memory, GPUs, the interconnect, NVM, local disk). Third-party modules can
/// introduce their own kinds with [`PlaceKind::Custom`]; the runtime treats
/// kinds opaquely except where a module has registered special-purpose
/// handlers for them (e.g. the CUDA module registers copy handlers for
/// transfers touching [`PlaceKind::GpuMemory`] places).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PlaceKind {
    /// Host DRAM attached to a set of cores (a NUMA domain or whole node).
    SystemMemory,
    /// A cache level shared by a subset of workers (models locality tiers).
    Cache,
    /// GPU device memory; tasks here are executed/managed by the CUDA module.
    GpuMemory,
    /// The network interface; communication modules funnel their operations
    /// through a place of this kind (paper §II-C1).
    Interconnect,
    /// Byte-addressable non-volatile memory.
    Nvm,
    /// Node-local storage (e.g. burst-buffer flash).
    LocalDisk,
    /// A shared parallel filesystem.
    SharedFilesystem,
    /// A module-defined kind, identified by name.
    Custom(String),
}

impl PlaceKind {
    /// Canonical string used in JSON configurations.
    pub fn as_str(&self) -> &str {
        match self {
            PlaceKind::SystemMemory => "sysmem",
            PlaceKind::Cache => "cache",
            PlaceKind::GpuMemory => "gpu",
            PlaceKind::Interconnect => "interconnect",
            PlaceKind::Nvm => "nvm",
            PlaceKind::LocalDisk => "disk",
            PlaceKind::SharedFilesystem => "sharedfs",
            PlaceKind::Custom(name) => name,
        }
    }

    /// Parses the canonical string form; unknown strings become `Custom`.
    pub fn from_str_lossy(s: &str) -> PlaceKind {
        match s {
            "sysmem" => PlaceKind::SystemMemory,
            "cache" => PlaceKind::Cache,
            "gpu" => PlaceKind::GpuMemory,
            "interconnect" => PlaceKind::Interconnect,
            "nvm" => PlaceKind::Nvm,
            "disk" => PlaceKind::LocalDisk,
            "sharedfs" => PlaceKind::SharedFilesystem,
            other => PlaceKind::Custom(other.to_string()),
        }
    }
}

impl fmt::Display for PlaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A node in the platform model graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Place {
    /// Dense identifier within the graph.
    pub id: PlaceId,
    /// Component kind.
    pub kind: PlaceKind,
    /// Human-readable name (unique within a configuration).
    pub name: String,
    /// Free-form numeric attributes (e.g. `"bytes"`, `"bandwidth_gbps"`,
    /// `"device_index"`). Modules may consult attributes of the places they
    /// manage; the core runtime does not interpret them.
    pub attrs: BTreeMap<String, f64>,
}

impl Place {
    /// Creates a place with no attributes.
    pub fn new(id: PlaceId, kind: PlaceKind, name: impl Into<String>) -> Place {
        Place {
            id,
            kind,
            name: name.into(),
            attrs: BTreeMap::new(),
        }
    }

    /// Adds/overwrites a numeric attribute, builder style.
    pub fn with_attr(mut self, key: impl Into<String>, value: f64) -> Place {
        self.attrs.insert(key.into(), value);
        self
    }

    /// Looks up a numeric attribute.
    pub fn attr(&self, key: &str) -> Option<f64> {
        self.attrs.get(key).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_string_roundtrip() {
        for kind in [
            PlaceKind::SystemMemory,
            PlaceKind::Cache,
            PlaceKind::GpuMemory,
            PlaceKind::Interconnect,
            PlaceKind::Nvm,
            PlaceKind::LocalDisk,
            PlaceKind::SharedFilesystem,
            PlaceKind::Custom("fpga".to_string()),
        ] {
            assert_eq!(PlaceKind::from_str_lossy(kind.as_str()), kind);
        }
    }

    #[test]
    fn place_attributes() {
        let p = Place::new(PlaceId(3), PlaceKind::GpuMemory, "gpu0")
            .with_attr("bytes", 6e9)
            .with_attr("device_index", 0.0);
        assert_eq!(p.attr("bytes"), Some(6e9));
        assert_eq!(p.attr("device_index"), Some(0.0));
        assert_eq!(p.attr("missing"), None);
        assert_eq!(p.id.index(), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(PlaceId(7).to_string(), "P7");
        assert_eq!(PlaceKind::Interconnect.to_string(), "interconnect");
    }
}
