//! Platform configuration: the JSON-file representation of a platform model
//! plus runtime parameters (worker count, path policies, worker home places).

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use crate::graph::PlaceGraph;
use crate::json::Json;
use crate::path::PathPolicy;
use crate::place::{Place, PlaceId, PlaceKind};

/// A complete, validated platform configuration.
///
/// This is what `hiper` loads at initialization (paper §II-A): the place
/// graph, the number of persistent worker threads to create, each worker's
/// *home* place (the place `async` spawns to and pop/steal paths start from),
/// and the path policies used to generate pop and steal paths.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Configuration name (diagnostics only).
    pub name: String,
    /// Number of persistent worker threads (paper §II-B1). Generally equals
    /// the number of management cores.
    pub workers: usize,
    /// The place graph.
    pub graph: PlaceGraph,
    /// Home place of each worker; length == `workers`.
    pub worker_homes: Vec<PlaceId>,
    /// Policy generating each worker's pop path.
    pub pop_policy: PathPolicy,
    /// Policy generating each worker's steal path.
    pub steal_policy: PathPolicy,
}

/// Error produced when loading or validating a configuration.
#[derive(Debug)]
pub enum ConfigError {
    /// Underlying JSON was malformed.
    Json(crate::json::ParseError),
    /// The document was well-formed JSON but not a valid platform config.
    Invalid(String),
    /// I/O failure reading the file.
    Io(std::io::Error),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Json(e) => write!(f, "{}", e),
            ConfigError::Invalid(msg) => write!(f, "invalid platform config: {}", msg),
            ConfigError::Io(e) => write!(f, "i/o error: {}", e),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<crate::json::ParseError> for ConfigError {
    fn from(e: crate::json::ParseError) -> Self {
        ConfigError::Json(e)
    }
}

fn invalid(msg: impl Into<String>) -> ConfigError {
    ConfigError::Invalid(msg.into())
}

impl PlatformConfig {
    /// Builds a config from parts and validates it.
    pub fn new(
        name: impl Into<String>,
        workers: usize,
        graph: PlaceGraph,
        worker_homes: Vec<PlaceId>,
        pop_policy: PathPolicy,
        steal_policy: PathPolicy,
    ) -> Result<PlatformConfig, ConfigError> {
        let cfg = PlatformConfig {
            name: name.into(),
            workers,
            graph,
            worker_homes,
            pop_policy,
            steal_policy,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.workers == 0 {
            return Err(invalid("worker count must be at least 1"));
        }
        if self.graph.is_empty() {
            return Err(invalid("platform model must contain at least one place"));
        }
        if self.worker_homes.len() != self.workers {
            return Err(invalid(format!(
                "worker_homes has {} entries for {} workers",
                self.worker_homes.len(),
                self.workers
            )));
        }
        for (w, home) in self.worker_homes.iter().enumerate() {
            if home.index() >= self.graph.len() {
                return Err(invalid(format!(
                    "worker {} home {} is out of range",
                    w, home
                )));
            }
        }
        let mut names = std::collections::HashSet::new();
        for p in self.graph.places() {
            if !names.insert(p.name.as_str()) {
                return Err(invalid(format!("duplicate place name '{}'", p.name)));
            }
        }
        Ok(())
    }

    /// Parses a configuration from a JSON document.
    ///
    /// Schema (see `configs/` for examples):
    /// ```json
    /// {
    ///   "name": "titan-node",
    ///   "workers": 16,
    ///   "pop_policy": "home_only",
    ///   "steal_policy": "hierarchical",
    ///   "places": [
    ///     {"id": 0, "kind": "sysmem", "name": "sysmem",
    ///      "attrs": {"bytes": 32e9}}
    ///   ],
    ///   "edges": [[0, 1]],
    ///   "worker_homes": [0, 0]
    /// }
    /// ```
    /// `worker_homes` is optional; the default homes every worker at the
    /// first `sysmem` place (or place 0 if none exists).
    pub fn from_json(doc: &str) -> Result<PlatformConfig, ConfigError> {
        let root = Json::parse(doc)?;
        let obj = root
            .as_object()
            .ok_or_else(|| invalid("top level must be an object"))?;

        let name = obj
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("unnamed")
            .to_string();
        let workers = obj
            .get("workers")
            .and_then(Json::as_usize)
            .ok_or_else(|| invalid("missing or non-integer 'workers'"))?;

        let mut graph = PlaceGraph::new();
        let places = obj
            .get("places")
            .and_then(Json::as_array)
            .ok_or_else(|| invalid("missing 'places' array"))?;
        for (i, pj) in places.iter().enumerate() {
            let po = pj
                .as_object()
                .ok_or_else(|| invalid(format!("place {} is not an object", i)))?;
            let id = po
                .get("id")
                .and_then(Json::as_usize)
                .ok_or_else(|| invalid(format!("place {} missing integer 'id'", i)))?;
            if id != i {
                return Err(invalid(format!(
                    "place ids must be dense and ordered (index {} has id {})",
                    i, id
                )));
            }
            let kind = po
                .get("kind")
                .and_then(Json::as_str)
                .map(PlaceKind::from_str_lossy)
                .ok_or_else(|| invalid(format!("place {} missing 'kind'", i)))?;
            let pname = po
                .get("name")
                .and_then(Json::as_str)
                .map(str::to_string)
                .unwrap_or_else(|| format!("{}{}", kind.as_str(), i));
            let mut place = Place::new(PlaceId(i as u32), kind, pname);
            if let Some(attrs) = po.get("attrs").and_then(Json::as_object) {
                for (k, v) in attrs {
                    let n = v
                        .as_f64()
                        .ok_or_else(|| invalid(format!("attr '{}' must be numeric", k)))?;
                    place.attrs.insert(k.clone(), n);
                }
            }
            graph.push_place(place);
        }

        if let Some(edges) = obj.get("edges").and_then(Json::as_array) {
            for (i, ej) in edges.iter().enumerate() {
                let pair = ej
                    .as_array()
                    .ok_or_else(|| invalid(format!("edge {} is not an array", i)))?;
                if pair.len() != 2 {
                    return Err(invalid(format!("edge {} must have exactly 2 endpoints", i)));
                }
                let a = pair[0]
                    .as_usize()
                    .ok_or_else(|| invalid(format!("edge {} endpoint 0 invalid", i)))?;
                let b = pair[1]
                    .as_usize()
                    .ok_or_else(|| invalid(format!("edge {} endpoint 1 invalid", i)))?;
                if a >= graph.len() || b >= graph.len() {
                    return Err(invalid(format!("edge {} references unknown place", i)));
                }
                graph.add_edge(PlaceId(a as u32), PlaceId(b as u32));
            }
        }

        let default_home = graph
            .first_of_kind(&PlaceKind::SystemMemory)
            .unwrap_or(PlaceId(0));
        let worker_homes = match obj.get("worker_homes").and_then(Json::as_array) {
            Some(homes) => homes
                .iter()
                .enumerate()
                .map(|(w, h)| {
                    h.as_usize()
                        .filter(|&h| h < graph.len())
                        .map(|h| PlaceId(h as u32))
                        .ok_or_else(|| invalid(format!("worker {} home invalid", w)))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => vec![default_home; workers],
        };

        let pop_policy = match obj.get("pop_policy").and_then(Json::as_str) {
            Some(s) => PathPolicy::from_str(s).ok_or_else(|| invalid("unknown pop_policy"))?,
            None => PathPolicy::HomeFirst,
        };
        let steal_policy = match obj.get("steal_policy").and_then(Json::as_str) {
            Some(s) => PathPolicy::from_str(s).ok_or_else(|| invalid("unknown steal_policy"))?,
            None => PathPolicy::Hierarchical,
        };

        PlatformConfig::new(name, workers, graph, worker_homes, pop_policy, steal_policy)
    }

    /// Loads a configuration from a file.
    pub fn from_file(path: impl AsRef<Path>) -> Result<PlatformConfig, ConfigError> {
        let doc = std::fs::read_to_string(path).map_err(ConfigError::Io)?;
        PlatformConfig::from_json(&doc)
    }

    /// Serializes back to the JSON schema accepted by [`from_json`].
    pub fn to_json(&self) -> String {
        let mut root = BTreeMap::new();
        root.insert("name".to_string(), Json::from(self.name.as_str()));
        root.insert("workers".to_string(), Json::from(self.workers));
        root.insert(
            "pop_policy".to_string(),
            Json::from(self.pop_policy.as_str()),
        );
        root.insert(
            "steal_policy".to_string(),
            Json::from(self.steal_policy.as_str()),
        );
        let places: Vec<Json> = self
            .graph
            .places()
            .iter()
            .map(|p| {
                let mut po = BTreeMap::new();
                po.insert("id".to_string(), Json::from(p.id.index()));
                po.insert("kind".to_string(), Json::from(p.kind.as_str()));
                po.insert("name".to_string(), Json::from(p.name.as_str()));
                if !p.attrs.is_empty() {
                    let attrs: BTreeMap<String, Json> = p
                        .attrs
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Number(*v)))
                        .collect();
                    po.insert("attrs".to_string(), Json::Object(attrs));
                }
                Json::Object(po)
            })
            .collect();
        root.insert("places".to_string(), Json::Array(places));
        let edges: Vec<Json> = self
            .graph
            .edges()
            .iter()
            .map(|(a, b)| Json::Array(vec![Json::from(a.index()), Json::from(b.index())]))
            .collect();
        root.insert("edges".to_string(), Json::Array(edges));
        let homes: Vec<Json> = self
            .worker_homes
            .iter()
            .map(|h| Json::from(h.index()))
            .collect();
        root.insert("worker_homes".to_string(), Json::Array(homes));
        Json::Object(root).pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
        "name": "test-node",
        "workers": 4,
        "places": [
            {"id": 0, "kind": "sysmem", "name": "mem", "attrs": {"bytes": 64000000000}},
            {"id": 1, "kind": "gpu", "name": "gpu0"},
            {"id": 2, "kind": "interconnect", "name": "net"}
        ],
        "edges": [[0, 1], [0, 2]],
        "worker_homes": [0, 0, 0, 0],
        "pop_policy": "home_first",
        "steal_policy": "hierarchical"
    }"#;

    #[test]
    fn parse_full_document() {
        let cfg = PlatformConfig::from_json(DOC).unwrap();
        assert_eq!(cfg.name, "test-node");
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.graph.len(), 3);
        assert!(cfg.graph.has_edge(PlaceId(0), PlaceId(1)));
        assert_eq!(cfg.graph.place(PlaceId(0)).attr("bytes"), Some(64e9));
        assert_eq!(cfg.worker_homes, vec![PlaceId(0); 4]);
    }

    #[test]
    fn default_homes_and_policies() {
        let doc = r#"{"workers": 2, "places": [
            {"id": 0, "kind": "gpu", "name": "g"},
            {"id": 1, "kind": "sysmem", "name": "m"}
        ]}"#;
        let cfg = PlatformConfig::from_json(doc).unwrap();
        // Default home is the first sysmem place, not place 0.
        assert_eq!(cfg.worker_homes, vec![PlaceId(1); 2]);
        assert_eq!(cfg.pop_policy, PathPolicy::HomeFirst);
        assert_eq!(cfg.steal_policy, PathPolicy::Hierarchical);
    }

    #[test]
    fn json_roundtrip_preserves_config() {
        let cfg = PlatformConfig::from_json(DOC).unwrap();
        let doc2 = cfg.to_json();
        let cfg2 = PlatformConfig::from_json(&doc2).unwrap();
        assert_eq!(cfg2.name, cfg.name);
        assert_eq!(cfg2.workers, cfg.workers);
        assert_eq!(cfg2.graph.len(), cfg.graph.len());
        assert_eq!(cfg2.graph.edges(), cfg.graph.edges());
        assert_eq!(cfg2.worker_homes, cfg.worker_homes);
        assert_eq!(cfg2.pop_policy, cfg.pop_policy);
        for (p, q) in cfg.graph.places().iter().zip(cfg2.graph.places()) {
            assert_eq!(p, q);
        }
    }

    #[test]
    fn rejects_invalid_configs() {
        // Zero workers.
        assert!(PlatformConfig::from_json(
            r#"{"workers": 0, "places": [{"id":0,"kind":"sysmem","name":"m"}]}"#
        )
        .is_err());
        // Non-dense ids.
        assert!(PlatformConfig::from_json(
            r#"{"workers": 1, "places": [{"id":1,"kind":"sysmem","name":"m"}]}"#
        )
        .is_err());
        // Edge out of range.
        assert!(PlatformConfig::from_json(
            r#"{"workers": 1, "places": [{"id":0,"kind":"sysmem","name":"m"}], "edges": [[0,5]]}"#
        )
        .is_err());
        // Bad home.
        assert!(PlatformConfig::from_json(
            r#"{"workers": 1, "places": [{"id":0,"kind":"sysmem","name":"m"}], "worker_homes":[9]}"#
        )
        .is_err());
        // Duplicate names.
        assert!(PlatformConfig::from_json(
            r#"{"workers": 1, "places": [{"id":0,"kind":"sysmem","name":"m"},{"id":1,"kind":"gpu","name":"m"}]}"#
        )
        .is_err());
        // No places.
        assert!(PlatformConfig::from_json(r#"{"workers": 1, "places": []}"#).is_err());
        // Wrong home count.
        assert!(PlatformConfig::from_json(
            r#"{"workers": 2, "places": [{"id":0,"kind":"sysmem","name":"m"}], "worker_homes":[0]}"#
        )
        .is_err());
    }

    #[test]
    fn unknown_kind_becomes_custom() {
        let doc = r#"{"workers": 1, "places": [{"id":0,"kind":"fpga","name":"f"}]}"#;
        let cfg = PlatformConfig::from_json(doc).unwrap();
        assert_eq!(
            cfg.graph.place(PlaceId(0)).kind,
            PlaceKind::Custom("fpga".to_string())
        );
    }

    #[test]
    fn file_roundtrip() {
        let cfg = PlatformConfig::from_json(DOC).unwrap();
        let dir = std::env::temp_dir().join("hiper_platform_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cfg.json");
        std::fs::write(&path, cfg.to_json()).unwrap();
        let cfg2 = PlatformConfig::from_file(&path).unwrap();
        assert_eq!(cfg2.name, cfg.name);
        assert_eq!(cfg2.graph.len(), cfg.graph.len());
    }
}
