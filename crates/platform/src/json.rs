//! A small, dependency-free JSON parser and serializer.
//!
//! The paper specifies that the platform model "is loaded from a
//! JSON-formatted file at HiPER runtime initialization" (§II-A). `serde_json`
//! is outside this project's approved dependency set, so this module provides
//! the subset of JSON the platform configuration needs: objects, arrays,
//! strings (with escapes), numbers, booleans and null.
//!
//! Numbers are stored as `f64`, which is lossless for the integer magnitudes
//! platform files contain (worker counts, memory sizes up to 2^53).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. `BTreeMap` keeps serialization deterministic.
    Object(BTreeMap<String, Json>),
}

/// Error produced when parsing malformed JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Parses a complete JSON document. Trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Serializes with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    /// Serializes compactly.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{}", n));
                }
            }
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(level) = indent {
                        out.push('\n');
                        out.push_str(&"  ".repeat(level + 1));
                        item.write(out, Some(level + 1));
                    } else {
                        item.write(out, None);
                    }
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level));
                }
                out.push(']');
            }
            Json::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(level) = indent {
                        out.push('\n');
                        out.push_str(&"  ".repeat(level + 1));
                        write_escaped(out, k);
                        out.push_str(": ");
                        v.write(out, Some(level + 1));
                    } else {
                        write_escaped(out, k);
                        out.push(':');
                        v.write(out, None);
                    }
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level));
                }
                out.push('}');
            }
        }
    }

    // --- typed accessors (used by config deserialization) ---

    /// Returns the object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the number as a usize, if this is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// Returns the boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience: field lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object().and_then(|m| m.get(key))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{}'", lit)))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'b') => s.push('\u{08}'),
                    Some(b'f') => s.push('\u{0c}'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Handle surrogate pairs.
                        if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired high surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            s.push(char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?);
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.err("unpaired low surrogate"));
                        } else {
                            s.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(c) if c < 0x20 => return Err(self.err("unescaped control character")),
                Some(c) => {
                    // Re-assemble multi-byte UTF-8 (the input is a &str, so it
                    // is valid UTF-8; find the char boundary and copy it).
                    if c < 0x80 {
                        s.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(c);
                        let end = start + width;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated UTF-8 sequence"));
                        }
                        let chunk = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?;
                        s.push_str(chunk);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_width(first: u8) -> usize {
    if first >= 0xF0 {
        4
    } else if first >= 0xE0 {
        3
    } else {
        2
    }
}

// --- construction helpers used by serializers ---

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::String(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::String(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Number(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Number(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(Json::parse("-3.5e2").unwrap(), Json::Number(-350.0));
        assert_eq!(
            Json::parse("\"hi\"").unwrap(),
            Json::String("hi".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, 2, {"b": null}], "c": {"d": true}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d").unwrap(), &Json::Bool(true));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""line\nfeed A 😀 café""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "line\nfeed A 😀 café");
        // Raw multi-byte UTF-8 passes through.
        let v = Json::parse("\"héllo wörld\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "héllo wörld");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "01x",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {:?}", bad);
        }
    }

    #[test]
    fn pretty_and_compact_roundtrip() {
        let doc = r#"{"name":"node0","workers":24,"places":[{"id":0,"kind":"sysmem"},{"id":1,"kind":"gpu"}],"ratio":0.5,"flag":false,"none":null}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(Json::parse(&v.compact()).unwrap(), v);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 7, "s": "x", "b": true, "a": []}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), Some(7));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert!(v.get("a").unwrap().as_array().unwrap().is_empty());
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Number(1.5).as_usize(), None);
        assert_eq!(Json::Number(-1.0).as_usize(), None);
    }

    #[test]
    fn deep_nesting_roundtrip() {
        let mut doc = String::new();
        for _ in 0..64 {
            doc.push('[');
        }
        doc.push('1');
        for _ in 0..64 {
            doc.push(']');
        }
        let v = Json::parse(&doc).unwrap();
        assert_eq!(Json::parse(&v.compact()).unwrap(), v);
    }
}
