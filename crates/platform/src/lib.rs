//! The HiPER platform model (paper §II-A).
//!
//! The platform model is an undirected, unweighted graph whose nodes —
//! *places* — logically represent hardware components that software libraries
//! may utilize (system memory, GPU device memory, the interconnect, NVM,
//! local disks, …), and whose edges represent direct accessibility between
//! those components. There is deliberately no requirement that places map
//! one-to-one onto physical hardware.
//!
//! The model is loaded from a JSON-formatted file at runtime initialization
//! ([`PlatformConfig::from_json`]). Utilities for generating configurations
//! automatically — the role hwloc plays in the C++ implementation — live in
//! [`autogen`].
//!
//! Pop/steal path construction for the generalized work-stealing runtime
//! (paper §II-B3) lives in [`path`]: a path is *data* (an ordered list of
//! [`PlaceId`]s per worker), so any load-balancing policy expressible as a
//! traversal order can be plugged in without touching the scheduler.

pub mod autogen;
pub mod config;
pub mod graph;
pub mod json;
pub mod path;
pub mod place;

pub use config::{ConfigError, PlatformConfig};
pub use graph::PlaceGraph;
pub use path::{PathPolicy, WorkerPaths};
pub use place::{Place, PlaceId, PlaceKind};
