//! Pop and steal path construction (paper §II-B3).
//!
//! Each worker thread has one *pop path* and one *steal path*: ordered lists
//! of places the worker traverses when looking for work. On the pop path it
//! only takes tasks it created itself (locality); on the steal path it only
//! takes tasks created by other workers (load balance).
//!
//! Paths are "infinitely flexible, and so can be used to encode any number of
//! load balancing policies" — this module provides the policies used in the
//! paper's experiments plus hooks for custom paths. A policy is just a
//! function from (graph, worker, home) to a place list; the scheduler never
//! interprets the policy, only the resulting path.

use crate::graph::PlaceGraph;
use crate::place::PlaceId;

/// Built-in path-generation policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathPolicy {
    /// Visit only the worker's home place. The classic flat work-stealing
    /// configuration when used for both pop and steal paths.
    HomeOnly,
    /// Visit the home place first, then every other place in id order.
    HomeFirst,
    /// Visit places in BFS order from the home place: nearer places (in the
    /// platform graph, i.e. logically closer in the memory hierarchy) are
    /// searched before farther ones. This is the "memory hierarchy-aware
    /// policy" example from §II-B3.
    Hierarchical,
    /// Visit the home place, then the remaining places in a per-worker
    /// pseudo-random order (deterministic in the worker id). Randomized steal
    /// orders reduce contention when many workers go idle simultaneously.
    RandomizedHomeFirst,
}

impl PathPolicy {
    /// Canonical string used in JSON configurations.
    pub fn as_str(&self) -> &'static str {
        match self {
            PathPolicy::HomeOnly => "home_only",
            PathPolicy::HomeFirst => "home_first",
            PathPolicy::Hierarchical => "hierarchical",
            PathPolicy::RandomizedHomeFirst => "randomized",
        }
    }

    /// Parses the canonical string form. Inherent (not `std::str::FromStr`)
    /// because absence of a match is not an error worth a payload here.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<PathPolicy> {
        match s {
            "home_only" => Some(PathPolicy::HomeOnly),
            "home_first" => Some(PathPolicy::HomeFirst),
            "hierarchical" => Some(PathPolicy::Hierarchical),
            "randomized" => Some(PathPolicy::RandomizedHomeFirst),
            _ => None,
        }
    }

    /// Generates the path for `worker` homed at `home`.
    pub fn generate(&self, graph: &PlaceGraph, worker: usize, home: PlaceId) -> Vec<PlaceId> {
        match self {
            PathPolicy::HomeOnly => vec![home],
            PathPolicy::HomeFirst => {
                let mut path = vec![home];
                path.extend(graph.places().iter().map(|p| p.id).filter(|&p| p != home));
                path
            }
            PathPolicy::Hierarchical => graph.bfs_order(home),
            PathPolicy::RandomizedHomeFirst => {
                let mut rest: Vec<PlaceId> = graph
                    .places()
                    .iter()
                    .map(|p| p.id)
                    .filter(|&p| p != home)
                    .collect();
                // Deterministic per-worker shuffle (splitmix64-seeded
                // Fisher-Yates) so paths are stable across runs.
                let mut state = splitmix64(worker as u64 ^ 0x9e37_79b9_7f4a_7c15);
                for i in (1..rest.len()).rev() {
                    state = splitmix64(state);
                    let j = (state % (i as u64 + 1)) as usize;
                    rest.swap(i, j);
                }
                let mut path = vec![home];
                path.extend(rest);
                path
            }
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The fully-materialized pop and steal paths for one worker.
#[derive(Debug, Clone)]
pub struct WorkerPaths {
    /// Places searched for the worker's *own* tasks, in order.
    pub pop: Vec<PlaceId>,
    /// Places searched for *other workers'* tasks, in order.
    pub steal: Vec<PlaceId>,
}

impl WorkerPaths {
    /// Generates paths for every worker from the two policies.
    pub fn generate_all(
        graph: &PlaceGraph,
        homes: &[PlaceId],
        pop_policy: PathPolicy,
        steal_policy: PathPolicy,
    ) -> Vec<WorkerPaths> {
        homes
            .iter()
            .enumerate()
            .map(|(w, &home)| WorkerPaths {
                pop: pop_policy.generate(graph, w, home),
                steal: steal_policy.generate(graph, w, home),
            })
            .collect()
    }

    /// Builds custom paths directly (the escape hatch for third-party
    /// policies: any place ordering is a valid path).
    pub fn custom(pop: Vec<PlaceId>, steal: Vec<PlaceId>) -> WorkerPaths {
        WorkerPaths { pop, steal }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::PlaceKind;

    fn star_graph(n: usize) -> PlaceGraph {
        let mut g = PlaceGraph::new();
        let hub = g.add_place(PlaceKind::SystemMemory, "hub");
        for i in 1..n {
            let p = g.add_place(PlaceKind::GpuMemory, format!("leaf{}", i));
            g.add_edge(hub, p);
        }
        g
    }

    #[test]
    fn policy_string_roundtrip() {
        for p in [
            PathPolicy::HomeOnly,
            PathPolicy::HomeFirst,
            PathPolicy::Hierarchical,
            PathPolicy::RandomizedHomeFirst,
        ] {
            assert_eq!(PathPolicy::from_str(p.as_str()), Some(p));
        }
        assert_eq!(PathPolicy::from_str("bogus"), None);
    }

    #[test]
    fn home_only_path() {
        let g = star_graph(4);
        let path = PathPolicy::HomeOnly.generate(&g, 0, PlaceId(2));
        assert_eq!(path, vec![PlaceId(2)]);
    }

    #[test]
    fn home_first_visits_all_places_once() {
        let g = star_graph(5);
        let path = PathPolicy::HomeFirst.generate(&g, 0, PlaceId(3));
        assert_eq!(path[0], PlaceId(3));
        let mut sorted = path.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), g.len());
    }

    #[test]
    fn hierarchical_orders_by_distance() {
        // Chain: 0 - 1 - 2 - 3
        let mut g = PlaceGraph::new();
        for i in 0..4 {
            g.add_place(PlaceKind::SystemMemory, format!("p{}", i));
        }
        g.add_edge(PlaceId(0), PlaceId(1));
        g.add_edge(PlaceId(1), PlaceId(2));
        g.add_edge(PlaceId(2), PlaceId(3));
        let path = PathPolicy::Hierarchical.generate(&g, 0, PlaceId(3));
        assert_eq!(path, vec![PlaceId(3), PlaceId(2), PlaceId(1), PlaceId(0)]);
    }

    #[test]
    fn randomized_is_deterministic_per_worker_and_complete() {
        let g = star_graph(8);
        let a = PathPolicy::RandomizedHomeFirst.generate(&g, 3, PlaceId(0));
        let b = PathPolicy::RandomizedHomeFirst.generate(&g, 3, PlaceId(0));
        assert_eq!(a, b);
        assert_eq!(a[0], PlaceId(0));
        let mut sorted = a.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), g.len());
        // Different workers usually get different orders (with 7 leaves the
        // probability of a collision for these two seeds is negligible, and
        // the seeds are fixed, so this is deterministic).
        let c = PathPolicy::RandomizedHomeFirst.generate(&g, 4, PlaceId(0));
        assert_ne!(a, c);
    }

    #[test]
    fn generate_all_produces_one_per_worker() {
        let g = star_graph(3);
        let homes = vec![PlaceId(0), PlaceId(1), PlaceId(2)];
        let paths =
            WorkerPaths::generate_all(&g, &homes, PathPolicy::HomeOnly, PathPolicy::Hierarchical);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[1].pop, vec![PlaceId(1)]);
        assert_eq!(paths[2].steal[0], PlaceId(2));
    }
}
