//! Automatic platform-configuration generation.
//!
//! The C++ HiPER ships utilities that generate JSON platform files with
//! hwloc (paper §II-A). This environment has no hwloc, so this module plays
//! that role with synthetic-but-realistic topology builders: a flat SMP, an
//! SMP with attached GPUs (a Titan-like node), and the example platform of
//! the paper's Figure 2. Users are free to edit the emitted JSON, exactly as
//! with the original utilities.

use crate::config::{ConfigError, PlatformConfig};
use crate::graph::PlaceGraph;
use crate::path::PathPolicy;
use crate::place::{PlaceId, PlaceKind};

/// A flat shared-memory node: one system-memory place, one interconnect
/// place, `workers` worker threads all homed at system memory.
///
/// This is the minimal model every communication module can run on: the MPI
/// module requires an Interconnect place on some worker's paths (§II-C1).
pub fn smp(workers: usize) -> PlatformConfig {
    let mut g = PlaceGraph::new();
    let sys = g.add_place(PlaceKind::SystemMemory, "sysmem");
    let net = g.add_place(PlaceKind::Interconnect, "interconnect");
    g.add_edge(sys, net);
    PlatformConfig::new(
        format!("smp{}", workers),
        workers,
        g,
        vec![sys; workers],
        PathPolicy::HomeFirst,
        PathPolicy::Hierarchical,
    )
    .expect("smp config is valid by construction")
}

/// An SMP node with `gpus` attached accelerators (a Titan XK7-like node when
/// `workers = 16, gpus = 1`). GPU places are connected to system memory
/// (PCIe) and to each other (peer access) and carry `device_index` and
/// `bytes` attributes for the CUDA module.
pub fn smp_with_gpus(workers: usize, gpus: usize) -> PlatformConfig {
    let mut g = PlaceGraph::new();
    let sys = g.add_place(PlaceKind::SystemMemory, "sysmem");
    let net = g.add_place(PlaceKind::Interconnect, "interconnect");
    g.add_edge(sys, net);
    let mut gpu_ids = Vec::new();
    for d in 0..gpus {
        let gpu = g.add_place(PlaceKind::GpuMemory, format!("gpu{}", d));
        g.place_mut(gpu)
            .attrs
            .insert("device_index".into(), d as f64);
        g.place_mut(gpu).attrs.insert("bytes".into(), 6e9);
        g.add_edge(sys, gpu);
        for &other in &gpu_ids {
            g.add_edge(gpu, other);
        }
        gpu_ids.push(gpu);
    }
    PlatformConfig::new(
        format!("smp{}gpu{}", workers, gpus),
        workers,
        g,
        vec![sys; workers],
        PathPolicy::HomeFirst,
        PathPolicy::Hierarchical,
    )
    .expect("smp_with_gpus config is valid by construction")
}

/// The example platform model from the paper's Figure 2: a NUMA node with
/// two memory domains, two GPUs, an interconnect, NVM and node-local disk.
pub fn figure2(workers_per_domain: usize) -> PlatformConfig {
    let mut g = PlaceGraph::new();
    let mem0 = g.add_place(PlaceKind::SystemMemory, "sysmem0");
    let mem1 = g.add_place(PlaceKind::SystemMemory, "sysmem1");
    g.add_edge(mem0, mem1);
    let gpu0 = g.add_place(PlaceKind::GpuMemory, "gpu0");
    let gpu1 = g.add_place(PlaceKind::GpuMemory, "gpu1");
    g.place_mut(gpu0).attrs.insert("device_index".into(), 0.0);
    g.place_mut(gpu1).attrs.insert("device_index".into(), 1.0);
    g.add_edge(mem0, gpu0);
    g.add_edge(mem1, gpu1);
    g.add_edge(gpu0, gpu1);
    let net = g.add_place(PlaceKind::Interconnect, "interconnect");
    g.add_edge(mem0, net);
    g.add_edge(mem1, net);
    let nvm = g.add_place(PlaceKind::Nvm, "nvm");
    g.add_edge(mem0, nvm);
    g.add_edge(mem1, nvm);
    let disk = g.add_place(PlaceKind::LocalDisk, "disk");
    g.add_edge(nvm, disk);

    let workers = workers_per_domain * 2;
    let mut homes = vec![mem0; workers_per_domain];
    homes.extend(vec![mem1; workers_per_domain]);
    PlatformConfig::new(
        "figure2",
        workers,
        g,
        homes,
        PathPolicy::HomeFirst,
        PathPolicy::Hierarchical,
    )
    .expect("figure2 config is valid by construction")
}

/// "Discovers" the current machine, hwloc-style: reads the available
/// parallelism from the OS and builds an [`smp`] model with one worker per
/// logical CPU (minimum 1).
pub fn discover() -> PlatformConfig {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    smp(cores)
}

/// Writes a generated configuration to a JSON file (the CLI-utility analog).
pub fn write_config(
    cfg: &PlatformConfig,
    path: impl AsRef<std::path::Path>,
) -> Result<(), ConfigError> {
    std::fs::write(path, cfg.to_json()).map_err(ConfigError::Io)
}

/// Returns the id of the interconnect place of a generated config (all
/// builders above create exactly one).
pub fn interconnect_of(cfg: &PlatformConfig) -> PlaceId {
    cfg.graph
        .first_of_kind(&PlaceKind::Interconnect)
        .expect("generated configs always contain an interconnect place")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smp_shape() {
        let cfg = smp(8);
        assert_eq!(cfg.workers, 8);
        assert_eq!(cfg.graph.len(), 2);
        assert!(cfg.graph.is_connected());
        assert_eq!(
            cfg.graph.first_of_kind(&PlaceKind::Interconnect),
            Some(PlaceId(1))
        );
        cfg.validate().unwrap();
    }

    #[test]
    fn gpu_node_shape() {
        let cfg = smp_with_gpus(16, 2);
        assert_eq!(cfg.graph.places_of_kind(&PlaceKind::GpuMemory).len(), 2);
        let gpu0 = cfg.graph.by_name("gpu0").unwrap();
        let gpu1 = cfg.graph.by_name("gpu1").unwrap();
        // PCIe links + peer link.
        assert!(cfg.graph.has_edge(PlaceId(0), gpu0));
        assert!(cfg.graph.has_edge(gpu0, gpu1));
        assert_eq!(cfg.graph.place(gpu1).attr("device_index"), Some(1.0));
        cfg.validate().unwrap();
    }

    #[test]
    fn figure2_shape() {
        let cfg = figure2(12); // Edison-like: 2x12 cores
        assert_eq!(cfg.workers, 24);
        assert_eq!(cfg.graph.len(), 7);
        assert!(cfg.graph.is_connected());
        // Workers split between the two NUMA domains.
        assert_eq!(cfg.worker_homes[0], PlaceId(0));
        assert_eq!(cfg.worker_homes[23], PlaceId(1));
        cfg.validate().unwrap();
    }

    #[test]
    fn generated_configs_roundtrip_through_json() {
        for cfg in [smp(4), smp_with_gpus(4, 1), figure2(2)] {
            let doc = cfg.to_json();
            let cfg2 = PlatformConfig::from_json(&doc).unwrap();
            assert_eq!(cfg2.graph.len(), cfg.graph.len());
            assert_eq!(cfg2.graph.edges(), cfg.graph.edges());
            assert_eq!(cfg2.worker_homes, cfg.worker_homes);
        }
    }

    #[test]
    fn discover_builds_valid_config() {
        let cfg = discover();
        assert!(cfg.workers >= 1);
        cfg.validate().unwrap();
    }
}
