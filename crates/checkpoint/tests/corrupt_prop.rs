//! Property tests for snapshot-damage handling: whatever a single-byte
//! flip or a truncation does to the newest snapshot on disk, restore must
//! never panic and must fall back to the older intact version.
//!
//! The FNV-1a frame check makes both damage classes deterministically
//! detectable: a byte substitution at fixed length always changes the hash
//! (each absorb/multiply step is a bijection on the running state, so a
//! difference introduced at any position survives to the final value), and
//! a truncation breaks the recorded payload length. The property leans on
//! that: the damaged v2 is always skipped, never returned as garbage.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use hiper_checkpoint::{CheckpointModule, DiskModel};
use hiper_platform::autogen;
use hiper_runtime::{Runtime, RuntimeBuilder, SchedulerModule};
use proptest::prelude::*;

fn tmpdir(tag: u64) -> PathBuf {
    let dir = std::env::temp_dir().join("hiper_ckpt_prop").join(format!(
        "case-{}-{}",
        std::process::id(),
        tag
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_rt(ckpt: &Arc<CheckpointModule>) -> Runtime {
    RuntimeBuilder::new(autogen::figure2(1))
        .module(Arc::clone(ckpt) as Arc<dyn SchedulerModule>)
        .build()
        .unwrap()
}

fn fast_model() -> DiskModel {
    DiskModel {
        write_bandwidth: 1e12,
        overhead: Duration::ZERO,
    }
}

#[derive(Debug, Clone, Copy)]
enum Damage {
    /// XOR file byte (index % len) with a nonzero mask.
    Flip { index: usize, mask: u8 },
    /// Keep only the first (fraction % (len + 1)) bytes.
    Truncate { keep: usize },
}

fn damage_strategy() -> impl Strategy<Value = Damage> {
    prop_oneof![
        (any::<usize>(), 0u8..255).prop_map(|(index, m)| Damage::Flip {
            index,
            mask: m + 1, // nonzero: a zero mask would leave the file intact
        }),
        any::<usize>().prop_map(|keep| Damage::Truncate { keep }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn damaged_snapshot_never_panics_and_falls_back(
        payload1 in proptest::collection::vec(any::<u8>(), 1..256),
        payload2 in proptest::collection::vec(any::<u8>(), 1..256),
        damage in damage_strategy(),
        tag in any::<u64>(),
    ) {
        let dir = tmpdir(tag);
        let ckpt = CheckpointModule::with_model(dir.clone(), fast_model());
        let rt = build_rt(&ckpt);
        let c = Arc::clone(&ckpt);
        let p1 = payload1.clone();
        let outcome = rt.block_on(move || {
            c.checkpoint("prop", 1, payload1.clone()).wait();
            c.checkpoint("prop", 2, payload2).wait();
            let path = dir.join("prop.v2.ckpt");
            let bytes = std::fs::read(&path).unwrap();
            let damaged = match damage {
                Damage::Flip { index, mask } => {
                    let mut b = bytes.clone();
                    let i = index % b.len();
                    b[i] ^= mask;
                    b
                }
                Damage::Truncate { keep } => bytes[..keep % bytes.len()].to_vec(),
            };
            std::fs::write(&path, &damaged).unwrap();
            c.restore_latest("prop").unwrap().get()
        });
        rt.shutdown();
        let (version, data) = outcome.expect("an intact older snapshot exists");
        prop_assert_eq!(version, 1, "damaged v2 must be skipped");
        prop_assert_eq!(data, p1);
    }
}
