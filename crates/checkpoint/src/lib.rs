//! HiPER checkpoint module.
//!
//! Paper §V names this as planned future work: "a HiPER module for
//! checkpointing of application state would enable overlapping of checkpoint
//! I/O with useful application work." This crate is that module: checkpoint
//! writes are tasks placed at a storage place (LocalDisk or Nvm) in the
//! platform model, scheduled by the same unified runtime as everything else,
//! and return futures so applications keep computing while snapshots drain
//! to disk.
//!
//! Snapshots are written atomically (temp file + rename), carry a checksum
//! validated on restore, and are versioned per name. A configurable
//! bandwidth model charges write time in wall-clock terms, so the benefit of
//! overlap is measurable exactly like the communication modules'.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use hiper_platform::{PlaceId, PlaceKind};
use hiper_runtime::{Future, ModuleError, Runtime, SchedulerModule};
use parking_lot::RwLock;

/// Storage performance model.
#[derive(Debug, Clone, Copy)]
pub struct DiskModel {
    /// Write bandwidth in bytes/second (burst-buffer flash scale).
    pub write_bandwidth: f64,
    /// Fixed per-operation overhead.
    pub overhead: Duration,
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel {
            write_bandwidth: 1.0e9,
            overhead: Duration::from_micros(100),
        }
    }
}

/// The checkpoint module.
pub struct CheckpointModule {
    dir: PathBuf,
    model: DiskModel,
    state: RwLock<Option<ModuleState>>,
}

struct ModuleState {
    rt: Runtime,
    place: PlaceId,
}

/// Error returned by [`CheckpointModule::restore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// No snapshot exists under that name/version.
    NotFound,
    /// The snapshot file exists but fails checksum validation (truncated,
    /// bit-flipped, or mis-framed).
    Corrupt,
    /// Underlying I/O failure.
    Io(String),
}

/// The typed checkpoint error: alias for [`RestoreError`] under the name
/// the recovery path uses (`CheckpointError::Corrupt` etc).
pub type CheckpointError = RestoreError;

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::NotFound => f.write_str("snapshot not found"),
            RestoreError::Corrupt => f.write_str("snapshot failed checksum validation"),
            RestoreError::Io(e) => write!(f, "i/o error: {}", e),
        }
    }
}

impl std::error::Error for RestoreError {}

/// Future on a restored snapshot's bytes, as returned by
/// [`CheckpointModule::restore`] and [`CheckpointModule::restore_latest`].
pub type RestoreFuture = Future<Result<Vec<u8>, RestoreError>>;

/// Future on the newest intact snapshot — `(version, bytes)` — as returned
/// by [`CheckpointModule::restore_latest`].
pub type RestoreLatestFuture = Future<Result<(u64, Vec<u8>), RestoreError>>;

fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Validates one on-disk snapshot image (`[len u64][fnv1a u64][payload]`)
/// and returns the payload. Every way a file can be damaged — truncation
/// below the header, truncated or padded payload, flipped payload or
/// header bytes — lands in `Corrupt`, never a panic.
fn validate_file(file: &[u8]) -> Result<Vec<u8>, RestoreError> {
    if file.len() < 16 {
        return Err(RestoreError::Corrupt);
    }
    let len = u64::from_le_bytes(file[..8].try_into().unwrap()) as usize;
    let sum = u64::from_le_bytes(file[8..16].try_into().unwrap());
    let data = &file[16..];
    if data.len() != len || fnv1a(data) != sum {
        return Err(RestoreError::Corrupt);
    }
    Ok(data.to_vec())
}

impl CheckpointModule {
    /// Creates a module writing snapshots under `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Arc<CheckpointModule> {
        Self::with_model(dir, DiskModel::default())
    }

    /// Creates a module with an explicit storage model.
    pub fn with_model(dir: impl Into<PathBuf>, model: DiskModel) -> Arc<CheckpointModule> {
        Arc::new(CheckpointModule {
            dir: dir.into(),
            model,
            state: RwLock::new(None),
        })
    }

    fn with_state<R>(&self, f: impl FnOnce(&ModuleState) -> R) -> R {
        let guard = self.state.read();
        let st = guard
            .as_ref()
            .expect("checkpoint module used before runtime initialization");
        f(st)
    }

    fn path(&self, name: &str, version: u64) -> PathBuf {
        self.dir.join(format!("{}.v{}.ckpt", name, version))
    }

    /// Asynchronously writes snapshot `version` of `name`. The returned
    /// future is satisfied when the snapshot is durably on disk; the caller
    /// keeps computing meanwhile (the §V overlap).
    pub fn checkpoint(&self, name: &str, version: u64, data: Vec<u8>) -> Future<()> {
        let path = self.path(name, version);
        let tmp = path.with_extension("tmp");
        let model = self.model;
        self.with_state(|st| {
            let _t = st.rt.module_stats().time("checkpoint");
            st.rt.spawn_future_at(st.place, move || {
                // Charge modeled write time (makes blocking-vs-overlap
                // measurable even on fast tmpfs).
                std::thread::sleep(
                    model.overhead
                        + Duration::from_secs_f64(data.len() as f64 / model.write_bandwidth),
                );
                let mut file = Vec::with_capacity(data.len() + 16);
                file.extend_from_slice(&(data.len() as u64).to_le_bytes());
                file.extend_from_slice(&fnv1a(&data).to_le_bytes());
                file.extend_from_slice(&data);
                std::fs::create_dir_all(tmp.parent().unwrap())
                    .expect("cannot create checkpoint directory");
                std::fs::write(&tmp, &file).expect("checkpoint write failed");
                std::fs::rename(&tmp, &path).expect("checkpoint rename failed");
            })
        })
    }

    /// Asynchronously restores snapshot `version` of `name`.
    pub fn restore(&self, name: &str, version: u64) -> RestoreFuture {
        let path = self.path(name, version);
        self.with_state(|st| {
            st.rt.spawn_future_at(st.place, move || {
                let file = match std::fs::read(&path) {
                    Ok(f) => f,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                        return Err(RestoreError::NotFound)
                    }
                    Err(e) => return Err(RestoreError::Io(e.to_string())),
                };
                validate_file(&file)
            })
        })
    }

    /// Restart support: restores the most recent *valid* snapshot of
    /// `name`. Returns `None` when no snapshot file exists at all (cold
    /// start). Otherwise the future resolves to the newest version that
    /// passes checksum validation together with its payload — a damaged
    /// (truncated, bit-flipped) newest snapshot is skipped with a warning
    /// and the scan falls back to the next-older version. Only when every
    /// stored version is damaged does the future resolve to
    /// `Err(CheckpointError::Corrupt)`.
    pub fn restore_latest(&self, name: &str) -> Option<RestoreLatestFuture> {
        let mut versions = self.versions(name);
        if versions.is_empty() {
            return None;
        }
        versions.reverse(); // newest first
        let paths: Vec<(u64, PathBuf)> =
            versions.iter().map(|&v| (v, self.path(name, v))).collect();
        Some(self.with_state(|st| {
            st.rt.spawn_future_at(st.place, move || {
                let mut last_err = RestoreError::NotFound;
                for (version, path) in paths {
                    let file = match std::fs::read(&path) {
                        Ok(f) => f,
                        Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                        Err(e) => {
                            last_err = RestoreError::Io(e.to_string());
                            continue;
                        }
                    };
                    match validate_file(&file) {
                        Ok(data) => return Ok((version, data)),
                        Err(e) => {
                            eprintln!(
                                "[hiper-checkpoint] snapshot {} failed validation ({}); \
                                 falling back to an older version",
                                path.display(),
                                e
                            );
                            last_err = e;
                        }
                    }
                }
                Err(last_err)
            })
        }))
    }

    /// Latest available version of `name`, if any (synchronous directory
    /// scan; existence only — the file may still fail validation).
    pub fn latest_version(&self, name: &str) -> Option<u64> {
        self.versions(name).last().copied()
    }

    /// Every stored version of `name`, ascending (synchronous directory
    /// scan). Unparseable or foreign filenames are ignored.
    pub fn versions(&self, name: &str) -> Vec<u64> {
        let prefix = format!("{}.v", name);
        let mut versions = Vec::new();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(_) => return versions,
        };
        for entry in entries.flatten() {
            let fname = match entry.file_name().into_string() {
                Ok(f) => f,
                Err(_) => continue,
            };
            if let Some(rest) = fname.strip_prefix(&prefix) {
                if let Some(v) = rest
                    .strip_suffix(".ckpt")
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    versions.push(v);
                }
            }
        }
        versions.sort_unstable();
        versions
    }
}

impl SchedulerModule for CheckpointModule {
    fn name(&self) -> &'static str {
        "checkpoint"
    }

    fn initialize(&self, rt: &Runtime) -> Result<(), ModuleError> {
        // Platform assertion: a storage place must exist.
        let place = rt
            .place_of_kind(&PlaceKind::LocalDisk)
            .or_else(|| rt.place_of_kind(&PlaceKind::Nvm))
            .ok_or_else(|| {
                ModuleError::new(
                    "checkpoint",
                    "platform model contains no LocalDisk or Nvm place",
                )
            })?;
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| ModuleError::new("checkpoint", e.to_string()))?;
        *self.state.write() = Some(ModuleState {
            rt: rt.clone(),
            place,
        });
        Ok(())
    }

    fn finalize(&self, _rt: &Runtime) {
        *self.state.write() = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiper_platform::autogen;
    use hiper_runtime::RuntimeBuilder;

    fn disk_platform(workers: usize) -> hiper_platform::PlatformConfig {
        autogen::figure2(workers) // has nvm + disk places
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("hiper_ckpt_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fast_model() -> DiskModel {
        DiskModel {
            write_bandwidth: 1e12,
            overhead: Duration::ZERO,
        }
    }

    #[test]
    fn checkpoint_and_restore_roundtrip() {
        let ckpt = CheckpointModule::with_model(tmpdir("roundtrip"), fast_model());
        let rt = RuntimeBuilder::new(disk_platform(1))
            .module(Arc::clone(&ckpt) as Arc<dyn SchedulerModule>)
            .build()
            .unwrap();
        let c = Arc::clone(&ckpt);
        rt.block_on(move || {
            let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
            c.checkpoint("state", 1, data.clone()).wait();
            let restored = c.restore("state", 1).get().unwrap();
            assert_eq!(restored, data);
        });
        rt.shutdown();
    }

    #[test]
    fn missing_snapshot_is_not_found() {
        let ckpt = CheckpointModule::with_model(tmpdir("missing"), fast_model());
        let rt = RuntimeBuilder::new(disk_platform(1))
            .module(Arc::clone(&ckpt) as Arc<dyn SchedulerModule>)
            .build()
            .unwrap();
        let c = Arc::clone(&ckpt);
        rt.block_on(move || {
            assert_eq!(c.restore("nope", 1).get(), Err(RestoreError::NotFound));
        });
        rt.shutdown();
    }

    #[test]
    fn corruption_is_detected() {
        let dir = tmpdir("corrupt");
        let ckpt = CheckpointModule::with_model(dir.clone(), fast_model());
        let rt = RuntimeBuilder::new(disk_platform(1))
            .module(Arc::clone(&ckpt) as Arc<dyn SchedulerModule>)
            .build()
            .unwrap();
        let c = Arc::clone(&ckpt);
        rt.block_on(move || {
            c.checkpoint("state", 3, vec![1, 2, 3, 4]).wait();
            // Flip a payload byte on disk.
            let path = dir.join("state.v3.ckpt");
            let mut bytes = std::fs::read(&path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
            assert_eq!(c.restore("state", 3).get(), Err(RestoreError::Corrupt));
        });
        rt.shutdown();
    }

    #[test]
    fn versions_are_tracked() {
        let ckpt = CheckpointModule::with_model(tmpdir("versions"), fast_model());
        let rt = RuntimeBuilder::new(disk_platform(1))
            .module(Arc::clone(&ckpt) as Arc<dyn SchedulerModule>)
            .build()
            .unwrap();
        let c = Arc::clone(&ckpt);
        rt.block_on(move || {
            assert_eq!(c.latest_version("s"), None);
            c.checkpoint("s", 1, vec![1]).wait();
            c.checkpoint("s", 2, vec![2]).wait();
            c.checkpoint("s", 10, vec![3]).wait();
            assert_eq!(c.latest_version("s"), Some(10));
            assert_eq!(c.restore("s", 2).get().unwrap(), vec![2]);
        });
        rt.shutdown();
    }

    #[test]
    fn restart_resumes_from_latest_snapshot() {
        // Simulated crash/restart: a first "process" checkpoints progress,
        // dies, and a second one picks up from the newest snapshot.
        let dir = tmpdir("restart");
        {
            let ckpt = CheckpointModule::with_model(dir.clone(), fast_model());
            let rt = RuntimeBuilder::new(disk_platform(1))
                .module(Arc::clone(&ckpt) as Arc<dyn SchedulerModule>)
                .build()
                .unwrap();
            let c = Arc::clone(&ckpt);
            rt.block_on(move || {
                c.checkpoint("iter", 1, vec![1, 0]).wait();
                c.checkpoint("iter", 2, vec![2, 0]).wait();
                c.checkpoint("iter", 7, vec![7, 0]).wait();
            });
            rt.shutdown(); // the "crash"
        }
        {
            let ckpt = CheckpointModule::with_model(dir, fast_model());
            let rt = RuntimeBuilder::new(disk_platform(1))
                .module(Arc::clone(&ckpt) as Arc<dyn SchedulerModule>)
                .build()
                .unwrap();
            let c = Arc::clone(&ckpt);
            rt.block_on(move || {
                assert!(c.restore_latest("nothing").is_none(), "cold start");
                let fut = c.restore_latest("iter").expect("snapshot exists");
                let (version, data) = fut.get().unwrap();
                assert_eq!(version, 7);
                assert_eq!(data, vec![7, 0]);
            });
            rt.shutdown();
        }
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous_version() {
        let dir = tmpdir("fallback");
        let ckpt = CheckpointModule::with_model(dir.clone(), fast_model());
        let rt = RuntimeBuilder::new(disk_platform(1))
            .module(Arc::clone(&ckpt) as Arc<dyn SchedulerModule>)
            .build()
            .unwrap();
        let c = Arc::clone(&ckpt);
        rt.block_on(move || {
            c.checkpoint("s", 1, vec![10, 11]).wait();
            c.checkpoint("s", 2, vec![20, 21]).wait();
            c.checkpoint("s", 3, vec![30, 31]).wait();
            // Truncate the newest snapshot mid-payload.
            let p3 = dir.join("s.v3.ckpt");
            let bytes = std::fs::read(&p3).unwrap();
            std::fs::write(&p3, &bytes[..bytes.len() - 1]).unwrap();
            let (version, data) = c.restore_latest("s").unwrap().get().unwrap();
            assert_eq!((version, data), (2, vec![20, 21]));
            // Damage v2 as well (bit-flip): falls all the way back to v1.
            let p2 = dir.join("s.v2.ckpt");
            let mut bytes = std::fs::read(&p2).unwrap();
            bytes[16] ^= 0x01;
            std::fs::write(&p2, &bytes).unwrap();
            let (version, data) = c.restore_latest("s").unwrap().get().unwrap();
            assert_eq!((version, data), (1, vec![10, 11]));
            // Every version damaged: typed Corrupt, not a panic.
            let p1 = dir.join("s.v1.ckpt");
            std::fs::write(&p1, b"short").unwrap();
            assert_eq!(
                c.restore_latest("s").unwrap().get(),
                Err(CheckpointError::Corrupt)
            );
        });
        rt.shutdown();
    }

    #[test]
    fn checkpoint_overlaps_with_compute() {
        // Slow disk: 50ms write. Overlapped with 40ms of compute, the total
        // must be well under the 90ms serial sum.
        let ckpt = CheckpointModule::with_model(
            tmpdir("overlap"),
            DiskModel {
                write_bandwidth: 1e6, // 50KB -> 50ms
                overhead: Duration::ZERO,
            },
        );
        let rt = RuntimeBuilder::new(disk_platform(2))
            .module(Arc::clone(&ckpt) as Arc<dyn SchedulerModule>)
            .build()
            .unwrap();
        let c = Arc::clone(&ckpt);
        let elapsed = rt.block_on(move || {
            let start = std::time::Instant::now();
            let fut = c.checkpoint("big", 1, vec![0u8; 50_000]);
            std::thread::sleep(Duration::from_millis(40)); // app compute
            fut.wait();
            start.elapsed()
        });
        assert!(
            elapsed < Duration::from_millis(85),
            "no overlap: {:?}",
            elapsed
        );
        rt.shutdown();
    }

    #[test]
    fn requires_storage_place() {
        let ckpt = CheckpointModule::with_model(tmpdir("noplace"), fast_model());
        let result = RuntimeBuilder::new(autogen::smp(1))
            .module(ckpt as Arc<dyn SchedulerModule>)
            .build();
        assert!(result.is_err());
    }
}
