//! Recovery state-machine tests (DESIGN.md §2.13): quiesced endpoints hold
//! in-flight sends without burning retry budget, a double-kill of the same
//! rank (the second during replay) still converges, and killing a rank that
//! never checkpointed degrades to a terminal `Unreachable` instead of
//! hanging.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use hiper_netsim::{
    Channel, Cluster, FaultPlan, KillSpec, NetConfig, ReliableTransport, RetryConfig, SpmdBuilder,
    SupervisedCtx, SupervisorHarness,
};
use hiper_runtime::supervisor::{RecoveryError, RecoveryPhase};
use hiper_runtime::SchedulerModule;
use parking_lot::Mutex;

/// A quiesced peer neither receives retransmits nor burns retry budget:
/// frames sent during the hold arrive intact after release, even though the
/// hold outlives what the retry budget would normally tolerate.
#[test]
fn quiesce_holds_in_flight_sends_without_burning_budget() {
    let plan = FaultPlan::seeded(11).arm();
    let cluster = Cluster::start_with_faults(2, NetConfig::instant(), Some(plan));
    // Tiny budget: 4 attempts x <=4ms. A 200ms hold would exhaust it many
    // times over if quiescing merely delayed retransmits.
    let cfg = RetryConfig {
        timeout: Duration::from_millis(1),
        backoff: 2.0,
        max_timeout: Duration::from_millis(4),
        max_attempts: 4,
    };
    let sender = ReliableTransport::new(cluster.transport(0), "test", cfg);
    let receiver = ReliableTransport::new(cluster.transport(1), "test", cfg);
    sender.register_handler(Channel::APP, Box::new(|_| {}));
    let seen = Arc::new(Mutex::new(Vec::new()));
    let seen2 = Arc::clone(&seen);
    receiver.register_handler(Channel::APP, Box::new(move |m| seen2.lock().push(m.tag)));

    sender.quiesce_peer(1, true);
    for tag in 0..20u64 {
        sender.send(
            1,
            Channel::APP,
            tag,
            Bytes::from(tag.to_le_bytes().to_vec()),
        );
    }
    std::thread::sleep(Duration::from_millis(200));
    assert!(
        seen.lock().is_empty(),
        "a quiesced endpoint must not touch the wire"
    );
    assert!(
        sender.health().is_ok(),
        "the hold must not burn the retry budget"
    );

    sender.quiesce_peer(1, false);
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline && seen.lock().len() < 20 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let got = seen.lock().clone();
    assert_eq!(
        got,
        (0..20).collect::<Vec<_>>(),
        "release delivers in order"
    );
    assert!(sender.health().is_ok());
    cluster.stop();
}

/// Shared wiring for the supervised SPMD tests: rank 0 runs a checkpointed
/// iterative sum under a kill schedule while rank 1 streams reliable tagged
/// frames at it; returns (rank0 sum, rank0 received tags, recovery count).
fn supervised_sum_run(
    dir: std::path::PathBuf,
    kill: Option<KillSpec>,
    n_msgs: u64,
) -> (u64, Vec<u64>, u32) {
    let _ = std::fs::remove_dir_all(&dir);
    let harness = SupervisorHarness::new(2, kill, 3);
    let h_main = Arc::clone(&harness);
    let done = Arc::new(AtomicBool::new(false));

    let results = SpmdBuilder::new(2)
        .faults(FaultPlan::seeded(99).arm())
        .platform(|_| hiper_platform::autogen::figure2(2))
        .run(
            move |rank, transport| {
                let ckpt = hiper_checkpoint::CheckpointModule::new(dir.join(format!("r{}", rank)));
                let endpoint = ReliableTransport::new(transport, "test", RetryConfig::default());
                let received: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
                let sink = Arc::clone(&received);
                endpoint.register_handler(Channel::APP, Box::new(move |m| sink.lock().push(m.tag)));
                (
                    vec![Arc::clone(&ckpt) as Arc<dyn SchedulerModule>],
                    (ckpt, endpoint, received),
                )
            },
            move |env, (ckpt, endpoint, received)| {
                h_main.register(
                    env.rank,
                    env.runtime.clone(),
                    Arc::clone(&endpoint),
                    env.transport.engine(),
                );
                if env.rank == 1 {
                    // Peer: stream tagged frames at the victim throughout
                    // its (possibly replayed) run.
                    for tag in 0..n_msgs {
                        endpoint.send(0, Channel::APP, tag, Bytes::from(vec![0u8; 8]));
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    while !done.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    return (0, Vec::new(), 0);
                }

                let ctx = SupervisedCtx::new(Arc::clone(&h_main), ckpt, env.rank);
                // Checkpointed state: (next iteration, running sum, tags
                // received so far). The handler feeds `received` from the
                // engine thread; the atomic checkpoint cut (pause + capture)
                // keeps it consistent with the transport watermarks.
                let state = Arc::new(Mutex::new((0u64, 0u64)));
                let st = Arc::clone(&state);
                let rx = Arc::clone(&received);
                let sum = ctx
                    .run_supervised(
                        move |bytes| {
                            let next = u64::from_le_bytes(bytes[..8].try_into().unwrap());
                            let sum = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
                            *st.lock() = (next, sum);
                            let tags: Vec<u64> = bytes[16..]
                                .chunks_exact(8)
                                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                                .collect();
                            *rx.lock() = tags;
                        },
                        |_attempt| {
                            loop {
                                let (next, _) = *state.lock();
                                if next >= 5 {
                                    break;
                                }
                                {
                                    let mut s = state.lock();
                                    s.1 += s.0;
                                    s.0 += 1;
                                }
                                ctx.checkpoint(|| {
                                    let (next, sum) = *state.lock();
                                    let mut out = Vec::new();
                                    out.extend_from_slice(&next.to_le_bytes());
                                    out.extend_from_slice(&sum.to_le_bytes());
                                    for t in received.lock().iter() {
                                        out.extend_from_slice(&t.to_le_bytes());
                                    }
                                    out
                                });
                                ctx.crash_point();
                            }
                            state.lock().1
                        },
                    )
                    .expect("recovery must succeed");
                // Wait for the peer's full stream (retransmits included).
                let deadline = Instant::now() + Duration::from_secs(30);
                while Instant::now() < deadline && (received.lock().len() as u64) < n_msgs {
                    std::thread::sleep(Duration::from_millis(5));
                }
                done.store(true, Ordering::Release);
                let tags = received.lock().clone();
                let attempts = h_main.supervisor().attempts(0);
                (sum, tags, attempts)
            },
        );
    results.into_iter().next().unwrap()
}

/// Double-kill of the same rank: the first at crossing 3 and the second at
/// crossing 4 — the first crash point the *replayed* run reaches. Both
/// recoveries must succeed, the checkpointed sum must be bit-identical to a
/// fault-free run, and the peer's stream must still arrive exactly once in
/// order (epoch bumps discard pre-crash duplicates, retention logs replay
/// the rolled-back suffix).
#[test]
fn double_kill_during_replay_converges() {
    let n_msgs = 30u64;
    let kill = KillSpec {
        rank: 0,
        at_points: vec![3, 4],
    };
    let dir = std::env::temp_dir().join("hiper_recovery_double_kill");
    let (sum, tags, attempts) = supervised_sum_run(dir, Some(kill), n_msgs);
    assert_eq!(sum, 10, "sum 0..5 must match the fault-free value");
    assert_eq!(attempts, 2, "two kills => two recovery attempts");
    assert_eq!(
        tags,
        (0..n_msgs).collect::<Vec<_>>(),
        "peer stream must survive both recoveries exactly once, in order"
    );
}

/// Baseline sanity: the same supervised workload with no kill schedule
/// produces the same sum and stream with zero recoveries.
#[test]
fn supervised_run_without_faults_is_plain() {
    let n_msgs = 30u64;
    let dir = std::env::temp_dir().join("hiper_recovery_no_kill");
    let (sum, tags, attempts) = supervised_sum_run(dir, None, n_msgs);
    assert_eq!(sum, 10);
    assert_eq!(attempts, 0, "no kills => no recoveries");
    assert_eq!(tags, (0..n_msgs).collect::<Vec<_>>());
}

/// Killing a rank that never checkpointed must degrade, not hang: the
/// recovery fails terminally (`NoCheckpoint`, phase `Failed`), the rank
/// stays severed, and the peer's retry budget exhausts into the typed
/// `Unreachable` error.
#[test]
fn kill_of_never_checkpointed_rank_degrades_to_unreachable() {
    let dir = std::env::temp_dir().join("hiper_recovery_no_ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    let kill = KillSpec {
        rank: 0,
        at_points: vec![1],
    };
    let harness = SupervisorHarness::new(2, Some(kill), 3);
    let h_main = Arc::clone(&harness);
    let dead = Arc::new(AtomicBool::new(false));

    let outcomes = SpmdBuilder::new(2)
        .faults(FaultPlan::seeded(5).arm())
        .platform(|_| hiper_platform::autogen::figure2(2))
        .run(
            move |rank, transport| {
                let ckpt = hiper_checkpoint::CheckpointModule::new(dir.join(format!("r{}", rank)));
                // Exhaust fast: the degradation path is the product here.
                let cfg = RetryConfig {
                    timeout: Duration::from_millis(1),
                    backoff: 2.0,
                    max_timeout: Duration::from_millis(4),
                    max_attempts: 4,
                };
                let endpoint = ReliableTransport::new(transport, "test", cfg);
                endpoint.register_handler(Channel::APP, Box::new(|_| {}));
                (
                    vec![Arc::clone(&ckpt) as Arc<dyn SchedulerModule>],
                    (ckpt, endpoint),
                )
            },
            move |env, (ckpt, endpoint)| {
                h_main.register(
                    env.rank,
                    env.runtime.clone(),
                    Arc::clone(&endpoint),
                    env.transport.engine(),
                );
                if env.rank == 1 {
                    // Wait out the victim's (failed) recovery, then poll
                    // health toward the corpse. No collectives: nothing
                    // here may block on rank 0.
                    while !dead.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    endpoint.send(0, Channel::APP, 7, Bytes::from_static(b"anyone home?"));
                    let deadline = Instant::now() + Duration::from_secs(10);
                    while Instant::now() < deadline && endpoint.health().is_ok() {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    let err = endpoint.health().expect_err("budget must exhaust");
                    return format!("peer: {}", err);
                }
                // Victim: dies at its first crossing having never
                // checkpointed anything.
                let ctx = SupervisedCtx::new(Arc::clone(&h_main), ckpt, env.rank);
                let out = ctx.run_supervised(
                    |_| unreachable!("nothing to restore"),
                    |_attempt| {
                        ctx.crash_point();
                        42u64
                    },
                );
                let err = out.expect_err("no snapshot => recovery must fail");
                assert!(matches!(err, RecoveryError::NoCheckpoint), "got {:?}", err);
                assert_eq!(h_main.supervisor().phase(0), RecoveryPhase::Failed);
                dead.store(true, Ordering::Release);
                format!("victim: {}", err)
            },
        );
    assert!(outcomes[0].contains("no checkpoint"), "{}", outcomes[0]);
    assert!(
        outcomes[1].contains("unreachable"),
        "peer must see the typed error, got: {}",
        outcomes[1]
    );
}

/// The seeded kill schedule is a pure function of the seed.
#[test]
fn kill_spec_is_deterministic_in_the_seed() {
    let a = KillSpec::seeded(0xBEEF, 4, 10);
    let b = KillSpec::seeded(0xBEEF, 4, 10);
    assert_eq!(a.rank, b.rank);
    assert_eq!(a.at_points, b.at_points);
    assert!((a.rank) < 4);
    assert!(a.at_points[0] >= 1 && a.at_points[0] <= 10);
    let c = KillSpec::seeded(0xBEE0, 4, 10);
    assert!(
        c.rank != a.rank || c.at_points != a.at_points,
        "different seeds should (here) give a different schedule"
    );
}
