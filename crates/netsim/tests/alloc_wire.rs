//! Allocation-budget regression test for the zero-copy reliable send path
//! (DESIGN.md §2.15).
//!
//! A byte-counting `#[global_allocator]` (test-binary-only; integration
//! tests are separate binaries) pins the property the frame rope bought:
//! a steady-state reliable DATA send ships the payload *by reference* —
//! the wire message, the unacked retention map, and any retransmit all
//! share the sender's `Bytes` buffer. Framing may allocate O(1) small
//! header buffers per message, but never a payload-sized copy.
//!
//! The test sends a burst of large payloads through an *armed* (but
//! fault-free) plan, so the full reliable machinery runs — framing,
//! sequencing, retention, acks — and asserts the allocated-byte delta is
//! orders of magnitude below one-copy-per-message.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use bytes::Bytes;
use hiper_netsim::{Channel, Cluster, FaultPlan, NetConfig, ReliableTransport, RetryConfig};

static BYTES: AtomicU64 = AtomicU64::new(0);

struct CountingBytes;

// SAFETY: defers entirely to `System`; the counter is a relaxed side effect.
unsafe impl GlobalAlloc for CountingBytes {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTING: CountingBytes = CountingBytes;

fn allocated_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

#[test]
fn reliable_send_makes_no_payload_copies() {
    const PAYLOAD: usize = 64 * 1024;
    const WARMUP: u64 = 20;
    const N: u64 = 200;

    // Armed plan with no faults configured: the reliable layer frames,
    // sequences, retains, and acks exactly as in a chaos run, but nothing
    // is dropped — so retransmit noise can't blur the measurement.
    let plan = FaultPlan::seeded(7).arm();
    let cluster = Cluster::start_with_faults(2, NetConfig::instant(), Some(plan));
    let sender = ReliableTransport::new(cluster.transport(0), "alloc", RetryConfig::default());
    let receiver = ReliableTransport::new(cluster.transport(1), "alloc", RetryConfig::default());
    assert!(sender.enabled(), "plan must arm the reliable machinery");

    sender.register_handler(Channel::APP, Box::new(|_| {}));
    static DELIVERED: AtomicUsize = AtomicUsize::new(0);
    receiver.register_handler(
        Channel::APP,
        Box::new(move |m| {
            assert_eq!(m.payload.len(), PAYLOAD);
            DELIVERED.fetch_add(1, Ordering::SeqCst);
        }),
    );

    // One payload buffer for the whole run: every send clones the `Bytes`
    // handle (a refcount bump), so any payload-sized allocation after the
    // warmup is a copy the zero-copy path should not have made.
    let payload = Bytes::from(vec![0xabu8; PAYLOAD]);

    let send_burst = |n: u64, base: u64| {
        for i in 0..n {
            sender.send(1, Channel::APP, base + i, payload.clone());
        }
        let deadline = Instant::now() + Duration::from_secs(20);
        while Instant::now() < deadline && (DELIVERED.load(Ordering::SeqCst) as u64) < base + n {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(DELIVERED.load(Ordering::SeqCst) as u64, base + n);
        // Drain acks too, so retention-map churn lands inside the window.
        assert!(sender.flush(Duration::from_secs(10)), "acks must drain");
    };

    // Warmup: retry-thread spawn, timing-wheel slot growth, map nodes,
    // lazy statics — the one-time costs the steady state should not pay.
    send_burst(WARMUP, 0);

    let before = allocated_bytes();
    send_burst(N, WARMUP);
    let delta = allocated_bytes() - before;

    // One copy per message would be ≥ N * 64 KiB = 12.8 MiB. The real
    // budget is header Bytes (~26 B), map nodes, and queue slots: comfort
    // margin of ~5 KiB per message still proves the payload went by
    // reference.
    let budget = N * 5 * 1024;
    assert!(
        delta < budget,
        "steady-state burst of {} x {}KiB sends allocated {} bytes (budget {}): \
         the payload is being copied on the send path",
        N,
        PAYLOAD / 1024,
        delta,
        budget
    );

    let stats = sender.stats();
    assert!(
        stats.payload_copies_avoided >= N,
        "every DATA frame should ship by reference: {:?}",
        stats
    );
    cluster.stop();
}
