//! Chaos tests: the fault-injection plan must be replayable from its seed,
//! and the reliable transport must restore exactly-once in-order delivery
//! on top of it (DESIGN.md §2.9).

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use hiper_netsim::{
    Channel, Cluster, CoalesceConfig, DeliveryEngine, FaultPlan, Message, NetConfig,
    ReliableTransport, RetryConfig,
};
use parking_lot::Mutex;
use proptest::prelude::*;

fn msg(src: usize, dst: usize, tag: u64, payload: &[u8]) -> Message {
    Message::new(src, dst, Channel::APP, tag, Bytes::copy_from_slice(payload))
}

/// Runs one fixed send schedule against an engine armed with `plan`;
/// returns the delivered tag sequence plus (dropped, duplicated) counters.
fn run_schedule(plan: FaultPlan) -> (Vec<u64>, u64, u64) {
    let engine = DeliveryEngine::start_with_faults(2, NetConfig::instant(), Some(plan));
    let seen = Arc::new(Mutex::new(Vec::new()));
    let seen2 = Arc::clone(&seen);
    engine.register_handler(1, Channel::APP, Box::new(move |m| seen2.lock().push(m.tag)));
    for tag in 0..400u64 {
        engine.send(msg(0, 1, tag, b"x"));
    }
    // Drain: instant network, so a short grace period suffices.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut last = usize::MAX;
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
        let now = seen.lock().len();
        if now == last {
            break;
        }
        last = now;
    }
    let snap = engine.stats.snapshot();
    engine.stop();
    let tags = seen.lock().clone();
    (tags, snap.dropped, snap.duplicated)
}

#[test]
fn same_seed_gives_identical_fault_schedule() {
    let plan = || FaultPlan::seeded(0xFEED).drop_p(0.2).dup_p(0.1);
    let (tags_a, dropped_a, dup_a) = run_schedule(plan());
    let (tags_b, dropped_b, dup_b) = run_schedule(plan());
    assert!(dropped_a > 0, "20% of 400 sends must drop some");
    assert!(dup_a > 0, "10% of 400 sends must duplicate some");
    assert_eq!(tags_a, tags_b, "delivery schedule must be replayable");
    assert_eq!((dropped_a, dup_a), (dropped_b, dup_b));
}

#[test]
fn different_seeds_give_different_schedules() {
    let (tags_a, ..) = run_schedule(FaultPlan::seeded(1).drop_p(0.2));
    let (tags_b, ..) = run_schedule(FaultPlan::seeded(2).drop_p(0.2));
    assert_ne!(tags_a, tags_b, "400 sends at 20% drop: seeds must diverge");
}

#[test]
fn handler_panics_are_counted_and_surfaced() {
    let engine = DeliveryEngine::start(2, NetConfig::instant());
    engine.register_handler(
        1,
        Channel::APP,
        Box::new(|m| {
            if m.tag % 2 == 0 {
                panic!("handler fault injection");
            }
        }),
    );
    for tag in 0..10u64 {
        engine.send(msg(0, 1, tag, b"x"));
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline && engine.stats.snapshot().handler_panics < 5 {
        std::thread::sleep(Duration::from_millis(10));
    }
    let snap = engine.stats.snapshot();
    engine.stop();
    assert_eq!(snap.handler_panics, 5, "every even tag panics");
    assert_eq!(snap.dropped, 5, "a panicked delivery is a lost message");
}

/// Tagged payloads observed by a receiving handler, in delivery order.
type Observed = Vec<(u64, Vec<u8>)>;

/// Reliable pt2pt between two ranks under `plan`: sends `n` tagged payloads
/// and returns what rank 1's handler observed.
fn reliable_exchange(plan: FaultPlan, cfg: RetryConfig, n: u64) -> (Observed, u64) {
    let cluster = Cluster::start_with_faults(2, NetConfig::instant(), Some(plan));
    let sender = ReliableTransport::new(cluster.transport(0), "test", cfg);
    let receiver = ReliableTransport::new(cluster.transport(1), "test", cfg);
    // Both endpoints of a reliable channel must register (acks flow back to
    // the sender's handler) — exactly what the MPI/SHMEM modules do.
    sender.register_handler(Channel::APP, Box::new(|_| {}));
    let seen: Arc<Mutex<Observed>> = Arc::new(Mutex::new(Vec::new()));
    let seen2 = Arc::clone(&seen);
    receiver.register_handler(
        Channel::APP,
        Box::new(move |m| seen2.lock().push((m.tag, m.payload.to_vec()))),
    );
    for i in 0..n {
        sender.send(1, Channel::APP, i, Bytes::from(i.to_le_bytes().to_vec()));
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline && (seen.lock().len() as u64) < n {
        std::thread::sleep(Duration::from_millis(5));
    }
    let retries = sender.retry_count();
    cluster.stop();
    let got = seen.lock().clone();
    (got, retries)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs a full lossy exchange with retries
        .. ProptestConfig::default()
    })]

    /// Exactly-once, in-order delivery survives drop rates up to 30% (on
    /// data *and* ack frames alike).
    #[test]
    fn reliable_pt2pt_delivers_exactly_once(
        seed in any::<u64>(),
        drop_p in 0.0f64..0.30,
    ) {
        let n = 60u64;
        let (got, _retries) = reliable_exchange(
            FaultPlan::seeded(seed).drop_p(drop_p),
            RetryConfig::default(),
            n,
        );
        prop_assert_eq!(got.len() as u64, n, "every payload must arrive");
        for (i, (tag, payload)) in got.iter().enumerate() {
            prop_assert_eq!(*tag, i as u64, "order must be restored");
            prop_assert_eq!(payload.as_slice(), &(i as u64).to_le_bytes());
        }
    }

    /// Jumbo coalescing must preserve per-channel FIFO and exactly-once
    /// delivery under the full fault grid (drop + dup + reorder): staged
    /// frames ride shared carriers, carriers get dropped/duplicated/
    /// reordered whole, and the seq layer must undo all of it.
    #[test]
    fn coalesced_framing_survives_fault_grid(
        seed in any::<u64>(),
        drop_p in 0.0f64..0.25,
        dup_p in 0.0f64..0.25,
        reorder_p in 0.0f64..0.25,
    ) {
        let n = 80u64;
        let plan = FaultPlan::seeded(seed)
            .drop_p(drop_p)
            .dup_p(dup_p)
            .reorder_p(reorder_p);
        let cluster = Cluster::start_with_faults(2, NetConfig::instant(), Some(plan));
        let sender = ReliableTransport::new(cluster.transport(0), "test", RetryConfig::default());
        let receiver = ReliableTransport::new(cluster.transport(1), "test", RetryConfig::default());
        // Aggressive staging so most frames travel inside jumbos.
        sender.set_coalesce(CoalesceConfig {
            enabled: true,
            max_payload: 512,
            flush_bytes: 1 << 16,
            flush_frames: 8,
            delay: Duration::from_micros(50),
        });
        sender.register_handler(Channel::APP, Box::new(|_| {}));
        let seen: Arc<Mutex<Observed>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        receiver.register_handler(
            Channel::APP,
            Box::new(move |m| seen2.lock().push((m.tag, m.payload.to_vec()))),
        );
        for i in 0..n {
            sender.send(1, Channel::APP, i, Bytes::from(i.to_le_bytes().to_vec()));
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        while Instant::now() < deadline && (seen.lock().len() as u64) < n {
            std::thread::sleep(Duration::from_millis(5));
        }
        let coalesced = sender.frames_coalesced.load(std::sync::atomic::Ordering::Relaxed);
        cluster.stop();
        let got = seen.lock().clone();
        prop_assert_eq!(got.len() as u64, n, "exactly-once: every payload, no extras");
        for (i, (tag, payload)) in got.iter().enumerate() {
            prop_assert_eq!(*tag, i as u64, "per-channel FIFO must survive repacking");
            prop_assert_eq!(payload.as_slice(), &(i as u64).to_le_bytes());
        }
        // The burst is back-to-back sends: staging must actually engage.
        prop_assert!(coalesced > 0, "no frames were coalesced — Nagle path inert");
    }
}

#[test]
fn transient_kill_is_ridden_out_by_retries() {
    // Rank 1 is down for its first 100ms; the default retry budget spans
    // the outage, so everything still arrives exactly once.
    let plan = FaultPlan::seeded(3).kill(1, Duration::ZERO, Some(Duration::from_millis(100)));
    let (got, retries) = reliable_exchange(plan, RetryConfig::default(), 20);
    assert_eq!(got.len(), 20);
    assert!(
        got.iter().enumerate().all(|(i, (tag, _))| *tag == i as u64),
        "order must be restored: {:?}",
        got.iter().map(|(t, _)| *t).collect::<Vec<_>>()
    );
    assert!(
        retries > 0,
        "an outage without retransmissions is a miracle"
    );
}

#[test]
fn permanently_killed_rank_becomes_unreachable() {
    let plan = FaultPlan::seeded(4).kill(1, Duration::ZERO, None);
    let cfg = RetryConfig {
        timeout: Duration::from_millis(1),
        backoff: 2.0,
        max_timeout: Duration::from_millis(4),
        max_attempts: 4,
    };
    let cluster = Cluster::start_with_faults(2, NetConfig::instant(), Some(plan));
    let sender = ReliableTransport::new(cluster.transport(0), "test", cfg);
    sender.register_handler(Channel::APP, Box::new(|_| {}));
    assert!(sender.health().is_ok());
    sender.send(1, Channel::APP, 0, Bytes::from_static(b"into the void"));
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline && sender.health().is_ok() {
        std::thread::sleep(Duration::from_millis(5));
    }
    let err = sender.health().expect_err("retry budget must exhaust");
    let shown = err.to_string();
    assert!(
        shown.contains("rank 1 unreachable after 4 attempts"),
        "unexpected error: {}",
        shown
    );
    // Sends to a dead peer are discarded, not retried forever.
    sender.send(1, Channel::APP, 1, Bytes::from_static(b"still dead"));
    cluster.stop();
}

#[test]
fn passthrough_when_no_faults_armed() {
    let cluster = Cluster::start_with_faults(2, NetConfig::instant(), None);
    let sender = ReliableTransport::new(cluster.transport(0), "test", RetryConfig::default());
    let receiver = ReliableTransport::new(cluster.transport(1), "test", RetryConfig::default());
    assert!(!sender.enabled(), "no plan => no framing");
    let seen = Arc::new(Mutex::new(Vec::new()));
    let seen2 = Arc::clone(&seen);
    receiver.register_handler(Channel::APP, Box::new(move |m| seen2.lock().push(m.tag)));
    for i in 0..50u64 {
        sender.send(1, Channel::APP, i, Bytes::new());
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline && seen.lock().len() < 50 {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(seen.lock().len(), 50);
    assert_eq!(sender.retry_count(), 0, "pass-through never retries");
    cluster.stop();
}
