//! In-process simulated cluster for HiPER (DESIGN.md §2.2).
//!
//! The paper evaluates HiPER on the Edison and Titan supercomputers; this
//! crate substitutes an in-process cluster: `N` ranks, each hosting its own
//! HiPER runtime, connected by an interconnect whose **latency and bandwidth
//! are enforced in wall-clock time** by a delivery-engine thread. A blocking
//! receive therefore really idles its caller for `latency + bytes/bandwidth`
//! while an asynchronous, future-based receive lets the runtime execute other
//! tasks — which is precisely the overlap effect the paper measures.
//!
//! The communication modules (`hiper-mpi`, `hiper-shmem`, `hiper-upcxx`) are
//! built on the [`Transport`] handle: tagged, channel-demultiplexed active
//! messages delivered **in order per (source, destination) pair**. Delivery
//! handlers run on the engine thread and must be cheap (a memcpy, a promise
//! satisfaction, an injector push); anything heavier must be spawned onto the
//! destination rank's runtime.

mod cluster;
mod engine;
mod fault;
mod message;
pub mod pod;
mod reliable;
pub mod supervise;

pub use cluster::{Cluster, RankEnv, SpmdBuilder};
#[cfg(feature = "slowmo")]
pub use engine::slowmo;
pub use engine::{NetConfig, NetStats, NetStatsSnapshot, RankEvent};
pub use fault::{FaultDecision, FaultPlan, Partition, RankKill};
pub use message::{Channel, Message, Rank};
pub use reliable::{CoalesceConfig, ReliableStatsSnapshot, ReliableTransport, RetryConfig};
pub use supervise::{CrashToken, KillSpec, SupervisedCtx, SupervisorHarness};

pub use cluster::Transport;
pub use engine::DeliveryEngine;
