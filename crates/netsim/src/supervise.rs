//! Supervised execution: cooperative rank kills and checkpoint-replay
//! recovery for the simulated cluster (DESIGN.md §2.13).
//!
//! Ranks in the simulator are threads, so a "rank failure" cannot be a
//! process kill; instead supervised workloads are written as iterative,
//! barrier-delimited loops that call [`SupervisorHarness::crash_point`] at a
//! fixed point in each iteration — immediately *after* taking a checkpoint
//! and *before* doing any work or sending anything. A seeded [`KillSpec`]
//! decides which rank dies at which crash-point visit, so the kill schedule
//! is replayable from the seed exactly like the wire-level [`FaultPlan`].
//!
//! When a crash point fires, the victim's stack unwinds (a panic payload the
//! harness recognises, skipping the panic hook) out of the workload body and
//! into [`SupervisedCtx::run_supervised`], which drives the recovery
//! sequence the runtime `Supervisor` tracks:
//!
//! 1. **Detect** — report `RankDown` to the supervisor, claim the recovery
//!    (the circuit breaker may refuse), sever the rank in the
//!    [`DeliveryEngine`] so in-flight traffic to/from it drains away.
//! 2. **Quiesce** — hold every peer's reliable endpoint toward the victim:
//!    no retransmits, no budget burn, sends queue.
//! 3. **Restore** — read the newest intact snapshot via
//!    `CheckpointModule::restore_latest` and hand the application bytes to
//!    the caller's restore hook (heap image, pending-recv state, …).
//! 4. **Replay** — revive the rank, bump the endpoint epoch
//!    ([`ReliableTransport::restart`]) so peers roll their cursors back to
//!    the snapshot's receive watermarks and retransmit from their retention
//!    logs, then release the quiesce holds.
//! 5. **Resume** — re-run the workload body from the restored state.
//!
//! The correctness argument for exactly-once replay: the victim sends
//! *nothing* between the checkpoint cut and the crash point, so the replay
//! window has zero pre-crash effects on peers; peer→victim frames delivered
//! after the cut are rolled back by the watermark reset and redelivered from
//! retention logs; stale pre-crash victim frames still floating in queues
//! carry the old epoch and are discarded on arrival.
//!
//! If no intact snapshot exists the recovery **degrades**: the rank stays
//! severed, peers' retry budgets exhaust into the module's typed
//! `Unreachable` error, a flight record is dumped for post-mortem, and the
//! supervisor records the rank as terminally `Failed`.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hiper_checkpoint::CheckpointModule;
use hiper_runtime::supervisor::{FailureSignal, RecoveryError, RecoveryPhase, Supervisor};
use hiper_runtime::watchdog;
use hiper_runtime::Runtime;
use parking_lot::Mutex;

use crate::engine::{DeliveryEngine, RankEvent};
use crate::message::Rank;
use crate::reliable::ReliableTransport;

/// True when `HIPER_SUPERVISE_DEBUG` is set: the supervise harness, the
/// reliable transports, and the delivery engine narrate recovery-relevant
/// events (severing, epoch restarts, retransmits, drops, stale-frame
/// discards) to stderr. Checked once per process.
pub fn debug_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("HIPER_SUPERVISE_DEBUG").is_some())
}

/// splitmix64 finalizer (same mixer as [`FaultPlan`](crate::FaultPlan)).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The panic payload a [`crash_point`](SupervisorHarness::crash_point)
/// unwinds with. [`SupervisedCtx::run_supervised`] catches exactly this
/// type; any other panic propagates unchanged.
pub struct CrashToken;

/// A seeded, replayable kill schedule for supervised runs: `rank` dies on
/// its `at_points`-th visits to the crash point (1-based, counted across
/// replays — so `[3, 4]` kills the original run's third iteration and then
/// the *first* replayed iteration again, the double-kill case).
#[derive(Debug, Clone)]
pub struct KillSpec {
    /// The victim rank.
    pub rank: Rank,
    /// Crash-point visit counts (1-based) at which the victim dies.
    pub at_points: Vec<u64>,
}

impl KillSpec {
    /// Derives a single-kill schedule from a seed: the victim and the
    /// crash-point index (within `1..=max_point`) are pure functions of
    /// `(seed, nranks, max_point)`, so two runs with the same seed kill the
    /// same rank at the same place.
    pub fn seeded(seed: u64, nranks: usize, max_point: u64) -> KillSpec {
        debug_assert!(nranks > 0 && max_point > 0);
        KillSpec {
            rank: (mix(seed ^ 0xdead) % nranks as u64) as Rank,
            at_points: vec![mix(seed ^ 0x5e1f) % max_point + 1],
        }
    }
}

/// Shared state for one supervised run: the runtime [`Supervisor`]
/// bookkeeping, every rank's reliable endpoint (recovery must quiesce
/// *peers'* endpoints, not just the victim's), and the kill schedule.
/// Created by the driver before `SpmdBuilder::run` and cloned into the
/// per-rank closures.
pub struct SupervisorHarness {
    supervisor: Supervisor,
    nranks: usize,
    kill: Option<KillSpec>,
    endpoints: Mutex<Vec<Option<Arc<ReliableTransport>>>>,
    runtimes: Mutex<Vec<Option<Runtime>>>,
    engine: Mutex<Option<Arc<DeliveryEngine>>>,
    /// Per-rank crash-point visit counters (increment on every visit,
    /// including replayed iterations).
    crossings: Vec<AtomicU64>,
}

impl SupervisorHarness {
    /// A harness for `nranks` ranks with an optional kill schedule. Each
    /// rank's recovery circuit breaker opens after
    /// `max_recoveries_per_rank` attempts.
    pub fn new(nranks: usize, kill: Option<KillSpec>, max_recoveries_per_rank: u32) -> Arc<Self> {
        Arc::new(SupervisorHarness {
            supervisor: Supervisor::new(max_recoveries_per_rank),
            nranks,
            kill,
            endpoints: Mutex::new(vec![None; nranks]),
            runtimes: Mutex::new(vec![None; nranks]),
            engine: Mutex::new(None),
            crossings: (0..nranks).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    /// The underlying recovery state machine (phase/attempt queries, the
    /// signal log for tests).
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// Wires one rank into the harness: stores its reliable endpoint and
    /// runtime handle, and (first call only) subscribes the supervisor to
    /// the engine's rank lifecycle events.
    pub fn register(
        self: &Arc<Self>,
        rank: Rank,
        runtime: Runtime,
        endpoint: Arc<ReliableTransport>,
        engine: &Arc<DeliveryEngine>,
    ) {
        endpoint.enable_retention();
        self.endpoints.lock()[rank] = Some(endpoint);
        self.runtimes.lock()[rank] = Some(runtime);
        let mut slot = self.engine.lock();
        if slot.is_none() {
            *slot = Some(engine.clone());
            let sup = self.clone();
            engine.on_rank_event(move |ev| match ev {
                RankEvent::Down { rank, at_ns } => sup.supervisor.report(FailureSignal::RankDown {
                    rank: rank as u32,
                    at_ns,
                }),
                RankEvent::Restored { rank, at_ns } => {
                    sup.supervisor.report(FailureSignal::RankRestored {
                        rank: rank as u32,
                        at_ns,
                    })
                }
            });
        }
    }

    /// A cooperative crash point. Every rank calls this once per iteration
    /// (including replayed iterations); the scheduled victim unwinds with a
    /// [`CrashToken`] on its scheduled visits. Must be called *outside* any
    /// finish scope and *before* any post-checkpoint sends.
    pub fn crash_point(&self, rank: Rank) {
        let n = self.crossings[rank].fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(k) = &self.kill {
            if k.rank == rank && k.at_points.contains(&n) {
                // Drain the victim's send side before it dies: frames
                // sent before the checkpoint cut (barrier arrivals, late
                // round data) can still be unacked here, and the restart
                // voids the dead incarnation's sequence space — an
                // undelivered pre-cut frame would be lost forever, since
                // replay only regenerates sends *after* the cut. Waiting
                // for cumulative acks makes the crash lose nothing the
                // peers still need. (Post-cut handler sends delivered
                // meanwhile are rolled back at the peers by the watermark
                // reset and regenerated by replay.)
                if let Some(ep) = self.endpoints.lock()[rank].clone() {
                    if !ep.flush(Duration::from_secs(2)) && debug_enabled() {
                        eprintln!("[supervise r{rank}] crash flush timed out");
                    }
                }
                // resume_unwind skips the panic hook: this is a simulated
                // failure, not a bug worth a backtrace.
                panic::resume_unwind(Box::new(CrashToken));
            }
        }
    }

    /// Crash-point visits so far for `rank` (test observability).
    pub fn crossings(&self, rank: Rank) -> u64 {
        self.crossings[rank].load(Ordering::Relaxed)
    }

    /// Tears the harness down after a run. [`register`] builds a reference
    /// cycle — harness → engine → rank-event listener closure → harness —
    /// so without this call the harness, the engine, every stored reliable
    /// endpoint *and its retry thread* outlive the run forever; a process
    /// that runs many supervised clusters back to back (the recovery grid)
    /// accumulates orphan retry threads that keep retransmitting into
    /// stopped engines and skew later measurements. Supervisor bookkeeping
    /// (attempt counts, the signal log) stays readable afterwards.
    ///
    /// [`register`]: SupervisorHarness::register
    pub fn shutdown(&self) {
        for slot in self.endpoints.lock().iter_mut() {
            *slot = None;
        }
        for slot in self.runtimes.lock().iter_mut() {
            *slot = None;
        }
        if let Some(engine) = self.engine.lock().take() {
            engine.clear_rank_listeners();
            engine.clear_handlers();
        }
    }

    fn endpoint(&self, rank: Rank) -> Arc<ReliableTransport> {
        loop {
            if let Some(ep) = self.endpoints.lock()[rank].clone() {
                return ep;
            }
            // Registration races startup; recovery is rare enough to spin.
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    fn engine(&self) -> Arc<DeliveryEngine> {
        self.engine.lock().clone().expect("harness registered")
    }

    /// Holds (or releases) every *other* rank's endpoint toward `victim`.
    fn quiesce_peers(&self, victim: Rank, on: bool) {
        for r in 0..self.nranks {
            if r == victim {
                continue;
            }
            self.endpoint(r).quiesce_peer(victim, on);
        }
    }

    fn bump_stat(&self, rank: Rank, f: impl Fn(&hiper_runtime::SchedStats)) {
        if let Some(rt) = &self.runtimes.lock()[rank] {
            f(rt.stats());
        }
    }
}

/// Per-rank handle for a supervised workload: owns the checkpoint naming,
/// version counter, and the recovery driver.
pub struct SupervisedCtx {
    harness: Arc<SupervisorHarness>,
    ckpt: Arc<CheckpointModule>,
    rank: Rank,
    name: String,
    version: AtomicU64,
}

impl SupervisedCtx {
    /// A supervised context for `rank`, writing snapshots named
    /// `rank<rank>` through `ckpt`. The rank must already be
    /// [`register`](SupervisorHarness::register)ed.
    pub fn new(harness: Arc<SupervisorHarness>, ckpt: Arc<CheckpointModule>, rank: Rank) -> Self {
        SupervisedCtx {
            harness,
            ckpt,
            rank,
            name: format!("rank{}", rank),
            version: AtomicU64::new(0),
        }
    }

    /// See [`SupervisorHarness::crash_point`].
    pub fn crash_point(&self) {
        self.harness.crash_point(self.rank);
    }

    /// Takes a durable checkpoint of this rank: an atomic cut of the
    /// reliable-transport receive watermarks plus the application bytes
    /// produced by `app_state`. The engine pauses the rank's deliveries for
    /// the duration of the capture so the two halves form one consistent
    /// snapshot (a frame delivering *between* the captures would otherwise
    /// be lost or double-applied on replay); dropped frames are recovered
    /// by the armed reliable layer's retransmission.
    ///
    /// After the write is durable, peers are told the watermarks
    /// ([`ReliableTransport::checkpoint_mark`]) so their retention logs can
    /// shed frames the snapshot covers.
    pub fn checkpoint(&self, app_state: impl FnOnce() -> Vec<u8>) {
        let dbg = debug_enabled();
        let engine = self.harness.engine();
        let ep = self.harness.endpoint(self.rank);
        engine.pause_rank(self.rank);
        if dbg {
            eprintln!("[supervise r{}] ckpt cut: paused", self.rank);
        }
        let wms = ep.recv_watermarks();
        let app = app_state();
        engine.unpause_rank(self.rank);
        if dbg {
            eprintln!("[supervise r{}] ckpt cut: unpaused; writing", self.rank);
        }

        let mut image = Vec::with_capacity(8 + wms.len() * 8 + app.len());
        image.extend_from_slice(&(wms.len() as u64).to_le_bytes());
        for w in &wms {
            image.extend_from_slice(&w.to_le_bytes());
        }
        image.extend_from_slice(&app);

        let version = self.version.fetch_add(1, Ordering::Relaxed) + 1;
        self.ckpt.checkpoint(&self.name, version, image).wait();
        if dbg {
            eprintln!("[supervise r{}] ckpt v{} durable", self.rank, version);
        }
        // Only after the write is durable may peers GC their retention
        // logs: an earlier mark could shed frames the next restore needs.
        ep.checkpoint_mark(&wms);
    }

    /// Runs `body` under supervision: crashes scheduled by the harness's
    /// [`KillSpec`] are caught, the rank is recovered from its newest
    /// intact snapshot (application bytes handed to `restore`), and `body`
    /// re-runs. `body` receives the 1-based attempt number. Panics that are
    /// not crash tokens propagate unchanged.
    pub fn run_supervised<R>(
        &self,
        mut restore: impl FnMut(&[u8]),
        mut body: impl FnMut(u32) -> R,
    ) -> Result<R, RecoveryError> {
        let mut attempt = 1u32;
        loop {
            match panic::catch_unwind(AssertUnwindSafe(|| body(attempt))) {
                Ok(r) => return Ok(r),
                Err(payload) => {
                    if !payload.is::<CrashToken>() {
                        panic::resume_unwind(payload);
                    }
                    self.recover(&mut restore)?;
                    attempt += 1;
                }
            }
        }
    }

    /// The detect → quiesce → restore → replay → resume sequence. On a
    /// missing/corrupt snapshot or an open circuit breaker the rank is left
    /// severed (degradation: peers' budgets exhaust into `Unreachable`).
    fn recover(&self, restore: &mut dyn FnMut(&[u8])) -> Result<(), RecoveryError> {
        let dbg = crate::supervise::debug_enabled();
        macro_rules! dlog {
            ($($a:tt)*) => { if dbg { eprintln!($($a)*); } }
        }
        let rank = self.rank;
        let sup = self.harness.supervisor();
        let engine = self.harness.engine();

        sup.report(FailureSignal::RankDown {
            rank: rank as u32,
            at_ns: hiper_trace::clock::now_ns(),
        });
        if let Err(e) = sup.begin_recovery(rank as u32) {
            self.harness
                .bump_stat(rank, |s| s.recovery_failed(usize::MAX));
            self.dump_flight_record("recovery circuit breaker open");
            return Err(e);
        }

        // Sever the rank (emits the RankDown trace event and notifies
        // listeners) and hold every peer's retransmits toward it.
        dlog!("[supervise r{}] sever+quiesce", rank);
        engine.set_rank_down(rank, true);
        self.harness.quiesce_peers(rank, true);

        sup.advance(rank as u32, RecoveryPhase::Restoring);
        dlog!("[supervise r{}] restoring", rank);
        let restored = self
            .ckpt
            .restore_latest(&self.name)
            .and_then(|fut| fut.get().ok());
        let (version, image) = match restored {
            Some(v) => v,
            None => {
                // Degrade: no intact snapshot. The rank stays severed;
                // releasing the peer holds lets their budgets exhaust into
                // the module's typed Unreachable error instead of hanging.
                self.harness
                    .bump_stat(rank, |s| s.recovery_failed(usize::MAX));
                sup.mark_failed(rank as u32);
                self.dump_flight_record("rank recovery failed: no intact checkpoint");
                self.harness.quiesce_peers(rank, false);
                return Err(RecoveryError::NoCheckpoint);
            }
        };

        // Split the image back into watermarks + application bytes.
        let n = u64::from_le_bytes(image[..8].try_into().unwrap()) as usize;
        let mut wms = Vec::with_capacity(n);
        for i in 0..n {
            let off = 8 + i * 8;
            wms.push(u64::from_le_bytes(image[off..off + 8].try_into().unwrap()));
        }
        restore(&image[8 + n * 8..]);
        // Replay resumes version numbering from the restored snapshot.
        self.version.store(version, Ordering::Relaxed);

        // Revive the rank first so RESTART frames can flow, then bump the
        // epoch (rolls peers' cursors back to the snapshot watermarks and
        // triggers retention-log retransmits), then release the holds. The
        // unquiesce/RESTART order is safe either way: peers' numbering
        // toward the victim is continuous, so frames below the restored
        // watermark are acked-and-dropped as duplicates and frames at or
        // above it deliver in order.
        dlog!(
            "[supervise r{}] restored v{} ({} bytes); restarting epoch",
            rank,
            version,
            image.len()
        );
        let ep = self.harness.endpoint(rank);
        // The revive event names the incarnation peers are about to meet;
        // restart() below bumps the epoch by exactly one.
        let new_epoch = ep.epoch() + 1;
        engine.set_rank_restored(rank, new_epoch);
        let epoch = ep.restart(&wms);
        debug_assert_eq!(epoch, new_epoch);
        self.harness.quiesce_peers(rank, false);
        dlog!("[supervise r{}] epoch now {}; replaying", rank, epoch);

        sup.advance(rank as u32, RecoveryPhase::Replaying);
        self.harness
            .bump_stat(rank, |s| s.rank_recovered(usize::MAX));
        sup.report(FailureSignal::RankRestored {
            rank: rank as u32,
            at_ns: hiper_trace::clock::now_ns(),
        });
        sup.mark_resumed(rank as u32);
        Ok(())
    }

    /// Dumps a watchdog flight record on the degradation path, but only
    /// when someone is watching (an explicit `HIPER_WATCHDOG_FILE` sink or
    /// an armed watchdog) — plain unit tests shouldn't litter the cwd.
    fn dump_flight_record(&self, reason: &str) {
        if watchdog::recording() {
            watchdog::dump_record(reason);
        }
    }
}
