//! Deterministic fault injection for the simulated network.
//!
//! A [`FaultPlan`] describes everything that can go wrong on the wire:
//! per-link probabilistic drops, duplicates, reorders and latency jitter,
//! plus *windowed* faults — link partitions and rank kills active during a
//! time interval measured from engine start. Probabilistic decisions are a
//! pure function of `(seed, src, dst, link sequence number)`, hashed with a
//! splitmix64-style finalizer, so the fault *schedule* of a run is fully
//! replayable from the seed regardless of thread interleaving: the Nth
//! message from rank `s` to rank `d` suffers exactly the same fate in every
//! run (DESIGN.md §2.9).

use std::time::Duration;

use crate::message::Rank;

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform float in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A link partition: traffic crossing the cut between `ranks` and everyone
/// else is dropped while the window is open.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Ranks on one side of the cut.
    pub ranks: Vec<Rank>,
    /// Window start, measured from engine start.
    pub from: Duration,
    /// Window end (exclusive), measured from engine start.
    pub until: Duration,
}

/// A rank failure at a point in time. With an `outage`, the rank "reboots"
/// after the window (a transient kill: all its traffic is dropped while
/// down, and reliable transports retry through the outage). Without one,
/// the rank stays dead and senders eventually report it unreachable.
#[derive(Debug, Clone, Copy)]
pub struct RankKill {
    /// The rank that dies.
    pub rank: Rank,
    /// When it dies, measured from engine start.
    pub at: Duration,
    /// How long it stays down; `None` means forever.
    pub outage: Option<Duration>,
}

/// What a [`FaultPlan`] decided for one message (pure, replayable).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultDecision {
    /// Silently discard the message.
    pub drop: bool,
    /// Deliver a second copy.
    pub duplicate: bool,
    /// Allow this message to overtake earlier traffic on its link.
    pub reorder: bool,
    /// Extra in-flight delay, ns.
    pub jitter_ns: u64,
    /// Extra in-flight delay for the duplicate copy, ns.
    pub dup_jitter_ns: u64,
}

/// A seeded, replayable description of network misbehaviour.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// Per-message drop probability.
    pub drop_p: f64,
    /// Per-message duplication probability.
    pub dup_p: f64,
    /// Per-message probability of escaping the per-link FIFO clamp.
    pub reorder_p: f64,
    /// Maximum extra latency added to each message (uniform in `[0, jitter]`).
    pub jitter: Duration,
    /// Windowed link partitions.
    pub partitions: Vec<Partition>,
    /// Windowed or permanent rank kills.
    pub kills: Vec<RankKill>,
    /// Forces [`is_active`](FaultPlan::is_active) true even when nothing
    /// probabilistic or windowed is configured. Supervised-execution runs
    /// set this: the kill is driven *cooperatively* (seeded crash points,
    /// not wall-clock windows), but the reliable layers must still arm so
    /// epochs, retention logs, and recovery work.
    pub armed: bool,
}

impl FaultPlan {
    /// A plan that injects nothing (useful to measure plumbing overhead).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// An empty plan with a seed; chain the builder methods to arm faults.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the per-message drop probability.
    pub fn drop_p(mut self, p: f64) -> FaultPlan {
        self.drop_p = p;
        self
    }

    /// Sets the per-message duplication probability.
    pub fn dup_p(mut self, p: f64) -> FaultPlan {
        self.dup_p = p;
        self
    }

    /// Sets the per-message reorder probability.
    pub fn reorder_p(mut self, p: f64) -> FaultPlan {
        self.reorder_p = p;
        self
    }

    /// Sets the maximum latency jitter.
    pub fn jitter(mut self, jitter: Duration) -> FaultPlan {
        self.jitter = jitter;
        self
    }

    /// Adds a partition window isolating `ranks` from everyone else.
    pub fn partition(mut self, ranks: Vec<Rank>, from: Duration, until: Duration) -> FaultPlan {
        self.partitions.push(Partition { ranks, from, until });
        self
    }

    /// Adds a rank kill at `at`; `outage` is the reboot delay (`None` =
    /// permanent).
    pub fn kill(mut self, rank: Rank, at: Duration, outage: Option<Duration>) -> FaultPlan {
        self.kills.push(RankKill { rank, at, outage });
        self
    }

    /// Forces the plan active (see the `armed` field): reliable layers arm
    /// even though the plan itself perturbs nothing.
    pub fn arm(mut self) -> FaultPlan {
        self.armed = true;
        self
    }

    /// True when the plan can actually perturb traffic. Pass-through layers
    /// (reliable delivery, FIFO-clamp bypass) only arm themselves when this
    /// holds, so a `None`-plan run stays on the fault-free fast path.
    pub fn is_active(&self) -> bool {
        self.armed
            || self.drop_p > 0.0
            || self.dup_p > 0.0
            || self.reorder_p > 0.0
            || !self.jitter.is_zero()
            || !self.partitions.is_empty()
            || !self.kills.is_empty()
    }

    /// True when the plan may deliver traffic out of per-link order (the
    /// engine then skips its FIFO clamp and a reliable layer must resequence).
    pub fn reorders(&self) -> bool {
        self.reorder_p > 0.0 || !self.jitter.is_zero()
    }

    /// The fate of the `seq`-th message sent from `src` to `dst`. Pure:
    /// identical inputs give identical decisions in every run.
    pub fn decide(&self, src: Rank, dst: Rank, seq: u64) -> FaultDecision {
        let link = ((src as u64) << 32) | dst as u64;
        let base = mix(self.seed ^ mix(link) ^ seq.wrapping_mul(0xa076_1d64_78bd_642f));
        let jitter_ns = self.jitter.as_nanos() as u64;
        FaultDecision {
            drop: unit(mix(base ^ 0x01)) < self.drop_p,
            duplicate: unit(mix(base ^ 0x02)) < self.dup_p,
            reorder: unit(mix(base ^ 0x03)) < self.reorder_p,
            jitter_ns: if jitter_ns == 0 {
                0
            } else {
                mix(base ^ 0x04) % jitter_ns
            },
            dup_jitter_ns: if jitter_ns == 0 {
                0
            } else {
                mix(base ^ 0x05) % jitter_ns
            },
        }
    }

    /// True when the `src -> dst` link is severed at `elapsed_ns` (from
    /// engine start) by a partition window or a killed endpoint.
    pub fn link_down(&self, src: Rank, dst: Rank, elapsed_ns: u64) -> bool {
        for p in &self.partitions {
            if (p.from.as_nanos() as u64..p.until.as_nanos() as u64).contains(&elapsed_ns) {
                let a = p.ranks.contains(&src);
                let b = p.ranks.contains(&dst);
                if a != b {
                    return true;
                }
            }
        }
        for k in &self.kills {
            if src != k.rank && dst != k.rank {
                continue;
            }
            let at = k.at.as_nanos() as u64;
            let down = match k.outage {
                Some(d) => (at..at + d.as_nanos() as u64).contains(&elapsed_ns),
                None => elapsed_ns >= at,
            };
            if down {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert!(!p.reorders());
        for seq in 0..100 {
            assert_eq!(p.decide(0, 1, seq), FaultDecision::default());
        }
        assert!(!p.link_down(0, 1, 0));
    }

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let a = FaultPlan::seeded(7)
            .drop_p(0.3)
            .dup_p(0.2)
            .jitter(Duration::from_micros(50));
        let b = a.clone();
        for seq in 0..1000 {
            assert_eq!(a.decide(1, 2, seq), b.decide(1, 2, seq));
        }
        // A different seed gives a different schedule.
        let c = FaultPlan::seeded(8)
            .drop_p(0.3)
            .dup_p(0.2)
            .jitter(Duration::from_micros(50));
        let differs = (0..1000).any(|seq| a.decide(1, 2, seq) != c.decide(1, 2, seq));
        assert!(differs);
    }

    #[test]
    fn drop_rate_is_roughly_honoured() {
        let p = FaultPlan::seeded(42).drop_p(0.25);
        let drops = (0..10_000).filter(|&s| p.decide(0, 1, s).drop).count();
        assert!(
            (2000..3000).contains(&drops),
            "25% of 10k should drop ~2500, got {}",
            drops
        );
    }

    #[test]
    fn links_are_independent_streams() {
        let p = FaultPlan::seeded(5).drop_p(0.5);
        let a: Vec<bool> = (0..200).map(|s| p.decide(0, 1, s).drop).collect();
        let b: Vec<bool> = (0..200).map(|s| p.decide(1, 0, s).drop).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn partition_window_cuts_only_crossing_traffic() {
        let p = FaultPlan::seeded(0).partition(
            vec![0, 1],
            Duration::from_millis(10),
            Duration::from_millis(20),
        );
        let inside = 15_000_000;
        assert!(p.link_down(0, 2, inside));
        assert!(p.link_down(2, 1, inside));
        assert!(!p.link_down(0, 1, inside), "same-side traffic flows");
        assert!(!p.link_down(2, 3, inside));
        assert!(!p.link_down(0, 2, 5_000_000), "before window");
        assert!(!p.link_down(0, 2, 25_000_000), "after window");
    }

    #[test]
    fn transient_and_permanent_kills() {
        let p = FaultPlan::seeded(0)
            .kill(1, Duration::from_millis(5), Some(Duration::from_millis(10)))
            .kill(3, Duration::from_millis(5), None);
        assert!(!p.link_down(0, 1, 1_000_000));
        assert!(p.link_down(0, 1, 7_000_000));
        assert!(p.link_down(1, 0, 7_000_000));
        assert!(!p.link_down(0, 1, 20_000_000), "rank 1 rebooted");
        assert!(p.link_down(0, 3, 20_000_000), "rank 3 stays dead");
    }
}
