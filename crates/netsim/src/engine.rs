//! The delivery engine: a thread that holds in-flight messages in a timed
//! priority queue and delivers each to its destination handler once the
//! modeled network delay has elapsed — in *wall-clock* time, so blocking on
//! communication costs real CPU availability (DESIGN.md §2.2).
//!
//! All engine timekeeping runs on the shared trace clock
//! ([`hiper_trace::clock`]): due times are nanosecond offsets from the same
//! epoch the tracer stamps events with, so an exported timeline shows every
//! `NetDeliver` landing exactly `NetSend + modeled delay` later — no skew
//! between scheduler tracks and network tracks.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hiper_trace::clock;
use hiper_trace::EventKind;
use parking_lot::{Condvar, Mutex};

use crate::message::{Message, Rank};

/// Deterministic per-channel delay scaling, for differential-profiling
/// self-tests: doubling one channel's modeled latency must surface as a
/// top-ranked attribution in `profile --diff`. Scales live in a global
/// table (millionths, so 2_000_000 = 2x) and multiply the modeled delay
/// before it reaches the timed heap and the trace — the injected slowdown
/// is exactly what the exported timeline shows.
#[cfg(feature = "slowmo")]
pub mod slowmo {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    use crate::message::Channel;

    const UNIT: u64 = 1_000_000;
    const CHANNELS: usize = 4;

    static SCALES: [AtomicU64; CHANNELS] = [
        AtomicU64::new(UNIT),
        AtomicU64::new(UNIT),
        AtomicU64::new(UNIT),
        AtomicU64::new(UNIT),
    ];

    /// Sets the delay multiplier for one channel (1.0 = unmodified).
    /// Takes effect for messages sent after the call, process-wide.
    pub fn set_channel_scale(channel: Channel, scale: f64) {
        let fixed = (scale.max(0.0) * UNIT as f64) as u64;
        if let Some(slot) = SCALES.get(channel.0 as usize) {
            slot.store(fixed, Ordering::Relaxed);
        }
    }

    /// Restores every channel to 1.0.
    pub fn reset() {
        for slot in &SCALES {
            slot.store(UNIT, Ordering::Relaxed);
        }
    }

    pub(crate) fn scale(channel: Channel, delay: Duration) -> Duration {
        let fixed = SCALES
            .get(channel.0 as usize)
            .map_or(UNIT, |s| s.load(Ordering::Relaxed));
        if fixed == UNIT {
            return delay;
        }
        Duration::from_nanos(
            ((delay.as_nanos() as u64) as u128 * fixed as u128 / UNIT as u128) as u64,
        )
    }
}

/// Packs a (src, dst) pair into one trace-event payload word.
fn link_word(src: Rank, dst: Rank) -> u64 {
    ((src as u64) << 32) | dst as u64
}

/// Globally unique message-id allocator for `MsgSend`/`MsgDeliver` causal
/// edges (shared across engines so ids never collide within one trace).
static NEXT_MSG_ID: AtomicU64 = AtomicU64::new(1);

/// Cached handle to the in-flight-messages gauge (queue depth of the timed
/// delivery heap; the peak value is the high-water mark of the run).
fn in_flight_gauge() -> &'static hiper_metrics::Gauge {
    static G: std::sync::OnceLock<&'static hiper_metrics::Gauge> = std::sync::OnceLock::new();
    G.get_or_init(|| hiper_metrics::gauge("hiper_netsim_in_flight"))
}

/// Network model parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// One-way latency between ranks on distinct nodes.
    pub latency: Duration,
    /// Link bandwidth in bytes/second (applied to `Message::wire_bytes`).
    pub bandwidth: f64,
    /// Latency for a rank sending to itself (loopback through the library).
    pub self_latency: Duration,
    /// Ranks per simulated node: ranks `r` and `s` with
    /// `r / ranks_per_node == s / ranks_per_node` communicate at
    /// `intra_latency` instead of `latency` (shared-memory transport, the
    /// reason flat-per-core SHMEM is cheap at small scale).
    pub ranks_per_node: usize,
    /// One-way latency between distinct ranks on the same node.
    pub intra_latency: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        // Roughly Cray-Aries-flavored numbers, scaled up so they dominate
        // scheduler noise on the simulation host: ~40us latency, 4 GB/s.
        NetConfig {
            latency: Duration::from_micros(40),
            bandwidth: 4.0e9,
            self_latency: Duration::from_micros(2),
            ranks_per_node: 1,
            intra_latency: Duration::from_micros(3),
        }
    }
}

impl NetConfig {
    /// An idealized instant network (useful in unit tests where timing is
    /// irrelevant).
    pub fn instant() -> NetConfig {
        NetConfig {
            latency: Duration::ZERO,
            bandwidth: f64::INFINITY,
            self_latency: Duration::ZERO,
            ranks_per_node: 1,
            intra_latency: Duration::ZERO,
        }
    }

    /// The modeled in-flight delay for a message.
    pub fn delay(&self, src: Rank, dst: Rank, wire_bytes: usize) -> Duration {
        let rpn = self.ranks_per_node.max(1);
        let base = if src == dst {
            self.self_latency
        } else if src / rpn == dst / rpn {
            self.intra_latency
        } else {
            self.latency
        };
        if self.bandwidth.is_finite() && self.bandwidth > 0.0 {
            base + Duration::from_secs_f64(wire_bytes as f64 / self.bandwidth)
        } else {
            base
        }
    }
}

/// Traffic counters.
#[derive(Debug, Default)]
pub struct NetStats {
    pub messages: AtomicU64,
    pub bytes: AtomicU64,
    /// Messages discarded: fault injection (random drops, partition/kill
    /// windows) plus messages lost to panicking handlers.
    pub dropped: AtomicU64,
    /// Extra copies injected by fault duplication.
    pub duplicated: AtomicU64,
    /// Delivery handlers that panicked (each also counts as one `dropped`).
    pub handler_panics: AtomicU64,
}

/// Plain-data snapshot of [`NetStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    pub messages: u64,
    pub bytes: u64,
    pub dropped: u64,
    pub duplicated: u64,
    pub handler_panics: u64,
}

impl NetStats {
    /// Point-in-time copy.
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            handler_panics: self.handler_panics.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Display for NetStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "messages={} bytes={} dropped={} duplicated={} handler_panics={}",
            self.messages, self.bytes, self.dropped, self.duplicated, self.handler_panics
        )
    }
}

/// Handler invoked (on the engine thread) when a message arrives at a rank.
pub type Handler = Box<dyn Fn(Message) + Send + Sync>;

/// A rank lifecycle transition driven through [`DeliveryEngine::set_rank_down`]
/// (supervised kills and recoveries). Listeners registered with
/// [`DeliveryEngine::on_rank_event`] — e.g. a runtime `Supervisor` — see
/// every transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankEvent {
    /// The rank went down at `at_ns` (trace-clock): all its traffic is
    /// dropped until it is restored.
    Down { rank: Rank, at_ns: u64 },
    /// The rank came back at `at_ns`.
    Restored { rank: Rank, at_ns: u64 },
}

/// Rank-event listener callback.
pub type RankListener = Box<dyn Fn(RankEvent) + Send + Sync>;

/// Debug marker for the delivery currently running: `(src, dst, channel,
/// seq-ish tag, started)`. Populated only under `HIPER_SUPERVISE_DEBUG`.
type DeliveryMark = (Rank, Rank, u8, u64, std::time::Instant);

struct InFlight {
    /// Delivery deadline, ns on the shared trace clock.
    due: u64,
    seq: u64,
    /// Causal-edge message id (shared by fault-injected duplicate copies:
    /// both delivers refer to the same logical `MsgSend`). 0 = untraced.
    msg_id: u64,
    msg: Message,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

struct EngineState {
    queue: BinaryHeap<Reverse<InFlight>>,
    /// Per-(dst, channel) handlers; index = dst * 256 + channel.
    handlers: Vec<Option<Arc<Handler>>>,
    /// Latest delivery time scheduled per (src, dst) link (trace-clock ns).
    /// A message may never be delivered before an earlier message on the
    /// same link, even if it is much smaller — the per-pair FIFO guarantee
    /// communication modules (SHMEM put ordering, MPI non-overtaking)
    /// depend on.
    last_due: std::collections::HashMap<(Rank, Rank), u64>,
    /// Per-(src, dst) send counter: the replayable "message index" that
    /// [`FaultPlan::decide`] keys its fault schedule on.
    link_seq: std::collections::HashMap<(Rank, Rank), u64>,
}

/// The delivery engine shared by all ranks of one cluster.
pub struct DeliveryEngine {
    config: NetConfig,
    ranks: usize,
    /// Armed fault plan, if any (`None` = perfectly reliable wire).
    faults: Option<crate::FaultPlan>,
    /// Trace-clock ns at engine start; fault windows are offsets from here.
    epoch_ns: u64,
    state: Mutex<EngineState>,
    cond: Condvar,
    seq: AtomicU64,
    shutdown: AtomicBool,
    /// Per-rank supervised-down flags ([`set_rank_down`]); traffic to or
    /// from a down rank is dropped (cause 2), independent of any
    /// time-windowed [`FaultPlan`] kill.
    ///
    /// [`set_rank_down`]: DeliveryEngine::set_rank_down
    down: Vec<AtomicBool>,
    /// Like `down`, but *silent*: no trace events, no listener
    /// notifications, and messages dropped in the window are expected to
    /// be retransmitted by a reliable layer. [`pause_rank`] uses this to
    /// carve an atomic cut for checkpoint snapshots (no handler can mutate
    /// the rank's state while paused).
    ///
    /// [`pause_rank`]: DeliveryEngine::pause_rank
    paused: Vec<AtomicBool>,
    /// `dst + 1` while a delivery handler is running (0 = idle):
    /// `set_rank_down` waits on it so that once the call returns, no
    /// handler for the dead rank is still mid-delivery.
    delivering: AtomicU64,
    dbg_delivery: Mutex<Option<DeliveryMark>>,
    rank_listeners: Mutex<Vec<RankListener>>,
    pub stats: NetStats,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl DeliveryEngine {
    /// Creates an engine for `ranks` ranks and starts its delivery thread.
    pub fn start(ranks: usize, config: NetConfig) -> Arc<DeliveryEngine> {
        Self::start_with_faults(ranks, config, None)
    }

    /// Creates an engine with an armed fault plan. An inactive plan
    /// ([`FaultPlan::is_active`] false) behaves exactly like `start`.
    pub fn start_with_faults(
        ranks: usize,
        config: NetConfig,
        faults: Option<crate::FaultPlan>,
    ) -> Arc<DeliveryEngine> {
        let faults = faults.filter(|p| p.is_active());
        let engine = Arc::new(DeliveryEngine {
            config,
            ranks,
            faults,
            epoch_ns: clock::now_ns(),
            state: Mutex::new(EngineState {
                queue: BinaryHeap::new(),
                handlers: vec![None; ranks * 256],
                last_due: std::collections::HashMap::new(),
                link_seq: std::collections::HashMap::new(),
            }),
            cond: Condvar::new(),
            seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            down: (0..ranks).map(|_| AtomicBool::new(false)).collect(),
            paused: (0..ranks).map(|_| AtomicBool::new(false)).collect(),
            delivering: AtomicU64::new(0),
            dbg_delivery: Mutex::new(None),
            rank_listeners: Mutex::new(Vec::new()),
            stats: NetStats::default(),
            thread: Mutex::new(None),
        });
        let engine2 = Arc::clone(&engine);
        let handle = std::thread::Builder::new()
            .name("hiper-netsim".into())
            .spawn(move || engine2.run())
            .expect("failed to spawn delivery engine");
        *engine.thread.lock() = Some(handle);
        if crate::supervise::debug_enabled() {
            let weak = Arc::downgrade(&engine);
            std::thread::spawn(move || loop {
                std::thread::sleep(std::time::Duration::from_millis(500));
                let Some(e) = weak.upgrade() else { return };
                let snap = *e.dbg_delivery.lock();
                if let Some((src, dst, chan, tag, t0)) = snap {
                    if t0.elapsed() > std::time::Duration::from_secs(1) {
                        eprintln!(
                            "[engine] STUCK delivery src={} dst={} chan={} tag={:#x} for {:?}",
                            src,
                            dst,
                            chan,
                            tag,
                            t0.elapsed()
                        );
                    }
                }
            });
        }
        engine
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The network model in force.
    pub fn config(&self) -> NetConfig {
        self.config
    }

    /// The armed fault plan, if any. Reliable transports consult this to
    /// decide whether to arm acking/retry (pass-through on `None`).
    pub fn fault_plan(&self) -> Option<&crate::FaultPlan> {
        self.faults.as_ref()
    }

    /// Registers the handler for (`rank`, `channel`). Replaces any previous
    /// handler.
    pub fn register_handler(&self, rank: Rank, channel: crate::Channel, handler: Handler) {
        let mut st = self.state.lock();
        st.handlers[rank * 256 + channel.0 as usize] = Some(Arc::new(handler));
    }

    /// Registers a listener for supervised rank lifecycle transitions.
    pub fn on_rank_event(&self, f: impl Fn(RankEvent) + Send + Sync + 'static) {
        self.rank_listeners.lock().push(Box::new(f));
    }

    /// Drops every rank-event listener. Supervised-run teardown: a
    /// listener closure typically holds the supervisor harness, which
    /// holds this engine — clearing the vector breaks the reference cycle
    /// so both (and the reliable endpoints the harness stores, along with
    /// their retry threads) can actually drop when the run ends.
    pub fn clear_rank_listeners(&self) {
        self.rank_listeners.lock().clear();
    }

    /// Drops every registered delivery handler. Only valid once the engine
    /// is stopped: handler closures commonly capture the endpoint that
    /// registered them (endpoint → transport → engine → handler → endpoint
    /// is a reference cycle), so teardown must break the table or every
    /// endpoint of the run leaks for the life of the process.
    pub fn clear_handlers(&self) {
        debug_assert!(self.is_stopped(), "clear_handlers on a live engine");
        let mut st = self.state.lock();
        for slot in st.handlers.iter_mut() {
            *slot = None;
        }
    }

    /// True while `rank` is marked down by [`set_rank_down`].
    ///
    /// [`set_rank_down`]: DeliveryEngine::set_rank_down
    pub fn rank_down(&self, rank: Rank) -> bool {
        self.down[rank].load(Ordering::Acquire)
    }

    /// True when traffic touching `rank` must be dropped (down or paused).
    #[inline]
    fn severed(&self, rank: Rank) -> bool {
        self.down[rank].load(Ordering::SeqCst) || self.paused[rank].load(Ordering::SeqCst)
    }

    /// Silently fences `rank` off the network: returns only when no
    /// delivery handler for the rank is mid-flight, and until
    /// [`unpause_rank`] every message to or from it is dropped. Unlike
    /// [`set_rank_down`] this emits no trace events — it exists so a
    /// checkpoint can capture transport watermarks and application state
    /// as one consistent cut; dropped frames are retransmitted by the
    /// reliable layer afterwards. Keep the window short.
    ///
    /// [`unpause_rank`]: DeliveryEngine::unpause_rank
    /// [`set_rank_down`]: DeliveryEngine::set_rank_down
    pub fn pause_rank(&self, rank: Rank) {
        if !self.paused[rank].swap(true, Ordering::SeqCst) {
            let mut spins = 0u64;
            while self.delivering.load(Ordering::SeqCst) == rank as u64 + 1 {
                std::hint::spin_loop();
                spins += 1;
                if spins == 100_000_000 && crate::supervise::debug_enabled() {
                    eprintln!("[engine] pause_rank({rank}) stuck: delivery marker never clears");
                }
            }
        }
    }

    /// Lifts a [`pause_rank`](DeliveryEngine::pause_rank) fence.
    pub fn unpause_rank(&self, rank: Rank) {
        self.paused[rank].store(false, Ordering::SeqCst);
    }

    /// Marks `rank` as down (supervised kill) or back up (recovery).
    /// While down, every message to or from the rank is dropped (cause 2),
    /// exactly like a [`FaultPlan`] kill window — but driven by the
    /// supervisor at a deterministic point in the run rather than a
    /// wall-clock offset. On `down = true` the call does not return until
    /// any in-flight delivery to the rank has finished, so the caller can
    /// immediately snapshot or roll back the rank's state without racing a
    /// handler. Transitions emit `RankDown`/`RankRestored` trace events and
    /// notify [`on_rank_event`] listeners.
    ///
    /// [`FaultPlan`]: crate::FaultPlan
    /// [`on_rank_event`]: DeliveryEngine::on_rank_event
    pub fn set_rank_down(&self, rank: Rank, down: bool) {
        self.set_rank_state(rank, down, 0);
    }

    /// [`set_rank_down`]`(rank, false)`, but the `RankRestored` trace event
    /// carries the rank's renegotiated transport epoch so a trace viewer
    /// (and `trace_check`) can follow incarnations.
    ///
    /// [`set_rank_down`]: DeliveryEngine::set_rank_down
    pub fn set_rank_restored(&self, rank: Rank, epoch: u32) {
        self.set_rank_state(rank, false, epoch);
    }

    fn set_rank_state(&self, rank: Rank, down: bool, epoch: u32) {
        let was = self.down[rank].swap(down, Ordering::SeqCst);
        if was == down {
            return;
        }
        if down {
            // Wait out a handler currently delivering to this rank: after
            // this spin, no pre-kill message can mutate its state. SeqCst
            // pairs with the delivery-side marker store + down re-check.
            while self.delivering.load(Ordering::SeqCst) == rank as u64 + 1 {
                std::hint::spin_loop();
            }
        }
        let at_ns = clock::now_ns();
        if hiper_trace::enabled() {
            hiper_trace::emit_at(
                at_ns,
                if down {
                    EventKind::RankDown
                } else {
                    EventKind::RankRestored
                },
                rank as u64,
                epoch as u64,
                0,
            );
        }
        let event = if down {
            RankEvent::Down { rank, at_ns }
        } else {
            RankEvent::Restored { rank, at_ns }
        };
        for listener in self.rank_listeners.lock().iter() {
            listener(event);
        }
    }

    /// Injects a message; it will be delivered after the modeled delay.
    pub fn send(&self, msg: Message) {
        assert!(msg.dst < self.ranks, "destination rank out of range");
        let delay = self.config.delay(msg.src, msg.dst, msg.wire_bytes());
        #[cfg(feature = "slowmo")]
        let delay = slowmo::scale(msg.channel, delay);
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes
            .fetch_add(msg.wire_bytes() as u64, Ordering::Relaxed);
        let delay_ns = delay.as_nanos() as u64;
        // One clock read serves the trace emissions and the due-time
        // computation, so the exported timeline satisfies
        // `deliver ts = send ts + modeled delay (+ jitter/FIFO clamp)`
        // exactly, and the `MsgSend` causal edge shares the `NetSend`
        // timestamp (trace_check pairs them on it).
        let now = clock::now_ns();
        let traced = hiper_trace::enabled();
        let msg_id = if traced {
            NEXT_MSG_ID.fetch_add(1, Ordering::Relaxed)
        } else {
            0
        };
        if traced {
            hiper_trace::emit_at(
                now,
                EventKind::NetSend,
                link_word(msg.src, msg.dst),
                msg.wire_bytes() as u64,
                delay_ns,
            );
            hiper_trace::emit_at(
                now,
                EventKind::MsgSend,
                msg.span,
                link_word(msg.src, msg.dst),
                msg_id,
            );
        }
        // Supervised rank-down severing: independent of (and checked before)
        // the wall-clock fault plan, and deliberately not consuming a link
        // sequence number so the pure fault schedule stays aligned.
        if self.severed(msg.src) || self.severed(msg.dst) {
            self.drop_msg(&msg, 2);
            return;
        }
        let mut st = self.state.lock();
        let pair = (msg.src, msg.dst);

        // Fault injection: the fate of the link_seq-th message on this link
        // is a pure function of the plan seed, so chaos runs replay exactly.
        let mut decision = crate::FaultDecision::default();
        if let Some(plan) = &self.faults {
            let link_seq = {
                let c = st.link_seq.entry(pair).or_insert(0);
                let s = *c;
                *c += 1;
                s
            };
            if plan.link_down(msg.src, msg.dst, now.saturating_sub(self.epoch_ns)) {
                self.drop_msg(&msg, 2);
                return;
            }
            decision = plan.decide(msg.src, msg.dst, link_seq);
            if decision.drop {
                self.drop_msg(&msg, 1);
                return;
            }
        }

        let computed = now + delay_ns + decision.jitter_ns;
        // Per-link FIFO clamp — unless the fault decision lets this message
        // overtake (a reliable layer above must then resequence).
        let prev = st.last_due.get(&pair).copied().unwrap_or(0);
        let due = if prev > computed && !decision.reorder {
            prev
        } else {
            computed
        };
        st.last_due.insert(pair, due.max(prev));
        if decision.duplicate {
            self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
            if hiper_trace::enabled() {
                hiper_trace::emit(
                    EventKind::NetDup,
                    link_word(msg.src, msg.dst),
                    msg.wire_bytes() as u64,
                    0,
                );
            }
            let entry = InFlight {
                due: now + delay_ns + decision.dup_jitter_ns,
                seq: self.seq.fetch_add(1, Ordering::Relaxed),
                msg_id,
                msg: msg.clone(),
            };
            st.queue.push(Reverse(entry));
        }
        let entry = InFlight {
            due,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            msg_id,
            msg,
        };
        st.queue.push(Reverse(entry));
        if hiper_metrics::enabled() {
            in_flight_gauge().set(st.queue.len() as i64);
        }
        self.cond.notify_all();
    }

    /// Counts and traces a fault-injected loss (`cause`: 1 = random drop,
    /// 2 = partition/kill window, 3 = handler panic).
    fn drop_msg(&self, msg: &Message, cause: u64) {
        if crate::supervise::debug_enabled() {
            eprintln!(
                "[engine] drop src={} dst={} chan={} tag={:#x} cause={} down=[{}] paused=[{}]",
                msg.src,
                msg.dst,
                msg.channel.0,
                msg.tag,
                cause,
                self.down
                    .iter()
                    .map(|d| if d.load(Ordering::Relaxed) { '1' } else { '0' })
                    .collect::<String>(),
                self.paused
                    .iter()
                    .map(|d| if d.load(Ordering::Relaxed) { '1' } else { '0' })
                    .collect::<String>(),
            );
        }
        self.stats.dropped.fetch_add(1, Ordering::Relaxed);
        if hiper_trace::enabled() {
            hiper_trace::emit(
                EventKind::NetDrop,
                link_word(msg.src, msg.dst),
                msg.wire_bytes() as u64,
                cause,
            );
        }
    }

    /// Stops the engine, delivering nothing further, and joins its thread.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.cond.notify_all();
        if let Some(handle) = self.thread.lock().take() {
            let _ = handle.join();
        }
    }

    /// True once [`stop`](DeliveryEngine::stop) ran: nothing will ever be
    /// delivered again. Reliable-transport retry threads poll this to die
    /// with the cluster instead of burning their full retry budgets
    /// against a wire that no longer exists.
    pub fn is_stopped(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Messages still in flight (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.state.lock().queue.len()
    }

    fn run(self: &Arc<Self>) {
        loop {
            // Phase 1: pull one due message (or sleep until one is due).
            let delivery = {
                let mut st = self.state.lock();
                loop {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    let now = clock::now_ns();
                    match st.queue.peek() {
                        Some(Reverse(head)) if head.due <= now => {
                            let Reverse(entry) = st.queue.pop().unwrap();
                            if hiper_metrics::enabled() {
                                in_flight_gauge().set(st.queue.len() as i64);
                            }
                            let idx = entry.msg.dst * 256 + entry.msg.channel.0 as usize;
                            let handler = st.handlers[idx].clone();
                            break Some((entry.msg, handler, entry.due, entry.msg_id));
                        }
                        Some(Reverse(head)) => {
                            let wait = Duration::from_nanos(head.due - now);
                            self.cond.wait_for(&mut st, wait);
                        }
                        None => {
                            self.cond.wait_for(&mut st, Duration::from_millis(50));
                        }
                    }
                }
            };
            // Phase 2: run the handler outside the lock so handlers may
            // re-enter send().
            if let Some((msg, handler, due, msg_id)) = delivery {
                match handler {
                    Some(h) => {
                        // Publish "delivering to dst" before re-checking the
                        // down flags: paired SeqCst accesses in
                        // `set_rank_down` guarantee that either this thread
                        // sees the kill, or the killer waits for the
                        // handler — a queued message can never mutate a
                        // rank's state after `set_rank_down` returned.
                        self.delivering.store(msg.dst as u64 + 1, Ordering::SeqCst);
                        if self.severed(msg.src) || self.severed(msg.dst) {
                            self.delivering.store(0, Ordering::SeqCst);
                            self.drop_msg(&msg, 2);
                            continue;
                        }
                        if hiper_trace::enabled() {
                            // Stamped at the modeled due time (the engine
                            // drains at due + scheduling lateness; the
                            // *timeline* delivery is `due`). The exporter
                            // re-sorts globally, so the out-of-emit-order
                            // timestamp is harmless.
                            hiper_trace::emit_at(
                                due,
                                EventKind::NetDeliver,
                                link_word(msg.src, msg.dst),
                                msg.wire_bytes() as u64,
                                0,
                            );
                            hiper_trace::emit_at(
                                due,
                                EventKind::MsgDeliver,
                                msg.span,
                                link_word(msg.src, msg.dst),
                                msg_id,
                            );
                        }
                        // A panicking handler must not kill the delivery
                        // engine: the whole cluster would silently hang.
                        let info = (msg.src, msg.dst, msg.channel, msg.tag, msg.wire_bytes());
                        // Run the handler under the sender's span so any
                        // send or task spawn it performs (echo replies,
                        // SHMEM get/amo replies, acks) inherits the remote
                        // causal parent.
                        let span = msg.span;
                        let prev_span = hiper_trace::set_current_task(span);
                        let dbg = crate::supervise::debug_enabled();
                        if dbg {
                            *self.dbg_delivery.lock() = Some((
                                info.0,
                                info.1,
                                info.2 .0,
                                info.3,
                                std::time::Instant::now(),
                            ));
                        }
                        let result =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h(msg)));
                        // Clear the marker as soon as the handler is out of
                        // flight: pause_rank/set_rank_down spin on it, and a
                        // stale `dst + 1` from the *last* delivery would spin
                        // them forever once the queue drains idle.
                        self.delivering.store(0, Ordering::SeqCst);
                        if dbg {
                            *self.dbg_delivery.lock() = None;
                        }
                        hiper_trace::set_current_task(prev_span);
                        if result.is_err() {
                            let (src, dst, channel, tag, wire) = info;
                            self.stats.handler_panics.fetch_add(1, Ordering::Relaxed);
                            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                            if hiper_trace::enabled() {
                                hiper_trace::emit(
                                    EventKind::NetDrop,
                                    link_word(src, dst),
                                    wire as u64,
                                    3,
                                );
                            }
                            eprintln!(
                                "[hiper-netsim] delivery handler panicked; message dropped \
                                 (src={} dst={} channel={} tag={:#x})",
                                src, dst, channel.0, tag
                            );
                        }
                    }
                    None => {
                        // No handler yet: requeue briefly. This covers the
                        // startup race where rank 0 sends before rank N has
                        // registered its module handlers.
                        let entry = InFlight {
                            due: clock::now_ns() + 200_000,
                            seq: self.seq.fetch_add(1, Ordering::Relaxed),
                            msg_id,
                            msg,
                        };
                        let mut st = self.state.lock();
                        st.queue.push(Reverse(entry));
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for DeliveryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeliveryEngine")
            .field("ranks", &self.ranks)
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Channel;
    use bytes::Bytes;
    use std::time::Instant;

    fn msg(src: Rank, dst: Rank, tag: u64, len: usize) -> Message {
        Message {
            src,
            dst,
            channel: Channel::APP,
            tag,
            payload: Bytes::from(vec![0u8; len]),
            span: 0,
        }
    }

    #[test]
    fn delay_model() {
        let cfg = NetConfig {
            latency: Duration::from_micros(100),
            bandwidth: 1e6, // 1 MB/s
            self_latency: Duration::from_micros(1),
            ..NetConfig::instant()
        };
        // 1000 wire bytes at 1MB/s = 1ms.
        let d = cfg.delay(0, 1, 1000);
        assert!(d >= Duration::from_micros(1100) && d < Duration::from_micros(1200));
        assert!(cfg.delay(0, 0, 0) == Duration::from_micros(1));
        assert_eq!(NetConfig::instant().delay(0, 1, 1 << 20), Duration::ZERO);
    }

    #[test]
    fn delivers_to_registered_handler() {
        let engine = DeliveryEngine::start(2, NetConfig::instant());
        let (tx, rx) = std::sync::mpsc::channel();
        engine.register_handler(
            1,
            Channel::APP,
            Box::new(move |m| {
                tx.send(m.tag).unwrap();
            }),
        );
        engine.send(msg(0, 1, 42, 8));
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 42);
        engine.stop();
    }

    #[test]
    fn preserves_order_per_pair() {
        let engine = DeliveryEngine::start(2, NetConfig::default());
        let (tx, rx) = std::sync::mpsc::channel();
        engine.register_handler(
            1,
            Channel::APP,
            Box::new(move |m| {
                tx.send(m.tag).unwrap();
            }),
        );
        for i in 0..50 {
            engine.send(msg(0, 1, i, 16));
        }
        let got: Vec<u64> = (0..50)
            .map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap())
            .collect();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        engine.stop();
    }

    #[test]
    fn small_message_does_not_overtake_large_one() {
        // Regression: a 1 MB message followed by an empty one on the same
        // link. With bandwidth in the model, the small message's raw delay
        // is shorter — the engine must still deliver in send order.
        let cfg = NetConfig {
            latency: Duration::from_micros(10),
            bandwidth: 100.0e6, // 1MB -> 10ms
            self_latency: Duration::ZERO,
            ..NetConfig::instant()
        };
        let engine = DeliveryEngine::start(2, cfg);
        let (tx, rx) = std::sync::mpsc::channel();
        engine.register_handler(
            1,
            Channel::APP,
            Box::new(move |m| {
                tx.send(m.tag).unwrap();
            }),
        );
        engine.send(msg(0, 1, 1, 1 << 20));
        engine.send(msg(0, 1, 2, 0));
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 2);
        engine.stop();
    }

    #[test]
    fn latency_is_enforced_in_real_time() {
        let cfg = NetConfig {
            latency: Duration::from_millis(20),
            bandwidth: f64::INFINITY,
            self_latency: Duration::ZERO,
            ..NetConfig::instant()
        };
        let engine = DeliveryEngine::start(2, cfg);
        let (tx, rx) = std::sync::mpsc::channel();
        engine.register_handler(
            1,
            Channel::APP,
            Box::new(move |_| {
                tx.send(Instant::now()).unwrap();
            }),
        );
        let sent = Instant::now();
        engine.send(msg(0, 1, 0, 0));
        let arrived = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(
            arrived - sent >= Duration::from_millis(19),
            "latency not enforced: {:?}",
            arrived - sent
        );
        engine.stop();
    }

    #[test]
    fn unregistered_handler_message_survives_until_registration() {
        let engine = DeliveryEngine::start(2, NetConfig::instant());
        engine.send(msg(0, 1, 9, 0));
        std::thread::sleep(Duration::from_millis(5));
        let (tx, rx) = std::sync::mpsc::channel();
        engine.register_handler(
            1,
            Channel::APP,
            Box::new(move |m| {
                tx.send(m.tag).unwrap();
            }),
        );
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 9);
        engine.stop();
    }

    #[test]
    fn stats_count_traffic() {
        let engine = DeliveryEngine::start(2, NetConfig::instant());
        engine.register_handler(1, Channel::APP, Box::new(|_| {}));
        engine.send(msg(0, 1, 0, 100));
        engine.send(msg(0, 1, 1, 100));
        let snap = engine.stats.snapshot();
        assert_eq!(snap.messages, 2);
        assert_eq!(snap.bytes, 2 * 164);
        engine.stop();
    }

    #[test]
    fn handlers_may_reenter_send() {
        // A handler on rank 1 that forwards to rank 0 (ping-pong).
        let engine = DeliveryEngine::start(2, NetConfig::instant());
        let (tx, rx) = std::sync::mpsc::channel();
        {
            let engine2 = Arc::clone(&engine);
            engine.register_handler(
                1,
                Channel::APP,
                Box::new(move |m| {
                    engine2.send(Message {
                        src: 1,
                        dst: 0,
                        channel: Channel::APP,
                        tag: m.tag + 1,
                        payload: m.payload,
                        span: m.span,
                    });
                }),
            );
        }
        engine.register_handler(
            0,
            Channel::APP,
            Box::new(move |m| {
                tx.send(m.tag).unwrap();
            }),
        );
        engine.send(msg(0, 1, 10, 0));
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 11);
        engine.stop();
    }
}
