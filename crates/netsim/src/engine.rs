//! The delivery engine: in-flight messages wait in per-destination-rank
//! shards — each a hashed timing wheel — and a delivery thread hands each
//! to its destination handler once the modeled network delay has elapsed,
//! in *wall-clock* time, so blocking on communication costs real CPU
//! availability (DESIGN.md §2.2, §2.15).
//!
//! Two structural choices keep the hot path fast:
//!
//! * **Sharding by destination rank.** Senders lock only their target's
//!   shard, so concurrent senders to different ranks never serialize on a
//!   shared lock (the pre-§2.15 engine funneled every send through one
//!   mutex-protected global heap). Contention that does happen is counted
//!   in [`NetStats::shard_contention`].
//! * **Hashed timing wheel per shard.** Due times hash into 256 slots of
//!   ~16 µs; insert and pop of due messages are O(1)-ish instead of
//!   O(log n) heap churn, with a `BTreeMap` overflow for dues beyond the
//!   ~4 ms horizon. An `AtomicU64` per shard publishes its exact earliest
//!   due so the delivery thread picks the next shard without locking any.
//!
//! The delivery thread sleeps on a condvar only for far-out deadlines and
//! **spins for the last `HIPER_NET_SPIN_US`** (default 120 µs) before a
//! due time: OS timer slack on a condvar wait is tens of microseconds —
//! comparable to the modeled latencies themselves — and the spin removes
//! it from every delivery.
//!
//! All engine timekeeping runs on the shared trace clock
//! ([`hiper_trace::clock`]): due times are nanosecond offsets from the same
//! epoch the tracer stamps events with, so an exported timeline shows every
//! `NetDeliver` landing exactly `NetSend + modeled delay` later — no skew
//! between scheduler tracks and network tracks.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hiper_trace::clock;
use hiper_trace::EventKind;
use parking_lot::{Condvar, Mutex, RwLock};

use crate::message::{Message, Rank};

/// Deterministic per-channel delay scaling, for differential-profiling
/// self-tests: doubling one channel's modeled latency must surface as a
/// top-ranked attribution in `profile --diff`. Scales live in a global
/// table (millionths, so 2_000_000 = 2x) and multiply the modeled delay
/// before it reaches the timed wheel and the trace — the injected slowdown
/// is exactly what the exported timeline shows.
#[cfg(feature = "slowmo")]
pub mod slowmo {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    use crate::message::Channel;

    const UNIT: u64 = 1_000_000;
    const CHANNELS: usize = 4;

    static SCALES: [AtomicU64; CHANNELS] = [
        AtomicU64::new(UNIT),
        AtomicU64::new(UNIT),
        AtomicU64::new(UNIT),
        AtomicU64::new(UNIT),
    ];

    /// Sets the delay multiplier for one channel (1.0 = unmodified).
    /// Takes effect for messages sent after the call, process-wide.
    pub fn set_channel_scale(channel: Channel, scale: f64) {
        let fixed = (scale.max(0.0) * UNIT as f64) as u64;
        if let Some(slot) = SCALES.get(channel.0 as usize) {
            slot.store(fixed, Ordering::Relaxed);
        }
    }

    /// Restores every channel to 1.0.
    pub fn reset() {
        for slot in &SCALES {
            slot.store(UNIT, Ordering::Relaxed);
        }
    }

    pub(crate) fn scale(channel: Channel, delay: Duration) -> Duration {
        let fixed = SCALES
            .get(channel.0 as usize)
            .map_or(UNIT, |s| s.load(Ordering::Relaxed));
        if fixed == UNIT {
            return delay;
        }
        Duration::from_nanos(
            ((delay.as_nanos() as u64) as u128 * fixed as u128 / UNIT as u128) as u64,
        )
    }
}

/// Packs a (src, dst) pair into one trace-event payload word.
pub(crate) fn link_word(src: Rank, dst: Rank) -> u64 {
    ((src as u64) << 32) | dst as u64
}

/// Globally unique message-id allocator for `MsgSend`/`MsgDeliver` causal
/// edges (shared across engines so ids never collide within one trace).
static NEXT_MSG_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh causal-edge message id. The reliable layer uses this
/// to emit per-logical-message send/deliver pairs when one jumbo frame
/// carries several coalesced messages.
pub(crate) fn next_msg_id() -> u64 {
    NEXT_MSG_ID.fetch_add(1, Ordering::Relaxed)
}

/// Cached handle to the in-flight-messages gauge (queue depth across all
/// delivery shards; the peak value is the high-water mark of the run).
fn in_flight_gauge() -> &'static hiper_metrics::Gauge {
    static G: std::sync::OnceLock<&'static hiper_metrics::Gauge> = std::sync::OnceLock::new();
    G.get_or_init(|| hiper_metrics::gauge("hiper_netsim_in_flight"))
}

/// Network model parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// One-way latency between ranks on distinct nodes.
    pub latency: Duration,
    /// Link bandwidth in bytes/second (applied to `Message::wire_bytes`).
    pub bandwidth: f64,
    /// Latency for a rank sending to itself (loopback through the library).
    pub self_latency: Duration,
    /// Ranks per simulated node: ranks `r` and `s` with
    /// `r / ranks_per_node == s / ranks_per_node` communicate at
    /// `intra_latency` instead of `latency` (shared-memory transport, the
    /// reason flat-per-core SHMEM is cheap at small scale).
    pub ranks_per_node: usize,
    /// One-way latency between distinct ranks on the same node.
    pub intra_latency: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        // Roughly Cray-Aries-flavored numbers, scaled up so they dominate
        // scheduler noise on the simulation host: ~40us latency, 4 GB/s.
        NetConfig {
            latency: Duration::from_micros(40),
            bandwidth: 4.0e9,
            self_latency: Duration::from_micros(2),
            ranks_per_node: 1,
            intra_latency: Duration::from_micros(3),
        }
    }
}

impl NetConfig {
    /// An idealized instant network (useful in unit tests where timing is
    /// irrelevant).
    pub fn instant() -> NetConfig {
        NetConfig {
            latency: Duration::ZERO,
            bandwidth: f64::INFINITY,
            self_latency: Duration::ZERO,
            ranks_per_node: 1,
            intra_latency: Duration::ZERO,
        }
    }

    /// The modeled in-flight delay for a message.
    pub fn delay(&self, src: Rank, dst: Rank, wire_bytes: usize) -> Duration {
        let rpn = self.ranks_per_node.max(1);
        let base = if src == dst {
            self.self_latency
        } else if src / rpn == dst / rpn {
            self.intra_latency
        } else {
            self.latency
        };
        if self.bandwidth.is_finite() && self.bandwidth > 0.0 {
            base + Duration::from_secs_f64(wire_bytes as f64 / self.bandwidth)
        } else {
            base
        }
    }
}

/// Traffic counters.
#[derive(Debug, Default)]
pub struct NetStats {
    pub messages: AtomicU64,
    pub bytes: AtomicU64,
    /// Messages discarded: fault injection (random drops, partition/kill
    /// windows) plus messages lost to panicking handlers.
    pub dropped: AtomicU64,
    /// Extra copies injected by fault duplication.
    pub duplicated: AtomicU64,
    /// Delivery handlers that panicked (each also counts as one `dropped`).
    pub handler_panics: AtomicU64,
    /// Sends that found their destination shard's lock already held and
    /// had to block (contended delivery-shard acquisitions).
    pub shard_contention: AtomicU64,
}

/// Plain-data snapshot of [`NetStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    pub messages: u64,
    pub bytes: u64,
    pub dropped: u64,
    pub duplicated: u64,
    pub handler_panics: u64,
    pub shard_contention: u64,
}

impl NetStats {
    /// Point-in-time copy.
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            handler_panics: self.handler_panics.load(Ordering::Relaxed),
            shard_contention: self.shard_contention.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Display for NetStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "messages={} bytes={} dropped={} duplicated={} handler_panics={} shard_contention={}",
            self.messages,
            self.bytes,
            self.dropped,
            self.duplicated,
            self.handler_panics,
            self.shard_contention
        )
    }
}

/// Handler invoked (on the engine thread) when a message arrives at a rank.
pub type Handler = Box<dyn Fn(Message) + Send + Sync>;

/// A rank lifecycle transition driven through [`DeliveryEngine::set_rank_down`]
/// (supervised kills and recoveries). Listeners registered with
/// [`DeliveryEngine::on_rank_event`] — e.g. a runtime `Supervisor` — see
/// every transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankEvent {
    /// The rank went down at `at_ns` (trace-clock): all its traffic is
    /// dropped until it is restored.
    Down { rank: Rank, at_ns: u64 },
    /// The rank came back at `at_ns`.
    Restored { rank: Rank, at_ns: u64 },
}

/// Rank-event listener callback.
pub type RankListener = Box<dyn Fn(RankEvent) + Send + Sync>;

/// Callback run once when the engine stops. Reliable endpoints register
/// one to wake their retry/flush threads immediately instead of waiting
/// out a full backoff tick against a dead wire.
pub type StopHook = Box<dyn Fn() + Send + Sync>;

/// Debug marker for the delivery currently running: `(src, dst, channel,
/// seq-ish tag, started)`. Populated only under `HIPER_SUPERVISE_DEBUG`.
type DeliveryMark = (Rank, Rank, u8, u64, std::time::Instant);

struct InFlight {
    /// Delivery deadline, ns on the shared trace clock.
    due: u64,
    /// Global send order tiebreaker (FIFO among equal dues).
    seq: u64,
    /// Causal-edge message id (shared by fault-injected duplicate copies:
    /// both delivers refer to the same logical `MsgSend`). 0 = untraced.
    msg_id: u64,
    msg: Message,
}

/// Slots per wheel; with [`SLOT_NS`] this spans a ~4.2 ms horizon, well
/// past every modeled latency + jitter in the test grids. Longer dues go
/// to the overflow map and migrate in as the cursor advances.
const WHEEL_SLOTS: usize = 256;
/// Slot granularity in ns (2^14 ≈ 16.4 µs). Granularity does not bound
/// delivery precision: items are popped by their exact due time, the slot
/// only bounds how much of the structure a pop has to look at.
const SLOT_NS: u64 = 1 << 14;

/// A hashed timing wheel: due times hash into fixed-width slots, a cursor
/// chases the clock, and dues beyond the horizon wait in a sorted overflow
/// map. Pops return matured items in exact `(due, seq)` order — the
/// per-link FIFO guarantee needs pops to respect the monotone per-link
/// dues [`DeliveryEngine::send`] establishes.
struct TimingWheel {
    slots: Vec<Vec<InFlight>>,
    /// Items whose due lies beyond the wheel horizon, keyed `(due, seq)`.
    overflow: BTreeMap<(u64, u64), InFlight>,
    /// Absolute index (due / SLOT_NS) of the next un-drained slot.
    cursor: u64,
    /// Items currently in `slots`.
    wheel_len: usize,
    /// Items total (slots + overflow).
    len: usize,
}

impl TimingWheel {
    fn new(now: u64) -> TimingWheel {
        TimingWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            overflow: BTreeMap::new(),
            cursor: now / SLOT_NS,
            wheel_len: 0,
            len: 0,
        }
    }

    fn insert(&mut self, entry: InFlight) {
        self.len += 1;
        let slot = entry.due / SLOT_NS;
        if slot >= self.cursor + WHEEL_SLOTS as u64 {
            self.overflow.insert((entry.due, entry.seq), entry);
        } else {
            // Past-due entries (slot < cursor) land in the cursor slot so
            // the next pop finds them immediately.
            let idx = (slot.max(self.cursor) % WHEEL_SLOTS as u64) as usize;
            self.slots[idx].push(entry);
            self.wheel_len += 1;
        }
    }

    /// Migrates overflow items that entered the horizon into the wheel.
    fn refill(&mut self) {
        let horizon = (self.cursor + WHEEL_SLOTS as u64) * SLOT_NS;
        while let Some((&(due, _), _)) = self.overflow.iter().next() {
            if due >= horizon {
                break;
            }
            let key = *self.overflow.keys().next().unwrap();
            let entry = self.overflow.remove(&key).unwrap();
            let idx = ((entry.due / SLOT_NS).max(self.cursor) % WHEEL_SLOTS as u64) as usize;
            self.slots[idx].push(entry);
            self.wheel_len += 1;
        }
    }

    /// Pops the matured item with the smallest `(due, seq)`, or `None`
    /// when nothing is due at `now`. Never returns an item early.
    fn pop_due(&mut self, now: u64) -> Option<InFlight> {
        loop {
            if self.wheel_len == 0 {
                // Fast-forward an empty wheel (idle gaps must not cost a
                // slot-by-slot walk) and pull newly in-horizon overflow.
                let target = now / SLOT_NS;
                if target > self.cursor {
                    self.cursor = target;
                }
                self.refill();
                if self.wheel_len == 0 {
                    return None;
                }
            }
            let slot_start = self.cursor * SLOT_NS;
            if slot_start > now {
                return None;
            }
            let idx = (self.cursor % WHEEL_SLOTS as u64) as usize;
            // Matured minimum within the current slot. Entries from future
            // wheel turns share the slot and are skipped by the due check.
            let mut best: Option<usize> = None;
            for (i, e) in self.slots[idx].iter().enumerate() {
                if e.due <= now {
                    let better = match best {
                        Some(b) => {
                            (e.due, e.seq) < (self.slots[idx][b].due, self.slots[idx][b].seq)
                        }
                        None => true,
                    };
                    if better {
                        best = Some(i);
                    }
                }
            }
            if let Some(i) = best {
                self.wheel_len -= 1;
                self.len -= 1;
                return Some(self.slots[idx].swap_remove(i));
            }
            if slot_start + SLOT_NS <= now {
                // Slot fully in the past and nothing matured: whatever
                // remains belongs to future turns — advance.
                self.cursor += 1;
                self.refill();
                continue;
            }
            return None;
        }
    }

    /// Exact earliest due across wheel and overflow (`u64::MAX` if empty).
    fn earliest(&self) -> u64 {
        let mut min = self
            .overflow
            .keys()
            .next()
            .map_or(u64::MAX, |&(due, _)| due);
        if self.wheel_len > 0 {
            for slot in &self.slots {
                for e in slot {
                    min = min.min(e.due);
                }
            }
        }
        min
    }
}

/// Mutable per-destination delivery state.
struct ShardState {
    wheel: TimingWheel,
    /// Latest delivery time scheduled per source rank onto this shard's
    /// destination (trace-clock ns). A message may never be delivered
    /// before an earlier message on the same link, even if it is much
    /// smaller — the per-pair FIFO guarantee communication modules (SHMEM
    /// put ordering, MPI non-overtaking) depend on.
    last_due: HashMap<Rank, u64>,
    /// Per-source send counter: the replayable "message index" that
    /// [`FaultPlan::decide`](crate::FaultPlan::decide) keys its fault
    /// schedule on.
    link_seq: HashMap<Rank, u64>,
}

/// One destination rank's slice of the delivery queue.
struct Shard {
    state: Mutex<ShardState>,
    /// Exact earliest due among this shard's queued entries (`u64::MAX`
    /// when empty): `fetch_min`ed by senders, recomputed after pops, read
    /// lock-free by the delivery thread to pick the next shard.
    earliest: AtomicU64,
}

/// The delivery engine shared by all ranks of one cluster.
pub struct DeliveryEngine {
    config: NetConfig,
    ranks: usize,
    /// Armed fault plan, if any (`None` = perfectly reliable wire).
    faults: Option<crate::FaultPlan>,
    /// Trace-clock ns at engine start; fault windows are offsets from here.
    epoch_ns: u64,
    /// Per-destination-rank delivery shards.
    shards: Vec<Shard>,
    /// Per-(dst, channel) handlers; index = dst * 256 + channel.
    /// Registration is rare, delivery reads are constant — an RwLock keeps
    /// the read side off the senders' shard locks entirely.
    handlers: RwLock<Vec<Option<Arc<Handler>>>>,
    /// Delivery-thread sleep coordination: the thread publishes the due
    /// time it sleeps toward in `sleep_target` (0 = awake, `u64::MAX` =
    /// idle wait); a sender whose new due undercuts it notifies `cond`
    /// under `sleep_mx`.
    sleep_mx: Mutex<()>,
    cond: Condvar,
    sleep_target: AtomicU64,
    /// Spin window: dues closer than this are awaited by spinning on the
    /// trace clock instead of a condvar wait (whose OS timer slack is
    /// comparable to the modeled latencies). `HIPER_NET_SPIN_US`.
    spin_ns: u64,
    seq: AtomicU64,
    in_flight: AtomicU64,
    shutdown: AtomicBool,
    /// Per-rank supervised-down flags ([`set_rank_down`]); traffic to or
    /// from a down rank is dropped (cause 2), independent of any
    /// time-windowed [`FaultPlan`] kill.
    ///
    /// [`set_rank_down`]: DeliveryEngine::set_rank_down
    down: Vec<AtomicBool>,
    /// Like `down`, but *silent*: no trace events, no listener
    /// notifications, and messages dropped in the window are expected to
    /// be retransmitted by a reliable layer. [`pause_rank`] uses this to
    /// carve an atomic cut for checkpoint snapshots (no handler can mutate
    /// the rank's state while paused).
    ///
    /// [`pause_rank`]: DeliveryEngine::pause_rank
    paused: Vec<AtomicBool>,
    /// `dst + 1` while a delivery handler is running (0 = idle):
    /// `set_rank_down` waits on it so that once the call returns, no
    /// handler for the dead rank is still mid-delivery.
    delivering: AtomicU64,
    dbg_delivery: Mutex<Option<DeliveryMark>>,
    rank_listeners: Mutex<Vec<RankListener>>,
    stop_hooks: Mutex<Vec<StopHook>>,
    pub stats: NetStats,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl DeliveryEngine {
    /// Creates an engine for `ranks` ranks and starts its delivery thread.
    pub fn start(ranks: usize, config: NetConfig) -> Arc<DeliveryEngine> {
        Self::start_with_faults(ranks, config, None)
    }

    /// Creates an engine with an armed fault plan. An inactive plan
    /// ([`FaultPlan::is_active`] false) behaves exactly like `start`.
    pub fn start_with_faults(
        ranks: usize,
        config: NetConfig,
        faults: Option<crate::FaultPlan>,
    ) -> Arc<DeliveryEngine> {
        let faults = faults.filter(|p| p.is_active());
        let now = clock::now_ns();
        let spin_ns = std::env::var("HIPER_NET_SPIN_US")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(120)
            .saturating_mul(1_000);
        let engine = Arc::new(DeliveryEngine {
            config,
            ranks,
            faults,
            epoch_ns: now,
            shards: (0..ranks)
                .map(|_| Shard {
                    state: Mutex::new(ShardState {
                        wheel: TimingWheel::new(now),
                        last_due: HashMap::new(),
                        link_seq: HashMap::new(),
                    }),
                    earliest: AtomicU64::new(u64::MAX),
                })
                .collect(),
            handlers: RwLock::new(vec![None; ranks * 256]),
            sleep_mx: Mutex::new(()),
            cond: Condvar::new(),
            sleep_target: AtomicU64::new(0),
            spin_ns,
            seq: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            down: (0..ranks).map(|_| AtomicBool::new(false)).collect(),
            paused: (0..ranks).map(|_| AtomicBool::new(false)).collect(),
            delivering: AtomicU64::new(0),
            dbg_delivery: Mutex::new(None),
            rank_listeners: Mutex::new(Vec::new()),
            stop_hooks: Mutex::new(Vec::new()),
            stats: NetStats::default(),
            thread: Mutex::new(None),
        });
        let engine2 = Arc::clone(&engine);
        let handle = std::thread::Builder::new()
            .name("hiper-netsim".into())
            .spawn(move || engine2.run())
            .expect("failed to spawn delivery engine");
        *engine.thread.lock() = Some(handle);
        if crate::supervise::debug_enabled() {
            let weak = Arc::downgrade(&engine);
            std::thread::spawn(move || loop {
                std::thread::sleep(std::time::Duration::from_millis(500));
                let Some(e) = weak.upgrade() else { return };
                let snap = *e.dbg_delivery.lock();
                if let Some((src, dst, chan, tag, t0)) = snap {
                    if t0.elapsed() > std::time::Duration::from_secs(1) {
                        eprintln!(
                            "[engine] STUCK delivery src={} dst={} chan={} tag={:#x} for {:?}",
                            src,
                            dst,
                            chan,
                            tag,
                            t0.elapsed()
                        );
                    }
                }
            });
        }
        engine
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The network model in force.
    pub fn config(&self) -> NetConfig {
        self.config
    }

    /// The armed fault plan, if any. Reliable transports consult this to
    /// decide whether to arm acking/retry (pass-through on `None`).
    pub fn fault_plan(&self) -> Option<&crate::FaultPlan> {
        self.faults.as_ref()
    }

    /// Registers the handler for (`rank`, `channel`). Replaces any previous
    /// handler.
    pub fn register_handler(&self, rank: Rank, channel: crate::Channel, handler: Handler) {
        self.handlers.write()[rank * 256 + channel.0 as usize] = Some(Arc::new(handler));
    }

    /// Registers a listener for supervised rank lifecycle transitions.
    pub fn on_rank_event(&self, f: impl Fn(RankEvent) + Send + Sync + 'static) {
        self.rank_listeners.lock().push(Box::new(f));
    }

    /// Registers a callback to run when [`stop`](DeliveryEngine::stop)
    /// fires. Reliable endpoints hang their retry-thread condvar wakeup
    /// here so a stopped cluster kills its retry/flush threads immediately
    /// rather than after their next backoff tick.
    pub fn on_stop(&self, f: impl Fn() + Send + Sync + 'static) {
        self.stop_hooks.lock().push(Box::new(f));
    }

    /// Drops every rank-event listener. Supervised-run teardown: a
    /// listener closure typically holds the supervisor harness, which
    /// holds this engine — clearing the vector breaks the reference cycle
    /// so both (and the reliable endpoints the harness stores, along with
    /// their retry threads) can actually drop when the run ends.
    pub fn clear_rank_listeners(&self) {
        self.rank_listeners.lock().clear();
    }

    /// Drops every registered delivery handler. Only valid once the engine
    /// is stopped: handler closures commonly capture the endpoint that
    /// registered them (endpoint → transport → engine → handler → endpoint
    /// is a reference cycle), so teardown must break the table or every
    /// endpoint of the run leaks for the life of the process.
    pub fn clear_handlers(&self) {
        debug_assert!(self.is_stopped(), "clear_handlers on a live engine");
        let mut table = self.handlers.write();
        for slot in table.iter_mut() {
            *slot = None;
        }
    }

    /// True while `rank` is marked down by [`set_rank_down`].
    ///
    /// [`set_rank_down`]: DeliveryEngine::set_rank_down
    pub fn rank_down(&self, rank: Rank) -> bool {
        self.down[rank].load(Ordering::Acquire)
    }

    /// True when traffic touching `rank` must be dropped (down or paused).
    #[inline]
    fn severed(&self, rank: Rank) -> bool {
        self.down[rank].load(Ordering::SeqCst) || self.paused[rank].load(Ordering::SeqCst)
    }

    /// Silently fences `rank` off the network: returns only when no
    /// delivery handler for the rank is mid-flight, and until
    /// [`unpause_rank`] every message to or from it is dropped. Unlike
    /// [`set_rank_down`] this emits no trace events — it exists so a
    /// checkpoint can capture transport watermarks and application state
    /// as one consistent cut; dropped frames are retransmitted by the
    /// reliable layer afterwards. Keep the window short.
    ///
    /// [`unpause_rank`]: DeliveryEngine::unpause_rank
    /// [`set_rank_down`]: DeliveryEngine::set_rank_down
    pub fn pause_rank(&self, rank: Rank) {
        if !self.paused[rank].swap(true, Ordering::SeqCst) {
            let mut spins = 0u64;
            while self.delivering.load(Ordering::SeqCst) == rank as u64 + 1 {
                std::hint::spin_loop();
                spins += 1;
                if spins == 100_000_000 && crate::supervise::debug_enabled() {
                    eprintln!("[engine] pause_rank({rank}) stuck: delivery marker never clears");
                }
            }
        }
    }

    /// Lifts a [`pause_rank`](DeliveryEngine::pause_rank) fence.
    pub fn unpause_rank(&self, rank: Rank) {
        self.paused[rank].store(false, Ordering::SeqCst);
    }

    /// Marks `rank` as down (supervised kill) or back up (recovery).
    /// While down, every message to or from the rank is dropped (cause 2),
    /// exactly like a [`FaultPlan`] kill window — but driven by the
    /// supervisor at a deterministic point in the run rather than a
    /// wall-clock offset. On `down = true` the call does not return until
    /// any in-flight delivery to the rank has finished, so the caller can
    /// immediately snapshot or roll back the rank's state without racing a
    /// handler. Transitions emit `RankDown`/`RankRestored` trace events and
    /// notify [`on_rank_event`] listeners.
    ///
    /// [`FaultPlan`]: crate::FaultPlan
    /// [`on_rank_event`]: DeliveryEngine::on_rank_event
    pub fn set_rank_down(&self, rank: Rank, down: bool) {
        self.set_rank_state(rank, down, 0);
    }

    /// [`set_rank_down`]`(rank, false)`, but the `RankRestored` trace event
    /// carries the rank's renegotiated transport epoch so a trace viewer
    /// (and `trace_check`) can follow incarnations.
    ///
    /// [`set_rank_down`]: DeliveryEngine::set_rank_down
    pub fn set_rank_restored(&self, rank: Rank, epoch: u32) {
        self.set_rank_state(rank, false, epoch);
    }

    fn set_rank_state(&self, rank: Rank, down: bool, epoch: u32) {
        let was = self.down[rank].swap(down, Ordering::SeqCst);
        if was == down {
            return;
        }
        if down {
            // Wait out a handler currently delivering to this rank: after
            // this spin, no pre-kill message can mutate its state. SeqCst
            // pairs with the delivery-side marker store + down re-check.
            while self.delivering.load(Ordering::SeqCst) == rank as u64 + 1 {
                std::hint::spin_loop();
            }
        }
        let at_ns = clock::now_ns();
        if hiper_trace::enabled() {
            hiper_trace::emit_at(
                at_ns,
                if down {
                    EventKind::RankDown
                } else {
                    EventKind::RankRestored
                },
                rank as u64,
                epoch as u64,
                0,
            );
        }
        let event = if down {
            RankEvent::Down { rank, at_ns }
        } else {
            RankEvent::Restored { rank, at_ns }
        };
        for listener in self.rank_listeners.lock().iter() {
            listener(event);
        }
    }

    /// Injects a message; it will be delivered after the modeled delay.
    pub fn send(&self, msg: Message) {
        assert!(msg.dst < self.ranks, "destination rank out of range");
        let delay = self.config.delay(msg.src, msg.dst, msg.wire_bytes());
        #[cfg(feature = "slowmo")]
        let delay = slowmo::scale(msg.channel, delay);
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes
            .fetch_add(msg.wire_bytes() as u64, Ordering::Relaxed);
        let delay_ns = delay.as_nanos() as u64;
        // One clock read serves the trace emissions and the due-time
        // computation, so the exported timeline satisfies
        // `deliver ts = send ts + modeled delay (+ jitter/FIFO clamp)`
        // exactly, and the `MsgSend` causal edge shares the `NetSend`
        // timestamp (trace_check pairs them on it).
        let now = clock::now_ns();
        let traced = hiper_trace::enabled();
        let msg_id = if traced { next_msg_id() } else { 0 };
        if traced {
            hiper_trace::emit_at(
                now,
                EventKind::NetSend,
                link_word(msg.src, msg.dst),
                msg.wire_bytes() as u64,
                delay_ns,
            );
            hiper_trace::emit_at(
                now,
                EventKind::MsgSend,
                msg.span,
                link_word(msg.src, msg.dst),
                msg_id,
            );
        }
        // Supervised rank-down severing: independent of (and checked before)
        // the wall-clock fault plan, and deliberately not consuming a link
        // sequence number so the pure fault schedule stays aligned.
        if self.severed(msg.src) || self.severed(msg.dst) {
            self.drop_msg(&msg, 2);
            return;
        }
        let src = msg.src;
        let shard = &self.shards[msg.dst];
        let mut queued = 1u64;
        let earliest = {
            let mut st = match shard.state.try_lock() {
                Some(guard) => guard,
                None => {
                    self.stats.shard_contention.fetch_add(1, Ordering::Relaxed);
                    shard.state.lock()
                }
            };

            // Fault injection: the fate of the link_seq-th message on this
            // link is a pure function of the plan seed, so chaos runs
            // replay exactly.
            let mut decision = crate::FaultDecision::default();
            if let Some(plan) = &self.faults {
                let link_seq = {
                    let c = st.link_seq.entry(src).or_insert(0);
                    let s = *c;
                    *c += 1;
                    s
                };
                if plan.link_down(msg.src, msg.dst, now.saturating_sub(self.epoch_ns)) {
                    drop(st);
                    self.drop_msg(&msg, 2);
                    return;
                }
                decision = plan.decide(msg.src, msg.dst, link_seq);
                if decision.drop {
                    drop(st);
                    self.drop_msg(&msg, 1);
                    return;
                }
            }

            let computed = now + delay_ns + decision.jitter_ns;
            // Per-link FIFO clamp — unless the fault decision lets this
            // message overtake (a reliable layer above must then
            // resequence).
            let prev = st.last_due.get(&src).copied().unwrap_or(0);
            let due = if prev > computed && !decision.reorder {
                prev
            } else {
                computed
            };
            st.last_due.insert(src, due.max(prev));
            let mut earliest = due;
            if decision.duplicate {
                self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
                if hiper_trace::enabled() {
                    hiper_trace::emit(
                        EventKind::NetDup,
                        link_word(msg.src, msg.dst),
                        msg.wire_bytes() as u64,
                        0,
                    );
                }
                let dup_due = now + delay_ns + decision.dup_jitter_ns;
                earliest = earliest.min(dup_due);
                queued += 1;
                st.wheel.insert(InFlight {
                    due: dup_due,
                    seq: self.seq.fetch_add(1, Ordering::Relaxed),
                    msg_id,
                    msg: msg.clone(),
                });
            }
            st.wheel.insert(InFlight {
                due,
                seq: self.seq.fetch_add(1, Ordering::Relaxed),
                msg_id,
                msg,
            });
            shard.earliest.fetch_min(earliest, Ordering::SeqCst);
            // Counted under the shard lock: the delivery thread decrements
            // under the same lock, so the gauge can never underflow even
            // if the pop races ahead of this send's unlock.
            self.in_flight.fetch_add(queued, Ordering::Relaxed);
            earliest
        };
        if hiper_metrics::enabled() {
            in_flight_gauge().set(self.in_flight.load(Ordering::Relaxed) as i64);
        }
        // Wake the delivery thread only when this due undercuts the
        // deadline it is sleeping toward (0 = awake: no wake needed).
        // Notifying under `sleep_mx` closes the race with a thread that
        // has published its target but not yet parked.
        if earliest < self.sleep_target.load(Ordering::SeqCst) {
            let _g = self.sleep_mx.lock();
            self.cond.notify_all();
        }
    }

    /// Counts and traces a fault-injected loss (`cause`: 1 = random drop,
    /// 2 = partition/kill window, 3 = handler panic).
    fn drop_msg(&self, msg: &Message, cause: u64) {
        if crate::supervise::debug_enabled() {
            eprintln!(
                "[engine] drop src={} dst={} chan={} tag={:#x} cause={} down=[{}] paused=[{}]",
                msg.src,
                msg.dst,
                msg.channel.0,
                msg.tag,
                cause,
                self.down
                    .iter()
                    .map(|d| if d.load(Ordering::Relaxed) { '1' } else { '0' })
                    .collect::<String>(),
                self.paused
                    .iter()
                    .map(|d| if d.load(Ordering::Relaxed) { '1' } else { '0' })
                    .collect::<String>(),
            );
        }
        self.stats.dropped.fetch_add(1, Ordering::Relaxed);
        if hiper_trace::enabled() {
            hiper_trace::emit(
                EventKind::NetDrop,
                link_word(msg.src, msg.dst),
                msg.wire_bytes() as u64,
                cause,
            );
        }
    }

    /// Stops the engine, delivering nothing further, runs the stop hooks,
    /// and joins its thread.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        {
            let _g = self.sleep_mx.lock();
            self.cond.notify_all();
        }
        let hooks = std::mem::take(&mut *self.stop_hooks.lock());
        for hook in &hooks {
            hook();
        }
        if let Some(handle) = self.thread.lock().take() {
            let _ = handle.join();
        }
    }

    /// True once [`stop`](DeliveryEngine::stop) ran: nothing will ever be
    /// delivered again. Reliable-transport retry threads poll this to die
    /// with the cluster instead of burning their full retry budgets
    /// against a wire that no longer exists.
    pub fn is_stopped(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Messages still in flight (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed) as usize
    }

    /// Smallest published due across all shards, and its shard index.
    fn min_earliest(&self) -> (u64, usize) {
        let mut best = u64::MAX;
        let mut at = usize::MAX;
        for (i, shard) in self.shards.iter().enumerate() {
            let e = shard.earliest.load(Ordering::SeqCst);
            if e < best {
                best = e;
                at = i;
            }
        }
        (best, at)
    }

    /// Parks the delivery thread until `target` (or a nominal idle tick
    /// when `None`), unless a closer due appears between the last scan and
    /// the park — the publish-then-reverify handshake with senders.
    fn sleep_until(&self, target: Option<u64>) {
        let mut g = self.sleep_mx.lock();
        let t = target.unwrap_or(u64::MAX);
        self.sleep_target.store(t, Ordering::SeqCst);
        let (min, _) = self.min_earliest();
        if self.shutdown.load(Ordering::SeqCst) || min < t {
            self.sleep_target.store(0, Ordering::SeqCst);
            return;
        }
        match target {
            Some(t) => {
                let now = clock::now_ns();
                if t > now {
                    self.cond.wait_for(&mut g, Duration::from_nanos(t - now));
                }
            }
            None => {
                self.cond.wait_for(&mut g, Duration::from_millis(50));
            }
        }
        self.sleep_target.store(0, Ordering::SeqCst);
    }

    fn run(self: &Arc<Self>) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let (mut best_due, mut best_shard) = self.min_earliest();
            if best_due == u64::MAX {
                self.sleep_until(None);
                continue;
            }
            let now = clock::now_ns();
            if best_due > now {
                if best_due - now > self.spin_ns {
                    // Far out: condvar-sleep to within the spin window
                    // (the wait's timer slack lands inside it), then spin.
                    self.sleep_until(Some(best_due - self.spin_ns));
                    continue;
                }
                // Near-due: spin on the shared clock. A condvar wait here
                // would overshoot by the OS timer slack — tens of µs,
                // i.e. the size of the modeled latency itself.
                let mut spins = 0u32;
                loop {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    if clock::now_ns() >= best_due {
                        break;
                    }
                    std::hint::spin_loop();
                    spins = spins.wrapping_add(1);
                    if spins & 31 == 0 {
                        // Pick up a newly sent, earlier-due message.
                        let (d, s) = self.min_earliest();
                        if d < best_due {
                            best_due = d;
                            best_shard = s;
                        }
                    }
                }
            }
            // Pop the matured head of the chosen shard and republish its
            // exact earliest.
            let now = clock::now_ns();
            let popped = {
                let shard = &self.shards[best_shard];
                let mut st = shard.state.lock();
                let entry = st.wheel.pop_due(now);
                shard.earliest.store(st.wheel.earliest(), Ordering::SeqCst);
                if entry.is_some() {
                    self.in_flight.fetch_sub(1, Ordering::Relaxed);
                }
                entry
            };
            let Some(entry) = popped else { continue };
            if hiper_metrics::enabled() {
                in_flight_gauge().set(self.in_flight.load(Ordering::Relaxed) as i64);
            }
            let InFlight {
                due,
                mut msg,
                msg_id,
                ..
            } = entry;
            let handler = {
                let table = self.handlers.read();
                table[msg.dst * 256 + msg.channel.0 as usize].clone()
            };
            // Run the handler outside all locks so handlers may re-enter
            // send().
            match handler {
                Some(h) => {
                    // Publish "delivering to dst" before re-checking the
                    // down flags: paired SeqCst accesses in
                    // `set_rank_down` guarantee that either this thread
                    // sees the kill, or the killer waits for the
                    // handler — a queued message can never mutate a
                    // rank's state after `set_rank_down` returned.
                    self.delivering.store(msg.dst as u64 + 1, Ordering::SeqCst);
                    if self.severed(msg.src) || self.severed(msg.dst) {
                        self.delivering.store(0, Ordering::SeqCst);
                        self.drop_msg(&msg, 2);
                        continue;
                    }
                    if hiper_trace::enabled() {
                        // Stamped at the modeled due time (the engine
                        // drains at due + scheduling lateness; the
                        // *timeline* delivery is `due`). The exporter
                        // re-sorts globally, so the out-of-emit-order
                        // timestamp is harmless.
                        hiper_trace::emit_at(
                            due,
                            EventKind::NetDeliver,
                            link_word(msg.src, msg.dst),
                            msg.wire_bytes() as u64,
                            0,
                        );
                        hiper_trace::emit_at(
                            due,
                            EventKind::MsgDeliver,
                            msg.span,
                            link_word(msg.src, msg.dst),
                            msg_id,
                        );
                    }
                    // A panicking handler must not kill the delivery
                    // engine: the whole cluster would silently hang.
                    let info = (msg.src, msg.dst, msg.channel, msg.tag, msg.wire_bytes());
                    // Run the handler under the sender's span so any
                    // send or task spawn it performs (echo replies,
                    // SHMEM get/amo replies, acks) inherits the remote
                    // causal parent.
                    let span = msg.span;
                    let prev_span = hiper_trace::set_current_task(span);
                    let dbg = crate::supervise::debug_enabled();
                    if dbg {
                        *self.dbg_delivery.lock() =
                            Some((info.0, info.1, info.2 .0, info.3, std::time::Instant::now()));
                    }
                    // Stamp the modeled deadline so layered protocols can
                    // timestamp logical sub-messages they unpack.
                    msg.due_ns = due;
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h(msg)));
                    // Clear the marker as soon as the handler is out of
                    // flight: pause_rank/set_rank_down spin on it, and a
                    // stale `dst + 1` from the *last* delivery would spin
                    // them forever once the queue drains idle.
                    self.delivering.store(0, Ordering::SeqCst);
                    if dbg {
                        *self.dbg_delivery.lock() = None;
                    }
                    hiper_trace::set_current_task(prev_span);
                    if result.is_err() {
                        let (src, dst, channel, tag, wire) = info;
                        self.stats.handler_panics.fetch_add(1, Ordering::Relaxed);
                        self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                        if hiper_trace::enabled() {
                            hiper_trace::emit(
                                EventKind::NetDrop,
                                link_word(src, dst),
                                wire as u64,
                                3,
                            );
                        }
                        eprintln!(
                            "[hiper-netsim] delivery handler panicked; message dropped \
                             (src={} dst={} channel={} tag={:#x})",
                            src, dst, channel.0, tag
                        );
                    }
                }
                None => {
                    // No handler yet: requeue briefly. This covers the
                    // startup race where rank 0 sends before rank N has
                    // registered its module handlers.
                    let due = clock::now_ns() + 200_000;
                    let shard = &self.shards[msg.dst];
                    let mut st = shard.state.lock();
                    st.wheel.insert(InFlight {
                        due,
                        seq: self.seq.fetch_add(1, Ordering::Relaxed),
                        msg_id,
                        msg,
                    });
                    shard.earliest.fetch_min(due, Ordering::SeqCst);
                    self.in_flight.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

impl std::fmt::Debug for DeliveryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeliveryEngine")
            .field("ranks", &self.ranks)
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Channel;
    use bytes::Bytes;
    use std::time::Instant;

    fn msg(src: Rank, dst: Rank, tag: u64, len: usize) -> Message {
        Message::new(src, dst, Channel::APP, tag, Bytes::from(vec![0u8; len]))
    }

    #[test]
    fn delay_model() {
        let cfg = NetConfig {
            latency: Duration::from_micros(100),
            bandwidth: 1e6, // 1 MB/s
            self_latency: Duration::from_micros(1),
            ..NetConfig::instant()
        };
        // 1000 wire bytes at 1MB/s = 1ms.
        let d = cfg.delay(0, 1, 1000);
        assert!(d >= Duration::from_micros(1100) && d < Duration::from_micros(1200));
        assert!(cfg.delay(0, 0, 0) == Duration::from_micros(1));
        assert_eq!(NetConfig::instant().delay(0, 1, 1 << 20), Duration::ZERO);
    }

    #[test]
    fn wheel_orders_and_never_pops_early() {
        let mut wheel = TimingWheel::new(0);
        let mk = |due: u64, seq: u64| InFlight {
            due,
            seq,
            msg_id: 0,
            msg: msg(0, 1, seq, 0),
        };
        // Includes an overflow-horizon due and two equal dues (seq order).
        wheel.insert(mk(50_000, 1));
        wheel.insert(mk(10_000, 2));
        wheel.insert(mk(10_000, 3));
        wheel.insert(mk(100_000_000, 4));
        assert_eq!(wheel.earliest(), 10_000);
        assert!(wheel.pop_due(9_999).is_none());
        let order: Vec<u64> =
            std::iter::from_fn(|| wheel.pop_due(200_000_000).map(|e| e.seq)).collect();
        assert_eq!(order, vec![2, 3, 1, 4]);
        assert_eq!(wheel.earliest(), u64::MAX);
    }

    #[test]
    fn delivers_to_registered_handler() {
        let engine = DeliveryEngine::start(2, NetConfig::instant());
        let (tx, rx) = std::sync::mpsc::channel();
        engine.register_handler(
            1,
            Channel::APP,
            Box::new(move |m| {
                tx.send(m.tag).unwrap();
            }),
        );
        engine.send(msg(0, 1, 42, 8));
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 42);
        engine.stop();
    }

    #[test]
    fn preserves_order_per_pair() {
        let engine = DeliveryEngine::start(2, NetConfig::default());
        let (tx, rx) = std::sync::mpsc::channel();
        engine.register_handler(
            1,
            Channel::APP,
            Box::new(move |m| {
                tx.send(m.tag).unwrap();
            }),
        );
        for i in 0..50 {
            engine.send(msg(0, 1, i, 16));
        }
        let got: Vec<u64> = (0..50)
            .map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap())
            .collect();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        engine.stop();
    }

    #[test]
    fn small_message_does_not_overtake_large_one() {
        // Regression: a 1 MB message followed by an empty one on the same
        // link. With bandwidth in the model, the small message's raw delay
        // is shorter — the engine must still deliver in send order.
        let cfg = NetConfig {
            latency: Duration::from_micros(10),
            bandwidth: 100.0e6, // 1MB -> 10ms
            self_latency: Duration::ZERO,
            ..NetConfig::instant()
        };
        let engine = DeliveryEngine::start(2, cfg);
        let (tx, rx) = std::sync::mpsc::channel();
        engine.register_handler(
            1,
            Channel::APP,
            Box::new(move |m| {
                tx.send(m.tag).unwrap();
            }),
        );
        engine.send(msg(0, 1, 1, 1 << 20));
        engine.send(msg(0, 1, 2, 0));
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 2);
        engine.stop();
    }

    #[test]
    fn latency_is_enforced_in_real_time() {
        let cfg = NetConfig {
            latency: Duration::from_millis(20),
            bandwidth: f64::INFINITY,
            self_latency: Duration::ZERO,
            ..NetConfig::instant()
        };
        let engine = DeliveryEngine::start(2, cfg);
        let (tx, rx) = std::sync::mpsc::channel();
        engine.register_handler(
            1,
            Channel::APP,
            Box::new(move |_| {
                tx.send(Instant::now()).unwrap();
            }),
        );
        let sent = Instant::now();
        engine.send(msg(0, 1, 0, 0));
        let arrived = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(
            arrived - sent >= Duration::from_millis(19),
            "latency not enforced: {:?}",
            arrived - sent
        );
        engine.stop();
    }

    #[test]
    fn unregistered_handler_message_survives_until_registration() {
        let engine = DeliveryEngine::start(2, NetConfig::instant());
        engine.send(msg(0, 1, 9, 0));
        std::thread::sleep(Duration::from_millis(5));
        let (tx, rx) = std::sync::mpsc::channel();
        engine.register_handler(
            1,
            Channel::APP,
            Box::new(move |m| {
                tx.send(m.tag).unwrap();
            }),
        );
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 9);
        engine.stop();
    }

    #[test]
    fn stats_count_traffic() {
        let engine = DeliveryEngine::start(2, NetConfig::instant());
        engine.register_handler(1, Channel::APP, Box::new(|_| {}));
        engine.send(msg(0, 1, 0, 100));
        engine.send(msg(0, 1, 1, 100));
        let snap = engine.stats.snapshot();
        assert_eq!(snap.messages, 2);
        assert_eq!(snap.bytes, 2 * 164);
        engine.stop();
    }

    #[test]
    fn framed_message_counts_header_bytes() {
        let engine = DeliveryEngine::start(2, NetConfig::instant());
        engine.register_handler(1, Channel::APP, Box::new(|_| {}));
        let mut m = msg(0, 1, 0, 100);
        m.header = Bytes::from(vec![0u8; 13]);
        engine.send(m);
        assert_eq!(engine.stats.snapshot().bytes, 164 + 13);
        engine.stop();
    }

    #[test]
    fn handler_sees_modeled_due_timestamp() {
        let engine = DeliveryEngine::start(2, NetConfig::instant());
        let (tx, rx) = std::sync::mpsc::channel();
        engine.register_handler(
            1,
            Channel::APP,
            Box::new(move |m| {
                tx.send(m.due_ns).unwrap();
            }),
        );
        let before = clock::now_ns();
        engine.send(msg(0, 1, 0, 0));
        let due = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(due >= before, "due_ns not stamped: {due} < {before}");
        engine.stop();
    }

    #[test]
    fn handlers_may_reenter_send() {
        // A handler on rank 1 that forwards to rank 0 (ping-pong).
        let engine = DeliveryEngine::start(2, NetConfig::instant());
        let (tx, rx) = std::sync::mpsc::channel();
        {
            let engine2 = Arc::clone(&engine);
            engine.register_handler(
                1,
                Channel::APP,
                Box::new(move |m| {
                    let mut reply = Message::new(1, 0, Channel::APP, m.tag + 1, m.payload);
                    reply.span = m.span;
                    engine2.send(reply);
                }),
            );
        }
        engine.register_handler(
            0,
            Channel::APP,
            Box::new(move |m| {
                tx.send(m.tag).unwrap();
            }),
        );
        engine.send(msg(0, 1, 10, 0));
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 11);
        engine.stop();
    }

    #[test]
    fn stop_hooks_run_on_stop() {
        let engine = DeliveryEngine::start(2, NetConfig::instant());
        let fired = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&fired);
        engine.on_stop(move || f.store(true, Ordering::SeqCst));
        engine.stop();
        assert!(fired.load(Ordering::SeqCst));
    }
}
