//! Plain-old-data serialization between typed slices and wire bytes.
//!
//! The communication modules move typed application data (`f64` grids, `u64`
//! keys, …) over the byte-oriented transport. `Pod` marks types whose any
//! bit pattern is valid and which contain no padding, so they can be copied
//! to and from byte buffers.

use bytes::Bytes;

/// Marker for plain-old-data element types.
///
/// # Safety
/// Implementors must be `Copy`, have no padding bytes, no niches, and accept
/// any bit pattern (all primitive integer/float types qualify).
pub unsafe trait Pod: Copy + Send + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for i8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for usize {}
unsafe impl Pod for isize {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}

/// Copies a typed slice into owned wire bytes.
pub fn to_bytes<T: Pod>(data: &[T]) -> Bytes {
    // Viewing initialized POD memory as bytes is always valid (u8 has
    // alignment 1 and no validity constraints).
    let raw = unsafe {
        std::slice::from_raw_parts(data.as_ptr() as *const u8, std::mem::size_of_val(data))
    };
    Bytes::copy_from_slice(raw)
}

/// Copies wire bytes back into a typed vector.
///
/// # Panics
/// Panics if `bytes.len()` is not a multiple of `size_of::<T>()`.
pub fn from_bytes<T: Pod>(bytes: &[u8]) -> Vec<T> {
    let size = std::mem::size_of::<T>();
    assert!(
        size > 0 && bytes.len().is_multiple_of(size),
        "byte length {} is not a multiple of element size {}",
        bytes.len(),
        size
    );
    let n = bytes.len() / size;
    let mut out = Vec::<T>::with_capacity(n);
    // Unaligned source is fine: copy byte-wise into the (aligned) Vec.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr() as *mut u8, bytes.len());
        out.set_len(n);
    }
    out
}

/// Copies wire bytes into an existing typed slice (lengths must match).
pub fn read_into<T: Pod>(bytes: &[u8], dst: &mut [T]) {
    assert_eq!(
        bytes.len(),
        std::mem::size_of_val(dst),
        "byte/slice length mismatch"
    );
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), dst.as_mut_ptr() as *mut u8, bytes.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        let data = [1.5f64, -2.25, 0.0, f64::MAX];
        let bytes = to_bytes(&data);
        assert_eq!(bytes.len(), 32);
        let back: Vec<f64> = from_bytes(&bytes);
        assert_eq!(back, data);
    }

    #[test]
    fn roundtrip_u64_and_i32() {
        let a = [u64::MAX, 0, 42];
        assert_eq!(from_bytes::<u64>(&to_bytes(&a)), a);
        let b = [-1i32, i32::MIN, 7];
        assert_eq!(from_bytes::<i32>(&to_bytes(&b)), b);
    }

    #[test]
    fn empty_slice() {
        let data: [f64; 0] = [];
        let bytes = to_bytes(&data);
        assert!(bytes.is_empty());
        assert!(from_bytes::<f64>(&bytes).is_empty());
    }

    #[test]
    fn read_into_slice() {
        let bytes = to_bytes(&[10u32, 20, 30]);
        let mut dst = [0u32; 3];
        read_into(&bytes, &mut dst);
        assert_eq!(dst, [10, 20, 30]);
    }

    #[test]
    fn unaligned_source_is_handled() {
        // Slice the byte buffer at an odd offset to force unaligned reads.
        let mut raw = [0u8; 17];
        raw[1..17].copy_from_slice(&to_bytes(&[3.5f64, 7.25]));
        let vals: Vec<f64> = from_bytes(&raw[1..17]);
        assert_eq!(vals, vec![3.5, 7.25]);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn bad_length_panics() {
        let _ = from_bytes::<u64>(&[0u8; 7]);
    }
}
