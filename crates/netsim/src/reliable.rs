//! Ack-based reliable delivery over a lossy [`Transport`], with
//! epoch-numbered incarnations for rank restart.
//!
//! When a [`crate::FaultPlan`] is armed, the wire may drop, duplicate,
//! reorder and delay messages. `ReliableTransport` restores exactly-once,
//! in-order delivery per (src, dst) pair with the classic recipe
//! (DESIGN.md §2.9):
//!
//! * every data payload is framed with a per-destination sequence number;
//! * the receiver delivers in sequence order, holds early frames in a
//!   reorder buffer, discards duplicates, and returns *cumulative* acks;
//! * the sender keeps unacked frames and retransmits the head of line on a
//!   timeout with exponential backoff, bounded by
//!   [`RetryConfig::max_attempts`] — after which the peer is declared dead
//!   and a typed [`ModuleError::Unreachable`] is recorded.
//!
//! # The fast wire path (DESIGN.md §2.15)
//!
//! Three throughput optimizations ride on the same sequencing machinery
//! without changing its semantics:
//!
//! * **Zero-copy framing.** Frame headers travel in [`Message::header`],
//!   separate from the payload, so a DATA send never copies the payload
//!   into a framed buffer: the sender's queue, the unacked retention map,
//!   retransmits, and restart replay all share one `Bytes` buffer
//!   ([`payload_copies_avoided`](ReliableStatsSnapshot) counts frames that
//!   shipped by reference).
//! * **Ack coalescing + piggybacking.** A received DATA frame no longer
//!   triggers an immediate standalone ACK. The receiver owes an ack and
//!   either piggybacks the cumulative ack on the next reverse-direction
//!   DATA/JUMBO frame, flushes a standalone ACK once
//!   [`ack_threshold`](ReliableTransport) frames are owed, or lets the
//!   retry thread flush it after a short delay (`HIPER_NET_ACK_DELAY_US`,
//!   default 100 µs — far below the 2 ms retransmit timeout, so delaying
//!   never provokes spurious retransmits).
//! * **Send coalescing.** Small frames sent while earlier traffic to the
//!   same peer is still unacked are *staged* and flushed as one JUMBO
//!   frame per channel (by size/count threshold, flush deadline, or when
//!   the wire goes idle). The receiver unpacks sub-frames *before* the
//!   in-order hold-back, so sequence numbers, epochs, and replay logs are
//!   exactly as if each frame had traveled alone. The first frame of a
//!   burst always goes straight to the wire — request/response latency is
//!   never Nagled.
//!
//! # Epochs and rank restart (DESIGN.md §2.13)
//!
//! Every frame carries the sender's **epoch** — its incarnation number.
//! When a supervised rank is restored from a checkpoint it calls
//! [`ReliableTransport::restart`] with the per-peer receive watermarks
//! captured in the snapshot: the endpoint bumps its epoch, resets its send
//! sequence space to zero, rolls its receive cursors back to the
//! watermarks, and broadcasts a `RESTART(epoch, cum)` frame to every peer.
//! A peer seeing the higher epoch discards in-flight frames and acks from
//! the old incarnation, clears its hold-back queue, treats `cum` as an
//! implicit cumulative-ack reset (frames below it were durably
//! checkpointed; frames at or above it are retransmitted), and confirms
//! with `RESTART_ACK`. Peers keep their own sequence numbering toward the
//! restarted rank, so the restored receive watermark lines up exactly with
//! the retransmitted stream — exactly-once delivery across the crash.
//!
//! Frames a receiver already acked may still be *rolled back* by its
//! restore; senders therefore retain acked frames in a replay log (when
//! [`ReliableTransport::enable_retention`] is armed) until the receiver's
//! periodic `CKPT(watermark)` frame confirms they are covered by a durable
//! snapshot. The `RESTART` resync replays the log, reconstructing every
//! delivered-then-rolled-back message.
//!
//! On a fault-free engine (no plan armed) every call passes straight
//! through to the raw transport: no framing, no acks, no retry thread —
//! zero overhead for normal runs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use bytes::Bytes;
use hiper_runtime::ModuleError;
use hiper_trace::EventKind;
use parking_lot::{Condvar, Mutex};

use crate::cluster::Transport;
use crate::engine::Handler;
use crate::message::{Channel, Message, Rank};

/// `[1][epoch u32][seq u64][ackflag u8]` (+12B piggyback ack), payload =
/// user bytes.
const FRAME_DATA: u8 = 1;
/// `[2][data_epoch u32][acker_epoch u32][cum u64]`, empty payload.
const FRAME_ACK: u8 = 2;
/// Restarted incarnation announcing its new epoch and receive watermark:
/// `[3][epoch u32][cum u64]`.
const FRAME_RESTART: u8 = 3;
/// Peer's confirmation that it resynchronized to the announced epoch:
/// `[4][epoch u32]`.
const FRAME_RESTART_ACK: u8 = 4;
/// Receiver's durable-checkpoint watermark (`[5][epoch u32][wm u64]`):
/// retained frames below it may be GC'd from the sender's replay log.
const FRAME_CKPT: u8 = 5;
/// Coalesced carrier: `[6][epoch u32][count u16][ackflag u8]` (+12B
/// piggyback ack); payload = `count` sub-frames, each
/// `[seq u64][tag u64][span u64][len u32][payload bytes]`.
const FRAME_JUMBO: u8 = 6;

/// Per-sub-frame overhead inside a JUMBO payload. The span is always
/// embedded (0 when untraced) so the modeled wire size — and therefore the
/// chaos-grid schedule — is identical with tracing on or off.
const SUB_OVERHEAD: usize = 28;

/// Retry policy for unacked frames.
#[derive(Debug, Clone, Copy)]
pub struct RetryConfig {
    /// Initial retransmit timeout.
    pub timeout: Duration,
    /// Timeout multiplier applied per retransmission.
    pub backoff: f64,
    /// Upper bound on the backed-off timeout.
    pub max_timeout: Duration,
    /// Attempts (first send + retransmissions) before the peer is declared
    /// unreachable.
    pub max_attempts: u32,
}

impl Default for RetryConfig {
    fn default() -> RetryConfig {
        RetryConfig {
            timeout: Duration::from_millis(2),
            backoff: 2.0,
            max_timeout: Duration::from_millis(50),
            // With the defaults this spans > 1s of outage: 2+4+...+50ms
            // capped sums to well past transient kill windows.
            max_attempts: 30,
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Send-coalescing (Nagle) thresholds. Defaults come from the
/// `HIPER_NET_COALESCE*` env knobs (README "Message-path tuning");
/// [`ReliableTransport::set_coalesce`] overrides them programmatically —
/// tests use the setter, because env vars race across parallel test
/// threads in one binary.
#[derive(Debug, Clone, Copy)]
pub struct CoalesceConfig {
    /// Master switch (`HIPER_NET_COALESCE=0` disables).
    pub enabled: bool,
    /// Only frames with payloads at most this large are staged
    /// (`HIPER_NET_COALESCE_MAX`).
    pub max_payload: usize,
    /// Flush the stage once it holds this many payload bytes
    /// (`HIPER_NET_COALESCE_BYTES`).
    pub flush_bytes: usize,
    /// Flush the stage once it holds this many frames
    /// (`HIPER_NET_COALESCE_FRAMES`).
    pub flush_frames: usize,
    /// Flush deadline for a non-full stage (`HIPER_NET_COALESCE_DELAY_US`).
    pub delay: Duration,
}

impl Default for CoalesceConfig {
    fn default() -> CoalesceConfig {
        CoalesceConfig {
            enabled: std::env::var("HIPER_NET_COALESCE").map_or(true, |v| v != "0"),
            max_payload: env_u64("HIPER_NET_COALESCE_MAX", 512) as usize,
            flush_bytes: env_u64("HIPER_NET_COALESCE_BYTES", 4096) as usize,
            flush_frames: env_u64("HIPER_NET_COALESCE_FRAMES", 16) as usize,
            delay: Duration::from_micros(env_u64("HIPER_NET_COALESCE_DELAY_US", 100)),
        }
    }
}

/// A stored logical frame: (channel, tag, payload, causal span). The
/// payload is the *user* `Bytes` — shared by refcount with the original
/// send, so retention and retransmission never copy it; wire headers are
/// rebuilt at (re)send time from the current epoch and the map key (safe:
/// `restart` clears `unacked`/`log`, so a stored frame can never outlive
/// its sender's epoch).
type StoredFrame = (Channel, u64, Bytes, u64);

/// A frame ready for the wire, built under the state lock and shipped
/// outside it (handlers may re-enter `send`).
struct Out {
    dst: Rank,
    channel: Channel,
    tag: u64,
    header: Bytes,
    payload: Bytes,
    span: u64,
}

/// Per-peer sender + receiver state.
#[derive(Default)]
struct Peer {
    /// Last known epoch (incarnation number) of this peer.
    epoch: u32,
    /// Next sequence number to assign (send side).
    next_seq: u64,
    /// Sent-or-staged but unacked frames, keyed by sequence number.
    unacked: BTreeMap<u64, StoredFrame>,
    /// Acked frames retained for restart replay (retention mode only):
    /// delivered at the peer but not yet covered by one of its durable
    /// checkpoints. GC'd by `FRAME_CKPT` watermarks.
    log: BTreeMap<u64, StoredFrame>,
    /// Staged (coalesced) sequence numbers not yet on the wire. The frames
    /// themselves live in `unacked`; this is just the flush order.
    staged: Vec<u64>,
    /// Modeled bytes currently staged (payloads + sub-frame overhead).
    staged_bytes: usize,
    /// Flush deadline for a non-full stage.
    stage_deadline: Option<Instant>,
    /// DATA frames received from this peer whose cumulative ack has not
    /// been sent yet (piggybacked, threshold-flushed, or delay-flushed).
    ack_owed: u32,
    /// Deadline for flushing a standalone ack of the owed frames.
    ack_deadline: Option<Instant>,
    /// Retransmit deadline for the head-of-line frame.
    head_deadline: Option<Instant>,
    /// Current (backed-off) timeout for the head frame.
    head_timeout: Duration,
    /// Send attempts of the head frame so far.
    head_attempts: u32,
    /// Next sequence number to deliver (receive side).
    next_deliver: u64,
    /// Early frames held for resequencing.
    held: BTreeMap<u64, Message>,
    /// Peer exhausted its retry budget; sends to it are discarded.
    dead: bool,
    /// Supervisor hold: the peer is known-down and being recovered, so the
    /// retry thread neither retransmits nor burns budget toward it.
    quiesced: bool,
    /// Our own `RESTART` toward this peer is not yet `RESTART_ACK`ed.
    restart_pending: bool,
    /// The receive watermark announced in our pending `RESTART`.
    restart_cum: u64,
    /// Resend deadline for the pending `RESTART`.
    restart_deadline: Option<Instant>,
    /// Resend attempts of the pending `RESTART`.
    restart_attempts: u32,
    /// When the most recent ack from this peer was applied.
    last_ack_at: Option<Instant>,
}

impl Peer {
    /// The receive-side state machine, identical for lone DATA frames and
    /// unpacked JUMBO sub-frames: in-order delivery, hold-back for early
    /// frames, duplicate discard. Returns the messages now deliverable.
    fn admit(&mut self, seq: u64, stripped: Message) -> Vec<Message> {
        let mut deliverable = Vec::new();
        if seq >= self.next_deliver {
            if seq == self.next_deliver {
                self.next_deliver += 1;
                deliverable.push(stripped);
                while let Some(m) = self.held.remove(&self.next_deliver) {
                    self.next_deliver += 1;
                    deliverable.push(m);
                }
            } else {
                self.held.insert(seq, stripped);
            }
        }
        deliverable
    }

    /// Takes the owed cumulative ack for attachment to an outgoing frame
    /// (or a standalone flush): `(data_epoch, cum)`.
    fn take_ack(&mut self) -> Option<(u32, u64)> {
        if self.ack_owed == 0 {
            return None;
        }
        self.ack_owed = 0;
        self.ack_deadline = None;
        Some((self.epoch, self.next_deliver))
    }

    /// Drops all staging state (restart, death).
    fn clear_stage(&mut self) {
        self.staged.clear();
        self.staged_bytes = 0;
        self.stage_deadline = None;
    }
}

struct State {
    /// This endpoint's incarnation number (bumped by [`restart`]).
    ///
    /// [`restart`]: ReliableTransport::restart
    my_epoch: u32,
    peers: Vec<Peer>,
    /// First unreachability error, if any ([`ReliableTransport::health`]).
    error: Option<ModuleError>,
    /// Retry thread handle bookkeeping: true once spawned.
    retry_running: bool,
    /// Channels with registered handlers; control frames (`RESTART`,
    /// `CKPT`, delayed acks) travel on the first one.
    channels: Vec<Channel>,
    /// Send-coalescing thresholds.
    coalesce: CoalesceConfig,
}

/// Point-in-time copy of the reliable layer's message-path counters
/// (`--stats` surfacing in `chaos_check`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliableStatsSnapshot {
    /// Retransmitted frames.
    pub retries: u64,
    /// Logical frames that traveled inside JUMBO carriers.
    pub frames_coalesced: u64,
    /// Cumulative acks carried by reverse-direction DATA/JUMBO frames.
    pub acks_piggybacked: u64,
    /// Standalone acks flushed by threshold or delay (each covers
    /// `ack_owed` DATA frames that old code would have acked one-by-one).
    pub acks_flushed: u64,
    /// DATA frames whose payload went to the wire by reference (first
    /// sends, retransmits, and replay bursts that shared the user buffer).
    pub payload_copies_avoided: u64,
}

impl std::fmt::Display for ReliableStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "retries={} frames_coalesced={} acks_piggybacked={} acks_flushed={} \
             payload_copies_avoided={}",
            self.retries,
            self.frames_coalesced,
            self.acks_piggybacked,
            self.acks_flushed,
            self.payload_copies_avoided
        )
    }
}

/// Exactly-once, in-order delivery on top of a faulty [`Transport`];
/// transparent pass-through on a reliable one.
pub struct ReliableTransport {
    transport: Transport,
    module: &'static str,
    cfg: RetryConfig,
    enabled: bool,
    /// Delay before a standalone ack flush (`HIPER_NET_ACK_DELAY_US`).
    ack_delay: Duration,
    /// Owed-ack count that forces an immediate standalone flush
    /// (`HIPER_NET_ACK_THRESHOLD`).
    ack_threshold: u32,
    /// Retain acked frames for restart replay (supervised runs).
    retention: AtomicBool,
    state: Mutex<State>,
    cond: Condvar,
    /// Retransmitted frames (chaos-run diagnostics).
    pub retries: AtomicU64,
    /// Logical frames shipped inside JUMBO carriers.
    pub frames_coalesced: AtomicU64,
    /// Acks carried on reverse-direction data frames.
    pub acks_piggybacked: AtomicU64,
    /// Standalone delayed/threshold ack flushes.
    pub acks_flushed: AtomicU64,
    /// DATA payloads that reached the wire without being copied.
    pub payload_copies_avoided: AtomicU64,
    /// Keeps the head-of-line stall probe registered with the runtime
    /// watchdog for this endpoint's lifetime (deregisters on drop).
    _watchdog_probe: Mutex<Option<hiper_runtime::watchdog::ProbeHandle>>,
    /// Keeps the per-peer state info (epoch, queue depths, last-ack age)
    /// in the watchdog flight record for this endpoint's lifetime.
    _watchdog_info: Mutex<Option<hiper_runtime::watchdog::InfoHandle>>,
}

impl ReliableTransport {
    /// Wraps `transport`; `module` names the owner in errors and stats.
    /// Reliable framing arms itself only when the underlying engine has an
    /// active fault plan.
    pub fn new(transport: Transport, module: &'static str, cfg: RetryConfig) -> Arc<Self> {
        let enabled = transport.faults_active();
        let nranks = transport.nranks();
        let me = Arc::new(ReliableTransport {
            transport,
            module,
            cfg,
            enabled,
            ack_delay: Duration::from_micros(env_u64("HIPER_NET_ACK_DELAY_US", 100)),
            ack_threshold: env_u64("HIPER_NET_ACK_THRESHOLD", 16) as u32,
            retention: AtomicBool::new(false),
            state: Mutex::new(State {
                my_epoch: 0,
                peers: (0..nranks).map(|_| Peer::default()).collect(),
                error: None,
                retry_running: false,
                channels: Vec::new(),
                coalesce: CoalesceConfig::default(),
            }),
            cond: Condvar::new(),
            retries: AtomicU64::new(0),
            frames_coalesced: AtomicU64::new(0),
            acks_piggybacked: AtomicU64::new(0),
            acks_flushed: AtomicU64::new(0),
            payload_copies_avoided: AtomicU64::new(0),
            _watchdog_probe: Mutex::new(None),
            _watchdog_info: Mutex::new(None),
        });
        // Under the watchdog, a head-of-line frame burning through its
        // retry budget (or a peer already declared dead) is evidence that
        // "no progress" is a wedged wire, not an idle app. The probe holds
        // a weak ref so it never outlives the endpoint.
        if enabled && hiper_runtime::watchdog::recording() {
            let weak = Arc::downgrade(&me);
            let name = format!("reliable[{} rank {}]", module, me.transport.rank());
            let probe = hiper_runtime::watchdog::register_probe(name, move || {
                let me = weak.upgrade()?;
                me.head_of_line_report()
            });
            *me._watchdog_probe.lock() = Some(probe);
            let weak = Arc::downgrade(&me);
            let name = format!("reliable-state[{} rank {}]", module, me.transport.rank());
            let info = hiper_runtime::watchdog::register_info(name, move || {
                weak.upgrade()
                    .map_or_else(|| "<endpoint dropped>".into(), |me| me.peer_state_report())
            });
            *me._watchdog_info.lock() = Some(info);
        }
        me
    }

    /// `Some(report)` when any peer looks wedged: declared dead, or a
    /// head-of-line frame that has consumed at least half its retry budget.
    fn head_of_line_report(&self) -> Option<String> {
        let st = self.state.lock();
        let suspect_after = (self.cfg.max_attempts / 2).max(2);
        let mut lines = Vec::new();
        for (dst, peer) in st.peers.iter().enumerate() {
            if peer.dead {
                lines.push(format!(
                    "rank {}->{}: peer dead after {} attempts",
                    self.transport.rank(),
                    dst,
                    self.cfg.max_attempts
                ));
            } else if peer.head_attempts >= suspect_after {
                if let Some((&seq, (_, tag, _, span))) = peer.unacked.iter().next() {
                    lines.push(format!(
                        "rank {}->{}: head seq {} (tag {}, span {}) stuck at \
                         attempt {}/{}, {} frame(s) queued",
                        self.transport.rank(),
                        dst,
                        seq,
                        tag,
                        span,
                        peer.head_attempts,
                        self.cfg.max_attempts,
                        peer.unacked.len()
                    ));
                }
            }
        }
        if lines.is_empty() {
            None
        } else {
            Some(lines.join("; "))
        }
    }

    /// One line per peer with everything a stuck recovery needs: epoch,
    /// retransmit queue depth, replay-log depth, receive cursor, and the
    /// age of the last ack. Rendered into the watchdog flight record.
    pub fn peer_state_report(&self) -> String {
        let st = self.state.lock();
        let me = self.transport.rank();
        let mut lines = vec![format!("epoch={} rank={}", st.my_epoch, me)];
        for (dst, peer) in st.peers.iter().enumerate() {
            if dst == me {
                continue;
            }
            let last_ack = peer.last_ack_at.map_or_else(
                || "never".into(),
                |t| format!("{}ms", t.elapsed().as_millis()),
            );
            lines.push(format!(
                "->{}: epoch={} unacked={} staged={} log={} next_seq={} next_deliver={} held={} \
                 attempts={} ack_owed={} last_ack_age={}{}{}{}",
                dst,
                peer.epoch,
                peer.unacked.len(),
                peer.staged.len(),
                peer.log.len(),
                peer.next_seq,
                peer.next_deliver,
                peer.held.len(),
                peer.head_attempts,
                peer.ack_owed,
                last_ack,
                if peer.dead { " DEAD" } else { "" },
                if peer.quiesced { " QUIESCED" } else { "" },
                if peer.restart_pending {
                    " RESTART-PENDING"
                } else {
                    ""
                },
            ));
        }
        lines.join("; ")
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> Rank {
        self.transport.rank()
    }

    /// Total ranks.
    pub fn nranks(&self) -> usize {
        self.transport.nranks()
    }

    /// The wrapped raw transport.
    pub fn raw_transport(&self) -> &Transport {
        &self.transport
    }

    /// True when acked delivery is armed (a fault plan is active).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Retransmissions so far.
    pub fn retry_count(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Message-path counter snapshot.
    pub fn stats(&self) -> ReliableStatsSnapshot {
        ReliableStatsSnapshot {
            retries: self.retries.load(Ordering::Relaxed),
            frames_coalesced: self.frames_coalesced.load(Ordering::Relaxed),
            acks_piggybacked: self.acks_piggybacked.load(Ordering::Relaxed),
            acks_flushed: self.acks_flushed.load(Ordering::Relaxed),
            payload_copies_avoided: self.payload_copies_avoided.load(Ordering::Relaxed),
        }
    }

    /// Overrides the send-coalescing thresholds (tests; the env knobs set
    /// the process-wide default).
    pub fn set_coalesce(&self, cfg: CoalesceConfig) {
        self.state.lock().coalesce = cfg;
    }

    /// This endpoint's current epoch (incarnation number).
    pub fn epoch(&self) -> u32 {
        if !self.enabled {
            return 0;
        }
        self.state.lock().my_epoch
    }

    /// `Err` once any peer exhausted its retry budget.
    pub fn health(&self) -> Result<(), ModuleError> {
        match &self.state.lock().error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    // ------------------------------------------------------------------
    // Supervision hooks (DESIGN.md §2.13)
    // ------------------------------------------------------------------

    /// Arms acked-frame retention: frames stay in a per-peer replay log
    /// after the ack until a `CKPT` watermark from the receiver confirms a
    /// durable snapshot covers them. Required for restart replay; bounded
    /// by the receiver's checkpoint cadence.
    pub fn enable_retention(&self) {
        self.retention.store(true, Ordering::Release);
    }

    /// Per-peer receive cursors, for inclusion in a durable checkpoint.
    /// [`restart`] rolls the receive side back to exactly these values.
    ///
    /// [`restart`]: ReliableTransport::restart
    pub fn recv_watermarks(&self) -> Vec<u64> {
        if !self.enabled {
            return vec![0; self.transport.nranks()];
        }
        self.state
            .lock()
            .peers
            .iter()
            .map(|p| p.next_deliver)
            .collect()
    }

    /// Announces a durable checkpoint to every peer: frames below
    /// `watermarks[peer]` are covered by the snapshot and may leave the
    /// peers' replay logs. Call with the watermarks stored in the snapshot.
    pub fn checkpoint_mark(&self, watermarks: &[u64]) {
        if !self.enabled {
            return;
        }
        let me = self.transport.rank();
        let (epoch, channel) = {
            let st = self.state.lock();
            match st.channels.first() {
                Some(&c) => (st.my_epoch, c),
                None => return,
            }
        };
        for (dst, &w) in watermarks.iter().enumerate() {
            if dst == me {
                continue;
            }
            self.transport
                .send_framed(dst, channel, 0, ckpt_header(epoch, w), Bytes::new(), 0);
        }
    }

    /// Blocks until every DATA frame sent before this call has been
    /// cumulatively acked by its receiver (retransmits keep running
    /// underneath), or `timeout` expires; returns whether the drain
    /// completed. Quiesced and dead peers are skipped — frames toward a
    /// crashed peer are replayed by the epoch resync when it recovers.
    ///
    /// This is the send-side half of the supervised crash discipline: a
    /// victim's [`restart`] voids the dead incarnation's sequence space,
    /// so any frame still unacked when the rank dies would be lost forever
    /// — replay only regenerates sends *after* the checkpoint cut. The
    /// harness therefore drains the victim's unacked queues right before
    /// unwinding ([`SupervisorHarness::crash_point`]), making "everything
    /// the victim sent before dying was delivered" an invariant rather
    /// than a race.
    ///
    /// [`restart`]: ReliableTransport::restart
    /// [`SupervisorHarness::crash_point`]: crate::SupervisorHarness::crash_point
    pub fn flush(&self, timeout: Duration) -> bool {
        if !self.enabled {
            return true;
        }
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            let pending = st
                .peers
                .iter()
                .any(|p| !p.quiesced && !p.dead && !p.unacked.is_empty());
            if !pending {
                return true;
            }
            if Instant::now() >= deadline || self.transport.engine().is_stopped() {
                return false;
            }
            // Ack arrivals (and engine stop) notify this condvar from
            // `on_wire`; the 1ms tick is only a safety net.
            self.cond.wait_for(&mut st, Duration::from_millis(1));
        }
    }

    /// Supervisor hold on one peer: while quiesced, the retry thread
    /// neither retransmits toward it nor burns its retry budget, and new
    /// sends are queued without touching the wire. Releasing the hold
    /// grants the head-of-line frame a fresh budget and retransmits
    /// immediately.
    pub fn quiesce_peer(&self, peer: Rank, on: bool) {
        if !self.enabled {
            return;
        }
        {
            let mut st = self.state.lock();
            let p = &mut st.peers[peer];
            p.quiesced = on;
            if !on {
                p.head_attempts = 0;
                p.head_timeout = self.cfg.timeout;
                p.head_deadline = if p.unacked.is_empty() {
                    None
                } else {
                    Some(Instant::now())
                };
                if !p.staged.is_empty() {
                    p.stage_deadline = Some(Instant::now());
                }
                if p.restart_pending {
                    p.restart_deadline = Some(Instant::now());
                }
            }
        }
        self.cond.notify_all();
    }

    /// Restarts this endpoint as a new incarnation restored from a
    /// checkpoint: bumps the epoch, resets the send sequence space, rolls
    /// receive cursors back to `recv_watermarks` (the values captured by
    /// [`recv_watermarks`] in the snapshot), clears any terminal error, and
    /// broadcasts `RESTART` to every peer (retransmitted until
    /// acknowledged). Returns the new epoch.
    ///
    /// [`recv_watermarks`]: ReliableTransport::recv_watermarks
    pub fn restart(self: &Arc<Self>, recv_watermarks: &[u64]) -> u32 {
        if !self.enabled {
            return 0;
        }
        let me = self.transport.rank();
        let now = Instant::now();
        let (epoch, channel, restarts) = {
            let mut st = self.state.lock();
            st.my_epoch += 1;
            st.error = None;
            let epoch = st.my_epoch;
            let channel = st.channels.first().copied();
            let mut restarts = Vec::new();
            for (dst, peer) in st.peers.iter_mut().enumerate() {
                if dst == me {
                    // The self-link dies with the rank: both endpoints are
                    // part of the crashed state, so it restarts from scratch
                    // — fresh sequence space in both directions, and the
                    // observed self-epoch pre-advanced so stale pre-crash
                    // self-frames still in flight are discarded on arrival
                    // (rather than tripping the new-epoch cursor reset in
                    // `observe_epoch` after replay self-sends resume).
                    peer.next_seq = 0;
                    peer.unacked.clear();
                    peer.log.clear();
                    peer.clear_stage();
                    peer.ack_owed = 0;
                    peer.ack_deadline = None;
                    peer.head_deadline = None;
                    peer.head_timeout = self.cfg.timeout;
                    peer.head_attempts = 0;
                    peer.dead = false;
                    peer.quiesced = false;
                    peer.next_deliver = 0;
                    peer.held.clear();
                    peer.epoch = epoch;
                    peer.restart_pending = false;
                    peer.restart_deadline = None;
                    continue;
                }
                let cum = recv_watermarks.get(dst).copied().unwrap_or(0);
                // Send side: brand-new sequence space under the new epoch.
                peer.next_seq = 0;
                peer.unacked.clear();
                peer.log.clear();
                peer.clear_stage();
                peer.ack_owed = 0;
                peer.ack_deadline = None;
                peer.head_deadline = None;
                peer.head_timeout = self.cfg.timeout;
                peer.head_attempts = 0;
                peer.dead = false;
                peer.quiesced = false;
                // Receive side: exactly the snapshot's cursor; everything
                // at or above it is retransmitted/replayed by the peer.
                peer.next_deliver = cum;
                peer.held.clear();
                peer.restart_pending = true;
                peer.restart_cum = cum;
                peer.restart_deadline = Some(now);
                peer.restart_attempts = 0;
                restarts.push((dst, cum));
            }
            (epoch, channel, restarts)
        };
        if let Some(channel) = channel {
            for (dst, cum) in restarts {
                self.transport.send_framed(
                    dst,
                    channel,
                    0,
                    restart_header(epoch, cum),
                    Bytes::new(),
                    0,
                );
            }
        }
        self.ensure_retry_thread();
        self.cond.notify_all();
        epoch
    }

    /// Sends `payload` to `dst`, reliably when faults are armed. Sends to a
    /// peer already declared unreachable are discarded (see [`health`]).
    ///
    /// [`health`]: ReliableTransport::health
    pub fn send(self: &Arc<Self>, dst: Rank, channel: Channel, tag: u64, payload: Bytes) {
        if !self.enabled {
            return self.transport.send(dst, channel, tag, payload);
        }
        // Capture the causal span here, at the logical send: retransmits
        // (which run on the retry thread, with no task context) reuse it so
        // the eventual delivery still credits the originating task.
        let span = hiper_trace::current_task();
        let outs = {
            let mut st = self.state.lock();
            let my_epoch = st.my_epoch;
            let co = st.coalesce;
            let peer = &mut st.peers[dst];
            if peer.dead {
                return;
            }
            let seq = peer.next_seq;
            peer.next_seq += 1;
            // Nagle condition, checked *before* this frame joins the
            // queue: stage only when earlier traffic toward the peer is
            // already outstanding — a lone request/response never waits.
            let busy = !peer.unacked.is_empty();
            peer.unacked
                .insert(seq, (channel, tag, payload.clone(), span));
            if peer.unacked.len() == 1 {
                peer.head_timeout = self.cfg.timeout;
                peer.head_attempts = 1;
                peer.head_deadline = Some(Instant::now() + self.cfg.timeout);
            }
            if peer.quiesced {
                // Queue silently; the release retransmits from the head.
                Vec::new()
            } else if co.enabled && busy && payload.len() <= co.max_payload {
                peer.staged.push(seq);
                peer.staged_bytes += SUB_OVERHEAD + payload.len();
                if peer.staged.len() >= co.flush_frames || peer.staged_bytes >= co.flush_bytes {
                    self.drain_staged(peer, my_epoch, dst)
                } else {
                    if peer.stage_deadline.is_none() {
                        peer.stage_deadline = Some(Instant::now() + co.delay);
                    }
                    Vec::new()
                }
            } else {
                let ack = peer.take_ack();
                if ack.is_some() {
                    self.acks_piggybacked.fetch_add(1, Ordering::Relaxed);
                }
                self.payload_copies_avoided.fetch_add(1, Ordering::Relaxed);
                vec![Out {
                    dst,
                    channel,
                    tag,
                    header: data_header(my_epoch, seq, ack),
                    payload,
                    span,
                }]
            }
        };
        self.ship(outs);
        self.ensure_retry_thread();
        self.cond.notify_all();
    }

    /// Builds the wire frames for a peer's staged queue (one JUMBO per
    /// channel, plain DATA for singletons), piggybacking the owed ack on
    /// the first frame out. Caller holds the state lock; ship the result
    /// after releasing it.
    fn drain_staged(&self, peer: &mut Peer, my_epoch: u32, dst: Rank) -> Vec<Out> {
        if peer.staged.is_empty() {
            return Vec::new();
        }
        let staged = std::mem::take(&mut peer.staged);
        peer.staged_bytes = 0;
        peer.stage_deadline = None;
        // Group by channel, preserving send order within each: acks and
        // handlers are per-channel, and per-channel FIFO must survive the
        // repacking (the receiver resequences by seq anyway, but one
        // carrier per channel keeps handler dispatch correct).
        let mut groups: Vec<(Channel, Vec<u64>)> = Vec::new();
        for seq in staged {
            // A head-of-line retransmit + ack may have retired a staged
            // frame before its flush deadline.
            let Some(&(channel, ..)) = peer.unacked.get(&seq) else {
                continue;
            };
            match groups.iter_mut().find(|(c, _)| *c == channel) {
                Some((_, seqs)) => seqs.push(seq),
                None => groups.push((channel, vec![seq])),
            }
        }
        let mut ack = peer.take_ack();
        let had_ack = ack.is_some();
        let mut outs = Vec::with_capacity(groups.len());
        for (channel, seqs) in groups {
            if seqs.len() == 1 {
                let seq = seqs[0];
                let (_, tag, payload, span) = peer.unacked[&seq].clone();
                self.payload_copies_avoided.fetch_add(1, Ordering::Relaxed);
                outs.push(Out {
                    dst,
                    channel,
                    tag,
                    header: data_header(my_epoch, seq, ack.take()),
                    payload,
                    span,
                });
            } else {
                let mut buf = Vec::with_capacity(
                    seqs.iter()
                        .map(|s| SUB_OVERHEAD + peer.unacked[s].2.len())
                        .sum(),
                );
                for &seq in &seqs {
                    let (_, tag, payload, span) = &peer.unacked[&seq];
                    buf.extend_from_slice(&seq.to_le_bytes());
                    buf.extend_from_slice(&tag.to_le_bytes());
                    buf.extend_from_slice(&span.to_le_bytes());
                    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                    buf.extend_from_slice(payload);
                }
                self.frames_coalesced
                    .fetch_add(seqs.len() as u64, Ordering::Relaxed);
                outs.push(Out {
                    dst,
                    channel,
                    tag: 0,
                    header: jumbo_header(my_epoch, seqs.len() as u16, ack.take()),
                    payload: Bytes::from(buf),
                    span: 0,
                });
            }
        }
        if had_ack && !outs.is_empty() {
            self.acks_piggybacked.fetch_add(1, Ordering::Relaxed);
        }
        outs
    }

    /// Sends prepared frames (outside the state lock).
    fn ship(&self, outs: Vec<Out>) {
        for o in outs {
            self.transport
                .send_framed(o.dst, o.channel, o.tag, o.header, o.payload, o.span);
        }
    }

    /// Registers the inner handler for `channel`. When reliable delivery is
    /// armed the handler sees exactly the sender's payloads, exactly once,
    /// in order; frames and acks stay invisible.
    ///
    /// Every endpoint that *sends* on a channel must also register a handler
    /// for it (a no-op one is fine): acks travel back on the same channel
    /// and are consumed here. The MPI and SHMEM modules register on every
    /// rank, so this holds by construction for them.
    pub fn register_handler(self: &Arc<Self>, channel: Channel, inner: Handler) {
        if !self.enabled {
            return self.transport.register_handler(channel, inner);
        }
        self.state.lock().channels.push(channel);
        let me = Arc::clone(self);
        self.transport.register_handler(
            channel,
            Box::new(move |msg| me.on_wire(channel, &inner, msg)),
        );
    }

    /// Observes `src` at incarnation `claimed` (must hold the state lock
    /// via `st`). On an epoch advance: forgets the dead incarnation's
    /// receive state, revives the peer, and clears a stale terminal error.
    /// Returns false when the frame is from a *stale* incarnation and must
    /// be discarded.
    fn observe_epoch(st: &mut State, src: Rank, claimed: u32, module: &'static str) -> bool {
        let peer = &mut st.peers[src];
        if claimed < peer.epoch {
            return false;
        }
        if claimed > peer.epoch {
            peer.epoch = claimed;
            // The old incarnation's in-flight frames are void: reset the
            // receive cursor for the restarted sender's fresh sequence
            // space and drop held frames from before the crash. Owed acks
            // refer to the dead sequence space too.
            peer.next_deliver = 0;
            peer.held.clear();
            peer.ack_owed = 0;
            peer.ack_deadline = None;
            // A restarted peer is reachable again by definition.
            peer.dead = false;
            peer.quiesced = false;
            peer.head_attempts = 0;
            if let Some(ModuleError::Unreachable { peer: p, .. }) = &st.error {
                if *p == src && st.error.as_ref().map(|e| e.module()) == Some(module) {
                    st.error = None;
                }
            }
        }
        true
    }

    /// Resynchronizes the send side toward a restarted `src` around the
    /// announced cumulative watermark: frames below `cum` are durably
    /// checkpointed at the peer and dropped; retained/unacked frames at or
    /// above it are queued for retransmission. Returns the frames to burst
    /// onto the wire, in sequence order.
    fn resync_send_side(peer: &mut Peer, cum: u64, cfg: &RetryConfig) -> Vec<(u64, StoredFrame)> {
        // Replay log first: its sequence numbers precede every unacked one.
        let keep_log = peer.log.split_off(&cum);
        peer.log.clear();
        for (seq, frame) in keep_log {
            peer.unacked.insert(seq, frame);
        }
        peer.unacked = peer.unacked.split_off(&cum);
        peer.clear_stage();
        peer.head_timeout = cfg.timeout;
        peer.head_attempts = 1;
        peer.head_deadline = if peer.unacked.is_empty() {
            None
        } else {
            Some(Instant::now() + cfg.timeout)
        };
        peer.unacked.iter().map(|(&s, f)| (s, f.clone())).collect()
    }

    /// Books `count` received DATA frames from `src` as owing an ack, and
    /// flushes a standalone cumulative ack when the owed count crosses the
    /// threshold (otherwise arms the delay deadline for the retry thread).
    /// Caller holds the state lock.
    fn note_ack_owed(&self, st: &mut State, src: Rank, channel: Channel, count: u32) -> Vec<Out> {
        let my_epoch = st.my_epoch;
        let peer = &mut st.peers[src];
        peer.ack_owed = peer.ack_owed.saturating_add(count);
        if peer.ack_owed >= self.ack_threshold {
            let (data_epoch, cum) = peer.take_ack().expect("owed > 0");
            self.acks_flushed.fetch_add(1, Ordering::Relaxed);
            vec![Out {
                dst: src,
                channel,
                tag: 0,
                header: ack_header(data_epoch, my_epoch, cum),
                payload: Bytes::new(),
                span: 0,
            }]
        } else {
            if peer.ack_deadline.is_none() {
                peer.ack_deadline = Some(Instant::now() + self.ack_delay);
            }
            Vec::new()
        }
    }

    /// Applies a cumulative ack (standalone or piggybacked): validates
    /// epochs, retires acked frames into the replay log, resyncs on an
    /// epoch advance, and — when the ack leaves nothing outstanding on the
    /// wire — flushes any staged stragglers immediately. Returns
    /// `(replay burst, staged flush)`; caller holds the state lock and
    /// ships both after releasing it.
    #[allow(clippy::type_complexity)]
    fn apply_ack(
        &self,
        st: &mut State,
        src: Rank,
        data_epoch: u32,
        acker_epoch: u32,
        cum: u64,
    ) -> (Vec<(u64, StoredFrame)>, Vec<Out>) {
        let known = st.peers[src].epoch;
        if acker_epoch < known {
            // Ack from a dead incarnation: its cum refers to receive state
            // that was rolled back. Applying it would falsely retire
            // frames the restored peer still needs.
            if crate::supervise::debug_enabled() {
                eprintln!(
                    "[rel r{}] drop stale ACK src={} acker_epoch={} known={} cum={}",
                    self.transport.rank(),
                    src,
                    acker_epoch,
                    known,
                    cum
                );
            }
            return (Vec::new(), Vec::new());
        }
        if data_epoch != st.my_epoch {
            // Acks our own previous incarnation's space.
            if crate::supervise::debug_enabled() {
                eprintln!(
                    "[rel r{}] drop old-space ACK src={} data_epoch={} my_epoch={} cum={}",
                    self.transport.rank(),
                    src,
                    data_epoch,
                    st.my_epoch,
                    cum,
                );
            }
            return (Vec::new(), Vec::new());
        }
        let epoch_advance = acker_epoch > known;
        if !Self::observe_epoch(st, src, acker_epoch, self.module) {
            return (Vec::new(), Vec::new());
        }
        let retention = self.retention.load(Ordering::Acquire);
        let cfg = self.cfg;
        let my_epoch = st.my_epoch;
        let peer = &mut st.peers[src];
        peer.last_ack_at = Some(Instant::now());
        if epoch_advance {
            // The ack overtook the peer's RESTART frame: its cum is the
            // restored receive watermark, so run the full resync now
            // rather than waiting.
            return (Self::resync_send_side(peer, cum, &cfg), Vec::new());
        }
        let mut acked = peer.unacked.split_off(&cum);
        std::mem::swap(&mut acked, &mut peer.unacked);
        if !acked.is_empty() {
            if retention {
                peer.log.extend(acked);
            }
            // Head of line advanced: fresh retry budget for the new head
            // (per-frame bounded attempts).
            peer.head_timeout = cfg.timeout;
            peer.head_attempts = 1;
            peer.head_deadline = if peer.unacked.is_empty() {
                None
            } else {
                Some(Instant::now() + cfg.timeout)
            };
            if !peer.staged.is_empty() {
                // A head-of-line retransmit may have wired (and now acked)
                // frames that were still staged.
                peer.staged.retain(|&s| s >= cum);
                let mut bytes = 0;
                for s in &peer.staged {
                    if let Some(f) = peer.unacked.get(s) {
                        bytes += SUB_OVERHEAD + f.2.len();
                    }
                }
                peer.staged_bytes = bytes;
                if peer.staged.is_empty() {
                    peer.stage_deadline = None;
                }
            }
        }
        // Wire idle after this ack: release staged stragglers immediately
        // instead of waiting out their flush deadline — the Nagle stage
        // only exists to ride behind in-flight traffic.
        let outs = if !peer.staged.is_empty() && peer.unacked.len() == peer.staged.len() {
            self.drain_staged(peer, my_epoch, src)
        } else {
            Vec::new()
        };
        (Vec::new(), outs)
    }

    /// Decodes one wire frame (runs on the delivery-engine thread).
    fn on_wire(self: &Arc<Self>, channel: Channel, inner: &Handler, msg: Message) {
        let hdr = msg.header.clone();
        if hdr.len() < 5 {
            return;
        }
        let kind = hdr[0];
        let epoch_field = rd_u32(&hdr, 1);
        let src = msg.src;
        match kind {
            FRAME_DATA if hdr.len() >= 14 => {
                let seq = rd_u64(&hdr, 5);
                let piggy =
                    (hdr[13] == 1 && hdr.len() >= 26).then(|| (rd_u32(&hdr, 14), rd_u64(&hdr, 18)));
                let (deliverable, outs, burst, burst_epoch) = {
                    let mut st = self.state.lock();
                    if !Self::observe_epoch(&mut st, src, epoch_field, self.module) {
                        if crate::supervise::debug_enabled() {
                            eprintln!(
                                "[rel r{}] drop stale DATA src={} epoch={} seq={}",
                                self.transport.rank(),
                                src,
                                epoch_field,
                                seq
                            );
                        }
                        return;
                    }
                    let stripped = Message {
                        header: Bytes::new(),
                        ..msg
                    };
                    let deliverable = st.peers[src].admit(seq, stripped);
                    let mut outs = self.note_ack_owed(&mut st, src, channel, 1);
                    // The piggybacked ack is applied *after* the DATA
                    // half, mirroring the order the two halves would have
                    // arrived in as separate frames.
                    let burst = match piggy {
                        Some((de, cum)) => {
                            let (burst, more) = self.apply_ack(&mut st, src, de, epoch_field, cum);
                            outs.extend(more);
                            burst
                        }
                        None => Vec::new(),
                    };
                    (deliverable, outs, burst, st.my_epoch)
                };
                // Deliver outside the lock: handlers may re-enter send().
                deliver(inner, deliverable);
                self.ship(outs);
                self.burst(src, burst_epoch, burst);
                // The armed ack-flush deadline needs the retry/flusher
                // thread — a pure receiver has not spawned one yet — and
                // an applied piggyback ack must wake `flush()` waiters.
                self.ensure_retry_thread();
                self.cond.notify_all();
            }
            FRAME_JUMBO if hdr.len() >= 8 => {
                let count = u16::from_le_bytes([hdr[5], hdr[6]]) as usize;
                let piggy =
                    (hdr[7] == 1 && hdr.len() >= 20).then(|| (rd_u32(&hdr, 8), rd_u64(&hdr, 12)));
                // Unpack sub-frames (zero-copy slices of the carrier
                // payload) *before* the hold-back, so each runs the exact
                // lone-DATA receive path.
                let body = msg.payload.clone();
                let mut subs = Vec::with_capacity(count);
                let mut off = 0usize;
                for _ in 0..count {
                    if off + SUB_OVERHEAD > body.len() {
                        break;
                    }
                    let seq = rd_u64(&body, off);
                    let tag = rd_u64(&body, off + 8);
                    let span = rd_u64(&body, off + 16);
                    let len = rd_u32(&body, off + 24) as usize;
                    off += SUB_OVERHEAD;
                    if off + len > body.len() {
                        break;
                    }
                    subs.push((seq, tag, span, body.slice(off..off + len)));
                    off += len;
                }
                let due_ns = msg.due_ns;
                let (deliverable, outs, burst, burst_epoch) = {
                    let mut st = self.state.lock();
                    if !Self::observe_epoch(&mut st, src, epoch_field, self.module) {
                        return;
                    }
                    let mut deliverable = Vec::new();
                    for (seq, tag, span, payload) in &subs {
                        let sub = Message {
                            src,
                            dst: msg.dst,
                            channel,
                            tag: *tag,
                            header: Bytes::new(),
                            payload: payload.clone(),
                            span: *span,
                            due_ns,
                        };
                        deliverable.extend(st.peers[src].admit(*seq, sub));
                    }
                    let mut outs = self.note_ack_owed(&mut st, src, channel, subs.len() as u32);
                    let burst = match piggy {
                        Some((de, cum)) => {
                            let (burst, more) = self.apply_ack(&mut st, src, de, epoch_field, cum);
                            outs.extend(more);
                            burst
                        }
                        None => Vec::new(),
                    };
                    (deliverable, outs, burst, st.my_epoch)
                };
                // One jumbo carrier = one engine-level MsgSend/MsgDeliver
                // pair; re-emit a per-logical pair for every sub-frame it
                // carried, stamped at the carrier's modeled delivery time,
                // so trace_check's pairing and causal edges see N logical
                // messages, not one opaque blob.
                if hiper_trace::enabled() {
                    let link = crate::engine::link_word(src, msg.dst);
                    for (_, _, span, _) in &subs {
                        let id = crate::engine::next_msg_id();
                        hiper_trace::emit_at(due_ns, EventKind::MsgSend, *span, link, id);
                        hiper_trace::emit_at(due_ns, EventKind::MsgDeliver, *span, link, id);
                    }
                }
                deliver(inner, deliverable);
                self.ship(outs);
                self.burst(src, burst_epoch, burst);
                self.ensure_retry_thread();
                self.cond.notify_all();
            }
            FRAME_ACK if hdr.len() >= 17 => {
                // data_epoch: whose send space the cum refers to (ours, if
                // current); acker_epoch: the acker's incarnation.
                let acker_epoch = rd_u32(&hdr, 5);
                let cum = rd_u64(&hdr, 9);
                let (burst, outs, burst_epoch) = {
                    let mut st = self.state.lock();
                    let (burst, outs) = self.apply_ack(&mut st, src, epoch_field, acker_epoch, cum);
                    (burst, outs, st.my_epoch)
                };
                self.ship(outs);
                self.burst(src, burst_epoch, burst);
                self.cond.notify_all();
            }
            FRAME_RESTART if hdr.len() >= 13 => {
                let cum = rd_u64(&hdr, 5);
                let (burst, burst_epoch) = {
                    let mut st = self.state.lock();
                    if !Self::observe_epoch(&mut st, src, epoch_field, self.module) {
                        return;
                    }
                    let cfg = self.cfg;
                    let peer = &mut st.peers[src];
                    // Idempotent on duplicates: re-pruning below cum and
                    // re-sending the burst/ack is harmless.
                    (Self::resync_send_side(peer, cum, &cfg), st.my_epoch)
                };
                self.transport.send_framed(
                    src,
                    channel,
                    0,
                    restart_ack_header(epoch_field),
                    Bytes::new(),
                    0,
                );
                self.burst(src, burst_epoch, burst);
            }
            FRAME_RESTART_ACK => {
                let mut st = self.state.lock();
                if epoch_field == st.my_epoch {
                    let peer = &mut st.peers[src];
                    peer.restart_pending = false;
                    peer.restart_deadline = None;
                }
            }
            FRAME_CKPT if hdr.len() >= 13 => {
                let watermark = rd_u64(&hdr, 5);
                let mut st = self.state.lock();
                if !Self::observe_epoch(&mut st, src, epoch_field, self.module) {
                    return;
                }
                // Frames below the watermark are inside the peer's durable
                // snapshot: a restart can never need them again.
                let peer = &mut st.peers[src];
                peer.log = peer.log.split_off(&watermark);
            }
            _ => {}
        }
    }

    /// Retransmits a resync burst in sequence order (outside the lock),
    /// rebuilding each DATA header under `epoch` — zero payload copies.
    fn burst(self: &Arc<Self>, dst: Rank, epoch: u32, frames: Vec<(u64, StoredFrame)>) {
        if frames.is_empty() {
            return;
        }
        for (seq, (channel, tag, payload, span)) in frames {
            self.retries.fetch_add(1, Ordering::Relaxed);
            self.payload_copies_avoided.fetch_add(1, Ordering::Relaxed);
            self.transport.send_framed(
                dst,
                channel,
                tag,
                data_header(epoch, seq, None),
                payload,
                span,
            );
        }
        self.cond.notify_all();
    }

    fn ensure_retry_thread(self: &Arc<Self>) {
        let mut st = self.state.lock();
        if st.retry_running {
            return;
        }
        st.retry_running = true;
        drop(st);
        let weak = Arc::downgrade(self);
        // Engine stop must wake the retry/flush thread immediately: its
        // condvar wait can be a full backoff period long, and a stopped
        // wire will never ack it awake.
        {
            let weak = weak.clone();
            self.transport.engine().on_stop(move || {
                if let Some(me) = weak.upgrade() {
                    me.cond.notify_all();
                }
            });
        }
        std::thread::Builder::new()
            .name(format!("hiper-rel-{}", self.transport.rank()))
            .spawn(move || retry_loop(weak))
            .expect("failed to spawn reliable-retry thread");
    }
}

/// Delivers decoded messages to the inner handler, each under its own
/// causal span (a jumbo carrier arrives with span 0; a drained hold-back
/// frame's span differs from the frame that unblocked it).
fn deliver(inner: &Handler, msgs: Vec<Message>) {
    for m in msgs {
        let prev = hiper_trace::set_current_task(m.span);
        inner(m);
        hiper_trace::set_current_task(prev);
    }
}

fn rd_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().unwrap())
}

fn rd_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

fn data_header(epoch: u32, seq: u64, ack: Option<(u32, u64)>) -> Bytes {
    let mut buf = Vec::with_capacity(26);
    buf.push(FRAME_DATA);
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    push_ack(&mut buf, ack);
    Bytes::from(buf)
}

fn jumbo_header(epoch: u32, count: u16, ack: Option<(u32, u64)>) -> Bytes {
    let mut buf = Vec::with_capacity(20);
    buf.push(FRAME_JUMBO);
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&count.to_le_bytes());
    push_ack(&mut buf, ack);
    Bytes::from(buf)
}

fn push_ack(buf: &mut Vec<u8>, ack: Option<(u32, u64)>) {
    match ack {
        Some((data_epoch, cum)) => {
            buf.push(1);
            buf.extend_from_slice(&data_epoch.to_le_bytes());
            buf.extend_from_slice(&cum.to_le_bytes());
        }
        None => buf.push(0),
    }
}

fn ack_header(data_epoch: u32, acker_epoch: u32, cum: u64) -> Bytes {
    let mut buf = Vec::with_capacity(17);
    buf.push(FRAME_ACK);
    buf.extend_from_slice(&data_epoch.to_le_bytes());
    buf.extend_from_slice(&acker_epoch.to_le_bytes());
    buf.extend_from_slice(&cum.to_le_bytes());
    Bytes::from(buf)
}

fn restart_header(epoch: u32, cum: u64) -> Bytes {
    let mut buf = Vec::with_capacity(13);
    buf.push(FRAME_RESTART);
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&cum.to_le_bytes());
    Bytes::from(buf)
}

fn restart_ack_header(epoch: u32) -> Bytes {
    let mut buf = Vec::with_capacity(5);
    buf.push(FRAME_RESTART_ACK);
    buf.extend_from_slice(&epoch.to_le_bytes());
    Bytes::from(buf)
}

fn ckpt_header(epoch: u32, watermark: u64) -> Bytes {
    let mut buf = Vec::with_capacity(13);
    buf.push(FRAME_CKPT);
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&watermark.to_le_bytes());
    Bytes::from(buf)
}

/// The per-endpoint retry thread, which doubles as the *flusher*: besides
/// retransmitting head-of-line frames whose deadline passed and re-sending
/// unacknowledged `RESTART` announcements, it drains staged coalescing
/// queues and flushes owed standalone acks when their (µs-scale) deadlines
/// arrive. Its condvar is notified on ack arrival, new staging, quiesce
/// release, and engine stop, so it wakes exactly when there is work.
/// Exits when the owning [`ReliableTransport`] is dropped or the cluster's
/// delivery engine stops (a stopped wire can never ack, so retrying
/// against it only burns CPU and spams `Unreachable` errors).
fn retry_loop(weak: Weak<ReliableTransport>) {
    loop {
        let me = match weak.upgrade() {
            Some(me) => me,
            None => return,
        };
        if me.transport.engine().is_stopped() {
            return;
        }
        let now = Instant::now();
        #[allow(clippy::type_complexity)]
        let mut resend: Vec<(Rank, Channel, u64, Bytes, Bytes, u64, u32, u64)> = Vec::new();
        let mut control: Vec<(Rank, Channel, Bytes)> = Vec::new();
        let mut flushed: Vec<Out> = Vec::new();
        let mut wait = Duration::from_millis(20);
        {
            let mut st = me.state.lock();
            let my_epoch = st.my_epoch;
            let control_channel = st.channels.first().copied();
            let mut newly_dead: Option<(Rank, u32)> = None;
            let mut peers = std::mem::take(&mut st.peers);
            for (dst, peer) in peers.iter_mut().enumerate() {
                if peer.quiesced {
                    continue;
                }
                // Unacked RESTART announcements get their own resend loop:
                // the epoch handshake must survive drop injection.
                if peer.restart_pending {
                    if let (Some(deadline), Some(channel)) =
                        (peer.restart_deadline, control_channel)
                    {
                        if deadline <= now {
                            if peer.restart_attempts >= me.cfg.max_attempts {
                                peer.restart_pending = false;
                                peer.restart_deadline = None;
                            } else {
                                peer.restart_attempts += 1;
                                peer.restart_deadline = Some(now + me.cfg.timeout);
                                wait = wait.min(me.cfg.timeout);
                                control.push((
                                    dst,
                                    channel,
                                    restart_header(my_epoch, peer.restart_cum),
                                ));
                            }
                        } else {
                            wait = wait.min(deadline - now);
                        }
                    }
                }
                // Staged-coalescing flush deadline.
                if let Some(deadline) = peer.stage_deadline {
                    if deadline <= now {
                        flushed.extend(me.drain_staged(peer, my_epoch, dst));
                    } else {
                        wait = wait.min(deadline - now);
                    }
                }
                // Owed-ack flush deadline.
                if let Some(deadline) = peer.ack_deadline {
                    if deadline <= now {
                        if let (Some((data_epoch, cum)), Some(channel)) =
                            (peer.take_ack(), control_channel)
                        {
                            me.acks_flushed.fetch_add(1, Ordering::Relaxed);
                            control.push((dst, channel, ack_header(data_epoch, my_epoch, cum)));
                        }
                    } else {
                        wait = wait.min(deadline - now);
                    }
                }
                let deadline = match peer.head_deadline {
                    Some(d) if !peer.dead => d,
                    _ => continue,
                };
                if deadline > now {
                    wait = wait.min(deadline - now);
                    continue;
                }
                if peer.head_attempts >= me.cfg.max_attempts {
                    peer.dead = true;
                    peer.unacked.clear();
                    peer.log.clear();
                    peer.clear_stage();
                    peer.head_deadline = None;
                    newly_dead = Some((dst, peer.head_attempts));
                    continue;
                }
                let (&seq, (channel, tag, payload, span)) =
                    peer.unacked.iter().next().expect("deadline without frame");
                if peer.head_attempts < 3 && crate::supervise::debug_enabled() {
                    eprintln!(
                        "[rel r{}] retransmit dst={} seq={} attempt={} chan={} tag={:#x}",
                        me.transport.rank(),
                        dst,
                        seq,
                        peer.head_attempts + 1,
                        channel.0,
                        tag,
                    );
                }
                peer.head_attempts += 1;
                peer.head_timeout = Duration::from_secs_f64(
                    (peer.head_timeout.as_secs_f64() * me.cfg.backoff)
                        .min(me.cfg.max_timeout.as_secs_f64()),
                );
                peer.head_deadline = Some(now + peer.head_timeout);
                wait = wait.min(peer.head_timeout);
                resend.push((
                    dst,
                    *channel,
                    *tag,
                    data_header(my_epoch, seq, None),
                    payload.clone(),
                    seq,
                    peer.head_attempts,
                    *span,
                ));
            }
            st.peers = peers;
            if let Some((dst, attempts)) = newly_dead {
                if crate::supervise::debug_enabled() {
                    let p = &st.peers[dst];
                    eprintln!(
                        "[rel r{}] dst {} dead: head_seq={:?} unacked={} log={} my_epoch={} peer_epoch={} next_deliver={}",
                        me.transport.rank(),
                        dst,
                        p.unacked.keys().next(),
                        p.unacked.len(),
                        p.log.len(),
                        my_epoch,
                        p.epoch,
                        p.next_deliver,
                    );
                }
                let err = ModuleError::unreachable(me.module, dst, attempts);
                eprintln!("[hiper-netsim] {}", err);
                if st.error.is_none() {
                    st.error = Some(err);
                }
            }
        }
        me.ship(flushed);
        for (dst, channel, header) in control {
            me.transport
                .send_framed(dst, channel, 0, header, Bytes::new(), 0);
        }
        for (dst, channel, tag, header, payload, seq, attempt, span) in resend {
            me.retries.fetch_add(1, Ordering::Relaxed);
            me.payload_copies_avoided.fetch_add(1, Ordering::Relaxed);
            if hiper_metrics::enabled() {
                hiper_metrics::counter("hiper_reliable_retransmits_total").inc();
            }
            if hiper_trace::enabled() {
                hiper_trace::emit(
                    EventKind::RelRetry,
                    ((me.transport.rank() as u64) << 32) | dst as u64,
                    seq,
                    attempt as u64,
                );
            }
            me.transport
                .send_framed(dst, channel, tag, header, payload, span);
        }
        let mut st = me.state.lock();
        me.cond.wait_for(&mut st, wait);
        drop(st);
        drop(me);
    }
}

impl std::fmt::Debug for ReliableTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReliableTransport")
            .field("module", &self.module)
            .field("rank", &self.transport.rank())
            .field("enabled", &self.enabled)
            .field("epoch", &self.epoch())
            .field("retries", &self.retry_count())
            .finish()
    }
}
