//! Ack-based reliable delivery over a lossy [`Transport`].
//!
//! When a [`crate::FaultPlan`] is armed, the wire may drop, duplicate,
//! reorder and delay messages. `ReliableTransport` restores exactly-once,
//! in-order delivery per (src, dst) pair with the classic recipe
//! (DESIGN.md §2.9):
//!
//! * every data payload is framed with a per-destination sequence number;
//! * the receiver delivers in sequence order, holds early frames in a
//!   reorder buffer, discards (and re-acks) duplicates, and returns
//!   *cumulative* acks;
//! * the sender keeps unacked frames and retransmits the head of line on a
//!   timeout with exponential backoff, bounded by
//!   [`RetryConfig::max_attempts`] — after which the peer is declared dead
//!   and a typed [`ModuleError::Unreachable`] is recorded.
//!
//! On a fault-free engine (no plan armed) every call passes straight
//! through to the raw transport: no framing, no acks, no retry thread —
//! zero overhead for normal runs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use bytes::Bytes;
use hiper_runtime::ModuleError;
use hiper_trace::EventKind;
use parking_lot::{Condvar, Mutex};

use crate::cluster::Transport;
use crate::engine::Handler;
use crate::message::{Channel, Message, Rank};

const FRAME_DATA: u8 = 1;
const FRAME_ACK: u8 = 2;

/// Retry policy for unacked frames.
#[derive(Debug, Clone, Copy)]
pub struct RetryConfig {
    /// Initial retransmit timeout.
    pub timeout: Duration,
    /// Timeout multiplier applied per retransmission.
    pub backoff: f64,
    /// Upper bound on the backed-off timeout.
    pub max_timeout: Duration,
    /// Attempts (first send + retransmissions) before the peer is declared
    /// unreachable.
    pub max_attempts: u32,
}

impl Default for RetryConfig {
    fn default() -> RetryConfig {
        RetryConfig {
            timeout: Duration::from_millis(2),
            backoff: 2.0,
            max_timeout: Duration::from_millis(50),
            // With the defaults this spans > 1s of outage: 2+4+...+50ms
            // capped sums to well past transient kill windows.
            max_attempts: 30,
        }
    }
}

/// Per-peer sender + receiver state.
#[derive(Default)]
struct Peer {
    /// Next sequence number to assign (send side).
    next_seq: u64,
    /// Sent but unacked frames, keyed by sequence number. Values are
    /// (channel, tag, frame, span): the exact wire frames, so
    /// retransmissions are byte-identical, plus the causal span captured at
    /// the *logical* send so retransmits keep the original parent.
    unacked: BTreeMap<u64, (Channel, u64, Bytes, u64)>,
    /// Retransmit deadline for the head-of-line frame.
    head_deadline: Option<Instant>,
    /// Current (backed-off) timeout for the head frame.
    head_timeout: Duration,
    /// Send attempts of the head frame so far.
    head_attempts: u32,
    /// Next sequence number to deliver (receive side).
    next_deliver: u64,
    /// Early frames held for resequencing.
    held: BTreeMap<u64, Message>,
    /// Peer exhausted its retry budget; sends to it are discarded.
    dead: bool,
}

struct State {
    peers: Vec<Peer>,
    /// First unreachability error, if any ([`ReliableTransport::health`]).
    error: Option<ModuleError>,
    /// Retry thread handle bookkeeping: true once spawned.
    retry_running: bool,
}

/// Exactly-once, in-order delivery on top of a faulty [`Transport`];
/// transparent pass-through on a reliable one.
pub struct ReliableTransport {
    transport: Transport,
    module: &'static str,
    cfg: RetryConfig,
    enabled: bool,
    state: Mutex<State>,
    cond: Condvar,
    /// Retransmitted frames (chaos-run diagnostics).
    pub retries: AtomicU64,
    /// Keeps the head-of-line stall probe registered with the runtime
    /// watchdog for this endpoint's lifetime (deregisters on drop).
    _watchdog_probe: Mutex<Option<hiper_runtime::watchdog::ProbeHandle>>,
}

impl ReliableTransport {
    /// Wraps `transport`; `module` names the owner in errors and stats.
    /// Reliable framing arms itself only when the underlying engine has an
    /// active fault plan.
    pub fn new(transport: Transport, module: &'static str, cfg: RetryConfig) -> Arc<Self> {
        let enabled = transport.faults_active();
        let nranks = transport.nranks();
        let me = Arc::new(ReliableTransport {
            transport,
            module,
            cfg,
            enabled,
            state: Mutex::new(State {
                peers: (0..nranks).map(|_| Peer::default()).collect(),
                error: None,
                retry_running: false,
            }),
            cond: Condvar::new(),
            retries: AtomicU64::new(0),
            _watchdog_probe: Mutex::new(None),
        });
        // Under the watchdog, a head-of-line frame burning through its
        // retry budget (or a peer already declared dead) is evidence that
        // "no progress" is a wedged wire, not an idle app. The probe holds
        // a weak ref so it never outlives the endpoint.
        if enabled && hiper_runtime::watchdog::armed() {
            let weak = Arc::downgrade(&me);
            let name = format!("reliable[{} rank {}]", module, me.transport.rank());
            let probe = hiper_runtime::watchdog::register_probe(name, move || {
                let me = weak.upgrade()?;
                me.head_of_line_report()
            });
            *me._watchdog_probe.lock() = Some(probe);
        }
        me
    }

    /// `Some(report)` when any peer looks wedged: declared dead, or a
    /// head-of-line frame that has consumed at least half its retry budget.
    fn head_of_line_report(&self) -> Option<String> {
        let st = self.state.lock();
        let suspect_after = (self.cfg.max_attempts / 2).max(2);
        let mut lines = Vec::new();
        for (dst, peer) in st.peers.iter().enumerate() {
            if peer.dead {
                lines.push(format!(
                    "rank {}->{}: peer dead after {} attempts",
                    self.transport.rank(),
                    dst,
                    self.cfg.max_attempts
                ));
            } else if peer.head_attempts >= suspect_after {
                if let Some((&seq, (_, tag, _, span))) = peer.unacked.iter().next() {
                    lines.push(format!(
                        "rank {}->{}: head seq {} (tag {}, span {}) stuck at \
                         attempt {}/{}, {} frame(s) queued",
                        self.transport.rank(),
                        dst,
                        seq,
                        tag,
                        span,
                        peer.head_attempts,
                        self.cfg.max_attempts,
                        peer.unacked.len()
                    ));
                }
            }
        }
        if lines.is_empty() {
            None
        } else {
            Some(lines.join("; "))
        }
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> Rank {
        self.transport.rank()
    }

    /// Total ranks.
    pub fn nranks(&self) -> usize {
        self.transport.nranks()
    }

    /// The wrapped raw transport.
    pub fn raw_transport(&self) -> &Transport {
        &self.transport
    }

    /// True when acked delivery is armed (a fault plan is active).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Retransmissions so far.
    pub fn retry_count(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// `Err` once any peer exhausted its retry budget.
    pub fn health(&self) -> Result<(), ModuleError> {
        match &self.state.lock().error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Sends `payload` to `dst`, reliably when faults are armed. Sends to a
    /// peer already declared unreachable are discarded (see [`health`]).
    ///
    /// [`health`]: ReliableTransport::health
    pub fn send(self: &Arc<Self>, dst: Rank, channel: Channel, tag: u64, payload: Bytes) {
        if !self.enabled {
            return self.transport.send(dst, channel, tag, payload);
        }
        // Capture the causal span here, at the logical send: retransmits
        // (which run on the retry thread, with no task context) reuse it so
        // the eventual delivery still credits the originating task.
        let span = hiper_trace::current_task();
        let frame = {
            let mut st = self.state.lock();
            let peer = &mut st.peers[dst];
            if peer.dead {
                return;
            }
            let seq = peer.next_seq;
            peer.next_seq += 1;
            let mut buf = Vec::with_capacity(9 + payload.len());
            buf.push(FRAME_DATA);
            buf.extend_from_slice(&seq.to_le_bytes());
            buf.extend_from_slice(&payload);
            let frame = Bytes::from(buf);
            peer.unacked
                .insert(seq, (channel, tag, frame.clone(), span));
            if peer.unacked.len() == 1 {
                peer.head_timeout = self.cfg.timeout;
                peer.head_attempts = 1;
                peer.head_deadline = Some(Instant::now() + self.cfg.timeout);
            }
            frame
        };
        self.transport.send_span(dst, channel, tag, frame, span);
        self.ensure_retry_thread();
        self.cond.notify_all();
    }

    /// Registers the inner handler for `channel`. When reliable delivery is
    /// armed the handler sees exactly the sender's payloads, exactly once,
    /// in order; frames and acks stay invisible.
    ///
    /// Every endpoint that *sends* on a channel must also register a handler
    /// for it (a no-op one is fine): acks travel back on the same channel
    /// and are consumed here. The MPI and SHMEM modules register on every
    /// rank, so this holds by construction for them.
    pub fn register_handler(self: &Arc<Self>, channel: Channel, inner: Handler) {
        if !self.enabled {
            return self.transport.register_handler(channel, inner);
        }
        let me = Arc::clone(self);
        self.transport.register_handler(
            channel,
            Box::new(move |msg| me.on_wire(channel, &inner, msg)),
        );
    }

    /// Decodes one wire frame (runs on the delivery-engine thread).
    fn on_wire(self: &Arc<Self>, channel: Channel, inner: &Handler, msg: Message) {
        let raw = &msg.payload;
        if raw.is_empty() {
            return;
        }
        let kind = raw[0];
        if raw.len() < 9 {
            return;
        }
        let word = u64::from_le_bytes(raw[1..9].try_into().unwrap());
        match kind {
            FRAME_DATA => {
                let seq = word;
                let src = msg.src;
                let body = raw.slice(9..raw.len());
                let (deliverable, ack) = {
                    let mut st = self.state.lock();
                    let peer = &mut st.peers[src];
                    let mut deliverable = Vec::new();
                    if seq >= peer.next_deliver {
                        let stripped = Message {
                            payload: body,
                            ..msg
                        };
                        if seq == peer.next_deliver {
                            peer.next_deliver += 1;
                            deliverable.push(stripped);
                            while let Some(m) = peer.held.remove(&peer.next_deliver) {
                                peer.next_deliver += 1;
                                deliverable.push(m);
                            }
                        } else {
                            peer.held.insert(seq, stripped);
                        }
                    }
                    (deliverable, peer.next_deliver)
                };
                // Deliver outside the lock: handlers may re-enter send().
                for m in deliverable {
                    inner(m);
                }
                let mut buf = Vec::with_capacity(9);
                buf.push(FRAME_ACK);
                buf.extend_from_slice(&ack.to_le_bytes());
                self.transport.send(src, channel, 0, Bytes::from(buf));
            }
            FRAME_ACK => {
                let cum = word;
                let mut st = self.state.lock();
                let peer = &mut st.peers[msg.src];
                let had = peer.unacked.len();
                peer.unacked = peer.unacked.split_off(&cum);
                if peer.unacked.len() < had {
                    // Head of line advanced: fresh retry budget for the new
                    // head (per-frame bounded attempts).
                    peer.head_timeout = self.cfg.timeout;
                    peer.head_attempts = 1;
                    peer.head_deadline = if peer.unacked.is_empty() {
                        None
                    } else {
                        Some(Instant::now() + self.cfg.timeout)
                    };
                }
            }
            _ => {}
        }
    }

    fn ensure_retry_thread(self: &Arc<Self>) {
        let mut st = self.state.lock();
        if st.retry_running {
            return;
        }
        st.retry_running = true;
        drop(st);
        let weak = Arc::downgrade(self);
        std::thread::Builder::new()
            .name(format!("hiper-rel-{}", self.transport.rank()))
            .spawn(move || retry_loop(weak))
            .expect("failed to spawn reliable-retry thread");
    }
}

/// The per-endpoint retry thread: retransmits head-of-line frames whose
/// deadline passed, declares peers unreachable when the budget is gone, and
/// exits when the owning [`ReliableTransport`] is dropped.
fn retry_loop(weak: Weak<ReliableTransport>) {
    loop {
        let me = match weak.upgrade() {
            Some(me) => me,
            None => return,
        };
        let now = Instant::now();
        #[allow(clippy::type_complexity)]
        let mut resend: Vec<(Rank, Channel, u64, Bytes, u64, u32, u64)> = Vec::new();
        let mut wait = Duration::from_millis(20);
        {
            let mut st = me.state.lock();
            let mut newly_dead: Option<(Rank, u32)> = None;
            for (dst, peer) in st.peers.iter_mut().enumerate() {
                let deadline = match peer.head_deadline {
                    Some(d) if !peer.dead => d,
                    _ => continue,
                };
                if deadline > now {
                    wait = wait.min(deadline - now);
                    continue;
                }
                if peer.head_attempts >= me.cfg.max_attempts {
                    peer.dead = true;
                    peer.unacked.clear();
                    peer.head_deadline = None;
                    newly_dead = Some((dst, peer.head_attempts));
                    continue;
                }
                let (&seq, (channel, tag, frame, span)) =
                    peer.unacked.iter().next().expect("deadline without frame");
                peer.head_attempts += 1;
                peer.head_timeout = Duration::from_secs_f64(
                    (peer.head_timeout.as_secs_f64() * me.cfg.backoff)
                        .min(me.cfg.max_timeout.as_secs_f64()),
                );
                peer.head_deadline = Some(now + peer.head_timeout);
                wait = wait.min(peer.head_timeout);
                resend.push((
                    dst,
                    *channel,
                    *tag,
                    frame.clone(),
                    seq,
                    peer.head_attempts,
                    *span,
                ));
            }
            if let Some((dst, attempts)) = newly_dead {
                let err = ModuleError::unreachable(me.module, dst, attempts);
                eprintln!("[hiper-netsim] {}", err);
                if st.error.is_none() {
                    st.error = Some(err);
                }
            }
        }
        for (dst, channel, tag, frame, seq, attempt, span) in resend {
            me.retries.fetch_add(1, Ordering::Relaxed);
            if hiper_metrics::enabled() {
                hiper_metrics::counter("hiper_reliable_retransmits_total").inc();
            }
            if hiper_trace::enabled() {
                hiper_trace::emit(
                    EventKind::RelRetry,
                    ((me.transport.rank() as u64) << 32) | dst as u64,
                    seq,
                    attempt as u64,
                );
            }
            me.transport.send_span(dst, channel, tag, frame, span);
        }
        let mut st = me.state.lock();
        me.cond.wait_for(&mut st, wait);
        drop(st);
        drop(me);
    }
}

impl std::fmt::Debug for ReliableTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReliableTransport")
            .field("module", &self.module)
            .field("rank", &self.transport.rank())
            .field("enabled", &self.enabled)
            .field("retries", &self.retry_count())
            .finish()
    }
}
