//! Ack-based reliable delivery over a lossy [`Transport`], with
//! epoch-numbered incarnations for rank restart.
//!
//! When a [`crate::FaultPlan`] is armed, the wire may drop, duplicate,
//! reorder and delay messages. `ReliableTransport` restores exactly-once,
//! in-order delivery per (src, dst) pair with the classic recipe
//! (DESIGN.md §2.9):
//!
//! * every data payload is framed with a per-destination sequence number;
//! * the receiver delivers in sequence order, holds early frames in a
//!   reorder buffer, discards (and re-acks) duplicates, and returns
//!   *cumulative* acks;
//! * the sender keeps unacked frames and retransmits the head of line on a
//!   timeout with exponential backoff, bounded by
//!   [`RetryConfig::max_attempts`] — after which the peer is declared dead
//!   and a typed [`ModuleError::Unreachable`] is recorded.
//!
//! # Epochs and rank restart (DESIGN.md §2.13)
//!
//! Every frame carries the sender's **epoch** — its incarnation number.
//! When a supervised rank is restored from a checkpoint it calls
//! [`ReliableTransport::restart`] with the per-peer receive watermarks
//! captured in the snapshot: the endpoint bumps its epoch, resets its send
//! sequence space to zero, rolls its receive cursors back to the
//! watermarks, and broadcasts a `RESTART(epoch, cum)` frame to every peer.
//! A peer seeing the higher epoch discards in-flight frames and acks from
//! the old incarnation, clears its hold-back queue, treats `cum` as an
//! implicit cumulative-ack reset (frames below it were durably
//! checkpointed; frames at or above it are retransmitted), and confirms
//! with `RESTART_ACK`. Peers keep their own sequence numbering toward the
//! restarted rank, so the restored receive watermark lines up exactly with
//! the retransmitted stream — exactly-once delivery across the crash.
//!
//! Frames a receiver already acked may still be *rolled back* by its
//! restore; senders therefore retain acked frames in a replay log (when
//! [`ReliableTransport::enable_retention`] is armed) until the receiver's
//! periodic `CKPT(watermark)` frame confirms they are covered by a durable
//! snapshot. The `RESTART` resync replays the log, reconstructing every
//! delivered-then-rolled-back message.
//!
//! On a fault-free engine (no plan armed) every call passes straight
//! through to the raw transport: no framing, no acks, no retry thread —
//! zero overhead for normal runs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use bytes::Bytes;
use hiper_runtime::ModuleError;
use hiper_trace::EventKind;
use parking_lot::{Condvar, Mutex};

use crate::cluster::Transport;
use crate::engine::Handler;
use crate::message::{Channel, Message, Rank};

const FRAME_DATA: u8 = 1;
const FRAME_ACK: u8 = 2;
/// Restarted incarnation announcing its new epoch and receive watermark.
const FRAME_RESTART: u8 = 3;
/// Peer's confirmation that it resynchronized to the announced epoch.
const FRAME_RESTART_ACK: u8 = 4;
/// Receiver's durable-checkpoint watermark: retained frames below it may
/// be garbage-collected from the sender's replay log.
const FRAME_CKPT: u8 = 5;

/// Retry policy for unacked frames.
#[derive(Debug, Clone, Copy)]
pub struct RetryConfig {
    /// Initial retransmit timeout.
    pub timeout: Duration,
    /// Timeout multiplier applied per retransmission.
    pub backoff: f64,
    /// Upper bound on the backed-off timeout.
    pub max_timeout: Duration,
    /// Attempts (first send + retransmissions) before the peer is declared
    /// unreachable.
    pub max_attempts: u32,
}

impl Default for RetryConfig {
    fn default() -> RetryConfig {
        RetryConfig {
            timeout: Duration::from_millis(2),
            backoff: 2.0,
            max_timeout: Duration::from_millis(50),
            // With the defaults this spans > 1s of outage: 2+4+...+50ms
            // capped sums to well past transient kill windows.
            max_attempts: 30,
        }
    }
}

/// A stored wire frame: (channel, tag, bytes, causal span).
type StoredFrame = (Channel, u64, Bytes, u64);

/// Per-peer sender + receiver state.
#[derive(Default)]
struct Peer {
    /// Last known epoch (incarnation number) of this peer.
    epoch: u32,
    /// Next sequence number to assign (send side).
    next_seq: u64,
    /// Sent but unacked frames, keyed by sequence number. Values are
    /// (channel, tag, frame, span): the exact wire frames, so
    /// retransmissions are byte-identical, plus the causal span captured at
    /// the *logical* send so retransmits keep the original parent.
    unacked: BTreeMap<u64, StoredFrame>,
    /// Acked frames retained for restart replay (retention mode only):
    /// delivered at the peer but not yet covered by one of its durable
    /// checkpoints. GC'd by `FRAME_CKPT` watermarks.
    log: BTreeMap<u64, StoredFrame>,
    /// Retransmit deadline for the head-of-line frame.
    head_deadline: Option<Instant>,
    /// Current (backed-off) timeout for the head frame.
    head_timeout: Duration,
    /// Send attempts of the head frame so far.
    head_attempts: u32,
    /// Next sequence number to deliver (receive side).
    next_deliver: u64,
    /// Early frames held for resequencing.
    held: BTreeMap<u64, Message>,
    /// Peer exhausted its retry budget; sends to it are discarded.
    dead: bool,
    /// Supervisor hold: the peer is known-down and being recovered, so the
    /// retry thread neither retransmits nor burns budget toward it.
    quiesced: bool,
    /// Our own `RESTART` toward this peer is not yet `RESTART_ACK`ed.
    restart_pending: bool,
    /// The receive watermark announced in our pending `RESTART`.
    restart_cum: u64,
    /// Resend deadline for the pending `RESTART`.
    restart_deadline: Option<Instant>,
    /// Resend attempts of the pending `RESTART`.
    restart_attempts: u32,
    /// When the most recent ack from this peer was applied.
    last_ack_at: Option<Instant>,
}

struct State {
    /// This endpoint's incarnation number (bumped by [`restart`]).
    ///
    /// [`restart`]: ReliableTransport::restart
    my_epoch: u32,
    peers: Vec<Peer>,
    /// First unreachability error, if any ([`ReliableTransport::health`]).
    error: Option<ModuleError>,
    /// Retry thread handle bookkeeping: true once spawned.
    retry_running: bool,
    /// Channels with registered handlers; control frames (`RESTART`,
    /// `CKPT`) travel on the first one.
    channels: Vec<Channel>,
}

/// Exactly-once, in-order delivery on top of a faulty [`Transport`];
/// transparent pass-through on a reliable one.
pub struct ReliableTransport {
    transport: Transport,
    module: &'static str,
    cfg: RetryConfig,
    enabled: bool,
    /// Retain acked frames for restart replay (supervised runs).
    retention: AtomicBool,
    state: Mutex<State>,
    cond: Condvar,
    /// Retransmitted frames (chaos-run diagnostics).
    pub retries: AtomicU64,
    /// Keeps the head-of-line stall probe registered with the runtime
    /// watchdog for this endpoint's lifetime (deregisters on drop).
    _watchdog_probe: Mutex<Option<hiper_runtime::watchdog::ProbeHandle>>,
    /// Keeps the per-peer state info (epoch, queue depths, last-ack age)
    /// in the watchdog flight record for this endpoint's lifetime.
    _watchdog_info: Mutex<Option<hiper_runtime::watchdog::InfoHandle>>,
}

impl ReliableTransport {
    /// Wraps `transport`; `module` names the owner in errors and stats.
    /// Reliable framing arms itself only when the underlying engine has an
    /// active fault plan.
    pub fn new(transport: Transport, module: &'static str, cfg: RetryConfig) -> Arc<Self> {
        let enabled = transport.faults_active();
        let nranks = transport.nranks();
        let me = Arc::new(ReliableTransport {
            transport,
            module,
            cfg,
            enabled,
            retention: AtomicBool::new(false),
            state: Mutex::new(State {
                my_epoch: 0,
                peers: (0..nranks).map(|_| Peer::default()).collect(),
                error: None,
                retry_running: false,
                channels: Vec::new(),
            }),
            cond: Condvar::new(),
            retries: AtomicU64::new(0),
            _watchdog_probe: Mutex::new(None),
            _watchdog_info: Mutex::new(None),
        });
        // Under the watchdog, a head-of-line frame burning through its
        // retry budget (or a peer already declared dead) is evidence that
        // "no progress" is a wedged wire, not an idle app. The probe holds
        // a weak ref so it never outlives the endpoint.
        if enabled && hiper_runtime::watchdog::recording() {
            let weak = Arc::downgrade(&me);
            let name = format!("reliable[{} rank {}]", module, me.transport.rank());
            let probe = hiper_runtime::watchdog::register_probe(name, move || {
                let me = weak.upgrade()?;
                me.head_of_line_report()
            });
            *me._watchdog_probe.lock() = Some(probe);
            let weak = Arc::downgrade(&me);
            let name = format!("reliable-state[{} rank {}]", module, me.transport.rank());
            let info = hiper_runtime::watchdog::register_info(name, move || {
                weak.upgrade()
                    .map_or_else(|| "<endpoint dropped>".into(), |me| me.peer_state_report())
            });
            *me._watchdog_info.lock() = Some(info);
        }
        me
    }

    /// `Some(report)` when any peer looks wedged: declared dead, or a
    /// head-of-line frame that has consumed at least half its retry budget.
    fn head_of_line_report(&self) -> Option<String> {
        let st = self.state.lock();
        let suspect_after = (self.cfg.max_attempts / 2).max(2);
        let mut lines = Vec::new();
        for (dst, peer) in st.peers.iter().enumerate() {
            if peer.dead {
                lines.push(format!(
                    "rank {}->{}: peer dead after {} attempts",
                    self.transport.rank(),
                    dst,
                    self.cfg.max_attempts
                ));
            } else if peer.head_attempts >= suspect_after {
                if let Some((&seq, (_, tag, _, span))) = peer.unacked.iter().next() {
                    lines.push(format!(
                        "rank {}->{}: head seq {} (tag {}, span {}) stuck at \
                         attempt {}/{}, {} frame(s) queued",
                        self.transport.rank(),
                        dst,
                        seq,
                        tag,
                        span,
                        peer.head_attempts,
                        self.cfg.max_attempts,
                        peer.unacked.len()
                    ));
                }
            }
        }
        if lines.is_empty() {
            None
        } else {
            Some(lines.join("; "))
        }
    }

    /// One line per peer with everything a stuck recovery needs: epoch,
    /// retransmit queue depth, replay-log depth, receive cursor, and the
    /// age of the last ack. Rendered into the watchdog flight record.
    pub fn peer_state_report(&self) -> String {
        let st = self.state.lock();
        let me = self.transport.rank();
        let mut lines = vec![format!("epoch={} rank={}", st.my_epoch, me)];
        for (dst, peer) in st.peers.iter().enumerate() {
            if dst == me {
                continue;
            }
            let last_ack = peer.last_ack_at.map_or_else(
                || "never".into(),
                |t| format!("{}ms", t.elapsed().as_millis()),
            );
            lines.push(format!(
                "->{}: epoch={} unacked={} log={} next_seq={} next_deliver={} held={} \
                 attempts={} last_ack_age={}{}{}{}",
                dst,
                peer.epoch,
                peer.unacked.len(),
                peer.log.len(),
                peer.next_seq,
                peer.next_deliver,
                peer.held.len(),
                peer.head_attempts,
                last_ack,
                if peer.dead { " DEAD" } else { "" },
                if peer.quiesced { " QUIESCED" } else { "" },
                if peer.restart_pending {
                    " RESTART-PENDING"
                } else {
                    ""
                },
            ));
        }
        lines.join("; ")
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> Rank {
        self.transport.rank()
    }

    /// Total ranks.
    pub fn nranks(&self) -> usize {
        self.transport.nranks()
    }

    /// The wrapped raw transport.
    pub fn raw_transport(&self) -> &Transport {
        &self.transport
    }

    /// True when acked delivery is armed (a fault plan is active).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Retransmissions so far.
    pub fn retry_count(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// This endpoint's current epoch (incarnation number).
    pub fn epoch(&self) -> u32 {
        if !self.enabled {
            return 0;
        }
        self.state.lock().my_epoch
    }

    /// `Err` once any peer exhausted its retry budget.
    pub fn health(&self) -> Result<(), ModuleError> {
        match &self.state.lock().error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    // ------------------------------------------------------------------
    // Supervision hooks (DESIGN.md §2.13)
    // ------------------------------------------------------------------

    /// Arms acked-frame retention: frames stay in a per-peer replay log
    /// after the ack until a `CKPT` watermark from the receiver confirms a
    /// durable snapshot covers them. Required for restart replay; bounded
    /// by the receiver's checkpoint cadence.
    pub fn enable_retention(&self) {
        self.retention.store(true, Ordering::Release);
    }

    /// Per-peer receive cursors, for inclusion in a durable checkpoint.
    /// [`restart`] rolls the receive side back to exactly these values.
    ///
    /// [`restart`]: ReliableTransport::restart
    pub fn recv_watermarks(&self) -> Vec<u64> {
        if !self.enabled {
            return vec![0; self.transport.nranks()];
        }
        self.state
            .lock()
            .peers
            .iter()
            .map(|p| p.next_deliver)
            .collect()
    }

    /// Announces a durable checkpoint to every peer: frames below
    /// `watermarks[peer]` are covered by the snapshot and may leave the
    /// peers' replay logs. Call with the watermarks stored in the snapshot.
    pub fn checkpoint_mark(&self, watermarks: &[u64]) {
        if !self.enabled {
            return;
        }
        let me = self.transport.rank();
        let (epoch, channel) = {
            let st = self.state.lock();
            match st.channels.first() {
                Some(&c) => (st.my_epoch, c),
                None => return,
            }
        };
        for (dst, &w) in watermarks.iter().enumerate() {
            if dst == me {
                continue;
            }
            let mut buf = Vec::with_capacity(13);
            buf.push(FRAME_CKPT);
            buf.extend_from_slice(&epoch.to_le_bytes());
            buf.extend_from_slice(&w.to_le_bytes());
            self.transport.send(dst, channel, 0, Bytes::from(buf));
        }
    }

    /// Blocks until every DATA frame sent before this call has been
    /// cumulatively acked by its receiver (retransmits keep running
    /// underneath), or `timeout` expires; returns whether the drain
    /// completed. Quiesced and dead peers are skipped — frames toward a
    /// crashed peer are replayed by the epoch resync when it recovers.
    ///
    /// This is the send-side half of the supervised crash discipline: a
    /// victim's [`restart`] voids the dead incarnation's sequence space,
    /// so any frame still unacked when the rank dies would be lost forever
    /// — replay only regenerates sends *after* the checkpoint cut. The
    /// harness therefore drains the victim's unacked queues right before
    /// unwinding ([`SupervisorHarness::crash_point`]), making "everything
    /// the victim sent before dying was delivered" an invariant rather
    /// than a race.
    ///
    /// [`restart`]: ReliableTransport::restart
    /// [`SupervisorHarness::crash_point`]: crate::SupervisorHarness::crash_point
    pub fn flush(&self, timeout: Duration) -> bool {
        if !self.enabled {
            return true;
        }
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            let pending = st
                .peers
                .iter()
                .any(|p| !p.quiesced && !p.dead && !p.unacked.is_empty());
            if !pending {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            // Re-check on a short tick: acks arrive on the delivery
            // thread, which doesn't signal this condvar.
            self.cond.wait_for(&mut st, Duration::from_micros(200));
        }
    }

    /// Supervisor hold on one peer: while quiesced, the retry thread
    /// neither retransmits toward it nor burns its retry budget, and new
    /// sends are queued without touching the wire. Releasing the hold
    /// grants the head-of-line frame a fresh budget and retransmits
    /// immediately.
    pub fn quiesce_peer(&self, peer: Rank, on: bool) {
        if !self.enabled {
            return;
        }
        {
            let mut st = self.state.lock();
            let p = &mut st.peers[peer];
            p.quiesced = on;
            if !on {
                p.head_attempts = 0;
                p.head_timeout = self.cfg.timeout;
                p.head_deadline = if p.unacked.is_empty() {
                    None
                } else {
                    Some(Instant::now())
                };
                if p.restart_pending {
                    p.restart_deadline = Some(Instant::now());
                }
            }
        }
        self.cond.notify_all();
    }

    /// Restarts this endpoint as a new incarnation restored from a
    /// checkpoint: bumps the epoch, resets the send sequence space, rolls
    /// receive cursors back to `recv_watermarks` (the values captured by
    /// [`recv_watermarks`] in the snapshot), clears any terminal error, and
    /// broadcasts `RESTART` to every peer (retransmitted until
    /// acknowledged). Returns the new epoch.
    ///
    /// [`recv_watermarks`]: ReliableTransport::recv_watermarks
    pub fn restart(self: &Arc<Self>, recv_watermarks: &[u64]) -> u32 {
        if !self.enabled {
            return 0;
        }
        let me = self.transport.rank();
        let now = Instant::now();
        let (epoch, channel, restarts) = {
            let mut st = self.state.lock();
            st.my_epoch += 1;
            st.error = None;
            let epoch = st.my_epoch;
            let channel = st.channels.first().copied();
            let mut restarts = Vec::new();
            for (dst, peer) in st.peers.iter_mut().enumerate() {
                if dst == me {
                    // The self-link dies with the rank: both endpoints are
                    // part of the crashed state, so it restarts from scratch
                    // — fresh sequence space in both directions, and the
                    // observed self-epoch pre-advanced so stale pre-crash
                    // self-frames still in flight are discarded on arrival
                    // (rather than tripping the new-epoch cursor reset in
                    // `observe_epoch` after replay self-sends resume).
                    peer.next_seq = 0;
                    peer.unacked.clear();
                    peer.log.clear();
                    peer.head_deadline = None;
                    peer.head_timeout = self.cfg.timeout;
                    peer.head_attempts = 0;
                    peer.dead = false;
                    peer.quiesced = false;
                    peer.next_deliver = 0;
                    peer.held.clear();
                    peer.epoch = epoch;
                    peer.restart_pending = false;
                    peer.restart_deadline = None;
                    continue;
                }
                let cum = recv_watermarks.get(dst).copied().unwrap_or(0);
                // Send side: brand-new sequence space under the new epoch.
                peer.next_seq = 0;
                peer.unacked.clear();
                peer.log.clear();
                peer.head_deadline = None;
                peer.head_timeout = self.cfg.timeout;
                peer.head_attempts = 0;
                peer.dead = false;
                peer.quiesced = false;
                // Receive side: exactly the snapshot's cursor; everything
                // at or above it is retransmitted/replayed by the peer.
                peer.next_deliver = cum;
                peer.held.clear();
                peer.restart_pending = true;
                peer.restart_cum = cum;
                peer.restart_deadline = Some(now);
                peer.restart_attempts = 0;
                restarts.push((dst, cum));
            }
            (epoch, channel, restarts)
        };
        if let Some(channel) = channel {
            for (dst, cum) in restarts {
                self.transport
                    .send(dst, channel, 0, restart_frame(epoch, cum));
            }
        }
        self.ensure_retry_thread();
        self.cond.notify_all();
        epoch
    }

    /// Sends `payload` to `dst`, reliably when faults are armed. Sends to a
    /// peer already declared unreachable are discarded (see [`health`]).
    ///
    /// [`health`]: ReliableTransport::health
    pub fn send(self: &Arc<Self>, dst: Rank, channel: Channel, tag: u64, payload: Bytes) {
        if !self.enabled {
            return self.transport.send(dst, channel, tag, payload);
        }
        // Capture the causal span here, at the logical send: retransmits
        // (which run on the retry thread, with no task context) reuse it so
        // the eventual delivery still credits the originating task.
        let span = hiper_trace::current_task();
        let frame = {
            let mut st = self.state.lock();
            let epoch = st.my_epoch;
            let peer = &mut st.peers[dst];
            if peer.dead {
                return;
            }
            let seq = peer.next_seq;
            peer.next_seq += 1;
            let mut buf = Vec::with_capacity(13 + payload.len());
            buf.push(FRAME_DATA);
            buf.extend_from_slice(&epoch.to_le_bytes());
            buf.extend_from_slice(&seq.to_le_bytes());
            buf.extend_from_slice(&payload);
            let frame = Bytes::from(buf);
            peer.unacked
                .insert(seq, (channel, tag, frame.clone(), span));
            if peer.unacked.len() == 1 {
                peer.head_timeout = self.cfg.timeout;
                peer.head_attempts = 1;
                peer.head_deadline = Some(Instant::now() + self.cfg.timeout);
            }
            if peer.quiesced {
                // Queue silently; the release retransmits from the head.
                None
            } else {
                Some(frame)
            }
        };
        if let Some(frame) = frame {
            self.transport.send_span(dst, channel, tag, frame, span);
        }
        self.ensure_retry_thread();
        self.cond.notify_all();
    }

    /// Registers the inner handler for `channel`. When reliable delivery is
    /// armed the handler sees exactly the sender's payloads, exactly once,
    /// in order; frames and acks stay invisible.
    ///
    /// Every endpoint that *sends* on a channel must also register a handler
    /// for it (a no-op one is fine): acks travel back on the same channel
    /// and are consumed here. The MPI and SHMEM modules register on every
    /// rank, so this holds by construction for them.
    pub fn register_handler(self: &Arc<Self>, channel: Channel, inner: Handler) {
        if !self.enabled {
            return self.transport.register_handler(channel, inner);
        }
        self.state.lock().channels.push(channel);
        let me = Arc::clone(self);
        self.transport.register_handler(
            channel,
            Box::new(move |msg| me.on_wire(channel, &inner, msg)),
        );
    }

    /// Observes `src` at incarnation `claimed` (must hold the state lock
    /// via `st`). On an epoch advance: forgets the dead incarnation's
    /// receive state, revives the peer, and clears a stale terminal error.
    /// Returns false when the frame is from a *stale* incarnation and must
    /// be discarded.
    fn observe_epoch(st: &mut State, src: Rank, claimed: u32, module: &'static str) -> bool {
        let peer = &mut st.peers[src];
        if claimed < peer.epoch {
            return false;
        }
        if claimed > peer.epoch {
            peer.epoch = claimed;
            // The old incarnation's in-flight frames are void: reset the
            // receive cursor for the restarted sender's fresh sequence
            // space and drop held frames from before the crash.
            peer.next_deliver = 0;
            peer.held.clear();
            // A restarted peer is reachable again by definition.
            peer.dead = false;
            peer.quiesced = false;
            peer.head_attempts = 0;
            if let Some(ModuleError::Unreachable { peer: p, .. }) = &st.error {
                if *p == src && st.error.as_ref().map(|e| e.module()) == Some(module) {
                    st.error = None;
                }
            }
        }
        true
    }

    /// Resynchronizes the send side toward a restarted `src` around the
    /// announced cumulative watermark: frames below `cum` are durably
    /// checkpointed at the peer and dropped; retained/unacked frames at or
    /// above it are queued for retransmission. Returns the frames to burst
    /// onto the wire, in sequence order.
    fn resync_send_side(peer: &mut Peer, cum: u64, cfg: &RetryConfig) -> Vec<StoredFrame> {
        // Replay log first: its sequence numbers precede every unacked one.
        let keep_log = peer.log.split_off(&cum);
        peer.log.clear();
        for (seq, frame) in keep_log {
            peer.unacked.insert(seq, frame);
        }
        peer.unacked = peer.unacked.split_off(&cum);
        peer.head_timeout = cfg.timeout;
        peer.head_attempts = 1;
        peer.head_deadline = if peer.unacked.is_empty() {
            None
        } else {
            Some(Instant::now() + cfg.timeout)
        };
        peer.unacked.values().cloned().collect()
    }

    /// Decodes one wire frame (runs on the delivery-engine thread).
    fn on_wire(self: &Arc<Self>, channel: Channel, inner: &Handler, msg: Message) {
        let raw = &msg.payload;
        if raw.len() < 5 {
            return;
        }
        let kind = raw[0];
        let epoch_field = u32::from_le_bytes(raw[1..5].try_into().unwrap());
        let src = msg.src;
        match kind {
            FRAME_DATA if raw.len() >= 13 => {
                let seq = u64::from_le_bytes(raw[5..13].try_into().unwrap());
                let body = raw.slice(13..raw.len());
                let (deliverable, ack) = {
                    let mut st = self.state.lock();
                    if !Self::observe_epoch(&mut st, src, epoch_field, self.module) {
                        if crate::supervise::debug_enabled() {
                            eprintln!(
                                "[rel r{}] drop stale DATA src={} epoch={} seq={}",
                                self.transport.rank(),
                                src,
                                epoch_field,
                                seq
                            );
                        }
                        return;
                    }
                    let my_epoch = st.my_epoch;
                    let peer = &mut st.peers[src];
                    let mut deliverable = Vec::new();
                    if seq >= peer.next_deliver {
                        let stripped = Message {
                            payload: body,
                            ..msg
                        };
                        if seq == peer.next_deliver {
                            peer.next_deliver += 1;
                            deliverable.push(stripped);
                            while let Some(m) = peer.held.remove(&peer.next_deliver) {
                                peer.next_deliver += 1;
                                deliverable.push(m);
                            }
                        } else {
                            peer.held.insert(seq, stripped);
                        }
                    }
                    (
                        deliverable,
                        ack_frame(epoch_field, my_epoch, peer.next_deliver),
                    )
                };
                // Deliver outside the lock: handlers may re-enter send().
                for m in deliverable {
                    inner(m);
                }
                self.transport.send(src, channel, 0, ack);
            }
            FRAME_ACK if raw.len() >= 17 => {
                // data_epoch: whose send space the cum refers to (ours, if
                // current); acker_epoch: the acker's incarnation.
                let data_epoch = epoch_field;
                let acker_epoch = u32::from_le_bytes(raw[5..9].try_into().unwrap());
                let cum = u64::from_le_bytes(raw[9..17].try_into().unwrap());
                let burst = {
                    let mut st = self.state.lock();
                    let known = st.peers[src].epoch;
                    if acker_epoch < known {
                        // Ack from a dead incarnation: its cum refers to
                        // receive state that was rolled back. Applying it
                        // would falsely retire frames the restored peer
                        // still needs.
                        if crate::supervise::debug_enabled() {
                            eprintln!(
                                "[rel r{}] drop stale ACK src={} acker_epoch={} known={} cum={}",
                                self.transport.rank(),
                                src,
                                acker_epoch,
                                known,
                                cum
                            );
                        }
                        return;
                    }
                    if data_epoch != st.my_epoch {
                        // Acks our own previous incarnation's space.
                        if crate::supervise::debug_enabled() {
                            eprintln!(
                                "[rel r{}] drop old-space ACK src={} data_epoch={} my_epoch={} cum={}",
                                self.transport.rank(),
                                src,
                                data_epoch,
                                st.my_epoch,
                                cum,
                            );
                        }
                        return;
                    }
                    let epoch_advance = acker_epoch > known;
                    if !Self::observe_epoch(&mut st, src, acker_epoch, self.module) {
                        return;
                    }
                    let retention = self.retention.load(Ordering::Acquire);
                    let cfg = self.cfg;
                    let peer = &mut st.peers[src];
                    peer.last_ack_at = Some(Instant::now());
                    if epoch_advance {
                        // The ack overtook the peer's RESTART frame: its
                        // cum is the restored receive watermark, so run the
                        // full resync now rather than waiting.
                        Self::resync_send_side(peer, cum, &cfg)
                    } else {
                        let mut acked = peer.unacked.split_off(&cum);
                        std::mem::swap(&mut acked, &mut peer.unacked);
                        if !acked.is_empty() {
                            if retention {
                                peer.log.extend(acked);
                            }
                            // Head of line advanced: fresh retry budget for
                            // the new head (per-frame bounded attempts).
                            peer.head_timeout = cfg.timeout;
                            peer.head_attempts = 1;
                            peer.head_deadline = if peer.unacked.is_empty() {
                                None
                            } else {
                                Some(Instant::now() + cfg.timeout)
                            };
                        }
                        Vec::new()
                    }
                };
                self.burst(src, burst);
            }
            FRAME_RESTART if raw.len() >= 13 => {
                let cum = u64::from_le_bytes(raw[5..13].try_into().unwrap());
                let (burst, ack) = {
                    let mut st = self.state.lock();
                    if !Self::observe_epoch(&mut st, src, epoch_field, self.module) {
                        return;
                    }
                    let cfg = self.cfg;
                    let peer = &mut st.peers[src];
                    // Idempotent on duplicates: re-pruning below cum and
                    // re-sending the burst/ack is harmless.
                    let burst = Self::resync_send_side(peer, cum, &cfg);
                    (burst, restart_ack_frame(epoch_field))
                };
                self.transport.send(src, channel, 0, ack);
                self.burst(src, burst);
            }
            FRAME_RESTART_ACK => {
                let mut st = self.state.lock();
                if epoch_field == st.my_epoch {
                    let peer = &mut st.peers[src];
                    peer.restart_pending = false;
                    peer.restart_deadline = None;
                }
            }
            FRAME_CKPT if raw.len() >= 13 => {
                let watermark = u64::from_le_bytes(raw[5..13].try_into().unwrap());
                let mut st = self.state.lock();
                if !Self::observe_epoch(&mut st, src, epoch_field, self.module) {
                    return;
                }
                // Frames below the watermark are inside the peer's durable
                // snapshot: a restart can never need them again.
                let peer = &mut st.peers[src];
                peer.log = peer.log.split_off(&watermark);
            }
            _ => {}
        }
    }

    /// Retransmits a resync burst in sequence order (outside the lock).
    fn burst(self: &Arc<Self>, dst: Rank, frames: Vec<StoredFrame>) {
        if frames.is_empty() {
            return;
        }
        for (channel, tag, frame, span) in frames {
            self.retries.fetch_add(1, Ordering::Relaxed);
            self.transport.send_span(dst, channel, tag, frame, span);
        }
        self.cond.notify_all();
    }

    fn ensure_retry_thread(self: &Arc<Self>) {
        let mut st = self.state.lock();
        if st.retry_running {
            return;
        }
        st.retry_running = true;
        drop(st);
        let weak = Arc::downgrade(self);
        std::thread::Builder::new()
            .name(format!("hiper-rel-{}", self.transport.rank()))
            .spawn(move || retry_loop(weak))
            .expect("failed to spawn reliable-retry thread");
    }
}

fn ack_frame(data_epoch: u32, acker_epoch: u32, cum: u64) -> Bytes {
    let mut buf = Vec::with_capacity(17);
    buf.push(FRAME_ACK);
    buf.extend_from_slice(&data_epoch.to_le_bytes());
    buf.extend_from_slice(&acker_epoch.to_le_bytes());
    buf.extend_from_slice(&cum.to_le_bytes());
    Bytes::from(buf)
}

fn restart_frame(epoch: u32, cum: u64) -> Bytes {
    let mut buf = Vec::with_capacity(13);
    buf.push(FRAME_RESTART);
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&cum.to_le_bytes());
    Bytes::from(buf)
}

fn restart_ack_frame(epoch: u32) -> Bytes {
    let mut buf = Vec::with_capacity(5);
    buf.push(FRAME_RESTART_ACK);
    buf.extend_from_slice(&epoch.to_le_bytes());
    Bytes::from(buf)
}

/// The per-endpoint retry thread: retransmits head-of-line frames whose
/// deadline passed, re-sends unacknowledged `RESTART` announcements,
/// declares peers unreachable when the budget is gone, and exits when the
/// owning [`ReliableTransport`] is dropped or the cluster's delivery
/// engine stops (a stopped wire can never ack, so retrying against it
/// only burns CPU and spams `Unreachable` errors long after the run).
fn retry_loop(weak: Weak<ReliableTransport>) {
    loop {
        let me = match weak.upgrade() {
            Some(me) => me,
            None => return,
        };
        if me.transport.engine().is_stopped() {
            return;
        }
        let now = Instant::now();
        #[allow(clippy::type_complexity)]
        let mut resend: Vec<(Rank, Channel, u64, Bytes, u64, u32, u64)> = Vec::new();
        let mut control: Vec<(Rank, Channel, Bytes)> = Vec::new();
        let mut wait = Duration::from_millis(20);
        {
            let mut st = me.state.lock();
            let my_epoch = st.my_epoch;
            let control_channel = st.channels.first().copied();
            let mut newly_dead: Option<(Rank, u32)> = None;
            for (dst, peer) in st.peers.iter_mut().enumerate() {
                if peer.quiesced {
                    continue;
                }
                // Unacked RESTART announcements get their own resend loop:
                // the epoch handshake must survive drop injection.
                if peer.restart_pending {
                    if let (Some(deadline), Some(channel)) =
                        (peer.restart_deadline, control_channel)
                    {
                        if deadline <= now {
                            if peer.restart_attempts >= me.cfg.max_attempts {
                                peer.restart_pending = false;
                                peer.restart_deadline = None;
                            } else {
                                peer.restart_attempts += 1;
                                peer.restart_deadline = Some(now + me.cfg.timeout);
                                wait = wait.min(me.cfg.timeout);
                                control.push((
                                    dst,
                                    channel,
                                    restart_frame(my_epoch, peer.restart_cum),
                                ));
                            }
                        } else {
                            wait = wait.min(deadline - now);
                        }
                    }
                }
                let deadline = match peer.head_deadline {
                    Some(d) if !peer.dead => d,
                    _ => continue,
                };
                if deadline > now {
                    wait = wait.min(deadline - now);
                    continue;
                }
                if peer.head_attempts >= me.cfg.max_attempts {
                    peer.dead = true;
                    peer.unacked.clear();
                    peer.log.clear();
                    peer.head_deadline = None;
                    newly_dead = Some((dst, peer.head_attempts));
                    continue;
                }
                let (&seq, (channel, tag, frame, span)) =
                    peer.unacked.iter().next().expect("deadline without frame");
                if peer.head_attempts < 3 && crate::supervise::debug_enabled() {
                    eprintln!(
                        "[rel r{}] retransmit dst={} seq={} kind={} attempt={} chan={} tag={:#x}",
                        me.transport.rank(),
                        dst,
                        seq,
                        frame.first().copied().unwrap_or(255),
                        peer.head_attempts + 1,
                        channel.0,
                        tag,
                    );
                }
                peer.head_attempts += 1;
                peer.head_timeout = Duration::from_secs_f64(
                    (peer.head_timeout.as_secs_f64() * me.cfg.backoff)
                        .min(me.cfg.max_timeout.as_secs_f64()),
                );
                peer.head_deadline = Some(now + peer.head_timeout);
                wait = wait.min(peer.head_timeout);
                resend.push((
                    dst,
                    *channel,
                    *tag,
                    frame.clone(),
                    seq,
                    peer.head_attempts,
                    *span,
                ));
            }
            if let Some((dst, attempts)) = newly_dead {
                if crate::supervise::debug_enabled() {
                    let p = &st.peers[dst];
                    eprintln!(
                        "[rel r{}] dst {} dead: head_seq={:?} unacked={} log={} my_epoch={} peer_epoch={} next_deliver={}",
                        me.transport.rank(),
                        dst,
                        p.unacked.keys().next(),
                        p.unacked.len(),
                        p.log.len(),
                        my_epoch,
                        p.epoch,
                        p.next_deliver,
                    );
                }
                let err = ModuleError::unreachable(me.module, dst, attempts);
                eprintln!("[hiper-netsim] {}", err);
                if st.error.is_none() {
                    st.error = Some(err);
                }
            }
        }
        for (dst, channel, frame) in control {
            me.transport.send(dst, channel, 0, frame);
        }
        for (dst, channel, tag, frame, seq, attempt, span) in resend {
            me.retries.fetch_add(1, Ordering::Relaxed);
            if hiper_metrics::enabled() {
                hiper_metrics::counter("hiper_reliable_retransmits_total").inc();
            }
            if hiper_trace::enabled() {
                hiper_trace::emit(
                    EventKind::RelRetry,
                    ((me.transport.rank() as u64) << 32) | dst as u64,
                    seq,
                    attempt as u64,
                );
            }
            me.transport.send_span(dst, channel, tag, frame, span);
        }
        let mut st = me.state.lock();
        me.cond.wait_for(&mut st, wait);
        drop(st);
        drop(me);
    }
}

impl std::fmt::Debug for ReliableTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReliableTransport")
            .field("module", &self.module)
            .field("rank", &self.transport.rank())
            .field("enabled", &self.enabled)
            .field("epoch", &self.epoch())
            .field("retries", &self.retry_count())
            .finish()
    }
}
