//! SPMD cluster launcher: one HiPER runtime per simulated rank, one OS
//! thread driving each rank's `main`, all connected through a shared
//! [`DeliveryEngine`].

use std::sync::Arc;

use bytes::Bytes;
use hiper_platform::PlatformConfig;
use hiper_runtime::{Runtime, RuntimeBuilder, SchedulerModule};

use crate::engine::{DeliveryEngine, Handler, NetConfig};
use crate::message::{Channel, Message, Rank};

/// A rank's endpoint on the simulated interconnect. Cheap to clone.
#[derive(Clone)]
pub struct Transport {
    engine: Arc<DeliveryEngine>,
    rank: Rank,
}

impl Transport {
    /// This endpoint's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Total ranks in the cluster.
    pub fn nranks(&self) -> usize {
        self.engine.ranks()
    }

    /// Sends an active message to `dst`. The causal parent span is taken
    /// from the calling thread's current traced task (0 when untraced).
    pub fn send(&self, dst: Rank, channel: Channel, tag: u64, payload: Bytes) {
        self.send_span(dst, channel, tag, payload, hiper_trace::current_task());
    }

    /// Sends an active message with an explicit causal parent span —
    /// reliable transports use this so retransmits carry the span captured
    /// at the *logical* send.
    pub fn send_span(&self, dst: Rank, channel: Channel, tag: u64, payload: Bytes, span: u64) {
        self.send_framed(dst, channel, tag, Bytes::new(), payload, span);
    }

    /// Sends a framed active message: `header` is a protocol prefix carried
    /// separately from `payload` so framing never copies the payload (the
    /// reliable layer's zero-copy DATA path). Both segments count toward
    /// the modeled wire size.
    pub fn send_framed(
        &self,
        dst: Rank,
        channel: Channel,
        tag: u64,
        header: Bytes,
        payload: Bytes,
        span: u64,
    ) {
        self.engine.send(Message {
            src: self.rank,
            dst,
            channel,
            tag,
            header,
            payload,
            span,
            due_ns: 0,
        });
    }

    /// Registers this rank's handler for `channel`. Handlers run on the
    /// delivery-engine thread and must be cheap; spawn onto the rank's
    /// runtime for anything heavier.
    pub fn register_handler(&self, channel: Channel, handler: Handler) {
        self.engine.register_handler(self.rank, channel, handler);
    }

    /// The network model in force.
    pub fn net_config(&self) -> NetConfig {
        self.engine.config()
    }

    /// Traffic counters for the whole cluster.
    pub fn net_stats(&self) -> crate::engine::NetStatsSnapshot {
        self.engine.stats.snapshot()
    }

    /// The armed fault plan, if any. Communication modules consult this to
    /// decide whether to wrap themselves in a [`crate::ReliableTransport`].
    pub fn fault_plan(&self) -> Option<&crate::FaultPlan> {
        self.engine.fault_plan()
    }

    /// True when fault injection is armed (reliable delivery required).
    pub fn faults_active(&self) -> bool {
        self.engine.fault_plan().is_some()
    }

    /// The shared delivery engine. Recovery drivers use this to sever and
    /// restore a rank (`set_rank_down`) and to subscribe to rank events.
    pub fn engine(&self) -> &Arc<DeliveryEngine> {
        &self.engine
    }
}

impl std::fmt::Debug for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Transport(rank {}/{})", self.rank, self.nranks())
    }
}

/// Everything a rank's `main` function gets.
pub struct RankEnv {
    /// This rank.
    pub rank: Rank,
    /// Total ranks.
    pub nranks: usize,
    /// The rank's HiPER runtime.
    pub runtime: Runtime,
    /// The rank's interconnect endpoint.
    pub transport: Transport,
}

/// A running simulated cluster (advanced use; most callers want
/// [`SpmdBuilder`]).
pub struct Cluster {
    engine: Arc<DeliveryEngine>,
}

impl Cluster {
    /// Starts the delivery engine for `nranks` ranks.
    pub fn start(nranks: usize, net: NetConfig) -> Cluster {
        Cluster {
            engine: DeliveryEngine::start(nranks, net),
        }
    }

    /// Starts the delivery engine with an armed fault plan.
    pub fn start_with_faults(
        nranks: usize,
        net: NetConfig,
        faults: Option<crate::FaultPlan>,
    ) -> Cluster {
        Cluster {
            engine: DeliveryEngine::start_with_faults(nranks, net, faults),
        }
    }

    /// Endpoint for `rank`.
    pub fn transport(&self, rank: Rank) -> Transport {
        assert!(rank < self.engine.ranks());
        Transport {
            engine: Arc::clone(&self.engine),
            rank,
        }
    }

    /// Stops the delivery engine and drops its handler table. Handler
    /// closures commonly capture the endpoint that registered them, which
    /// itself references the engine — clearing the table here breaks that
    /// cycle so a finished run's endpoints can actually drop.
    pub fn stop(&self) {
        self.engine.stop();
        self.engine.clear_handlers();
    }
}

/// Builder for SPMD runs: `N` ranks, each with its own runtime and modules,
/// each executing the same `main`.
pub struct SpmdBuilder {
    nranks: usize,
    net: NetConfig,
    faults: Option<crate::FaultPlan>,
    platform: Box<dyn Fn(Rank) -> PlatformConfig + Send + Sync>,
}

impl SpmdBuilder {
    /// An SPMD run over `nranks` ranks, 2 workers per rank by default.
    pub fn new(nranks: usize) -> SpmdBuilder {
        assert!(nranks > 0);
        SpmdBuilder {
            nranks,
            net: NetConfig::default(),
            faults: None,
            platform: Box::new(|_| hiper_platform::autogen::smp(2)),
        }
    }

    /// Sets the network model.
    pub fn net(mut self, net: NetConfig) -> SpmdBuilder {
        self.net = net;
        self
    }

    /// Arms a fault-injection plan for the run (chaos testing). Modules
    /// built on the transport switch to reliable acked delivery when the
    /// plan is active; an inactive plan changes nothing.
    pub fn faults(mut self, plan: crate::FaultPlan) -> SpmdBuilder {
        self.faults = Some(plan);
        self
    }

    /// Sets the number of workers in every rank's runtime (shorthand for
    /// [`platform`](Self::platform) with `autogen::smp(workers)`).
    pub fn workers_per_rank(mut self, workers: usize) -> SpmdBuilder {
        self.platform = Box::new(move |_| hiper_platform::autogen::smp(workers));
        self
    }

    /// Sets the per-rank platform model.
    pub fn platform(
        mut self,
        f: impl Fn(Rank) -> PlatformConfig + Send + Sync + 'static,
    ) -> SpmdBuilder {
        self.platform = Box::new(f);
        self
    }

    /// Launches the cluster.
    ///
    /// For every rank: `setup(rank, transport)` produces the modules to
    /// register plus arbitrary rank state `T` (typically the module handles
    /// the application will call); then `main(env, state)` runs as the
    /// rank's program on its runtime. Returns every rank's result, indexed
    /// by rank.
    pub fn run<T, R>(
        self,
        setup: impl Fn(Rank, Transport) -> (Vec<Arc<dyn SchedulerModule>>, T) + Send + Sync + 'static,
        main: impl Fn(RankEnv, T) -> R + Send + Sync + 'static,
    ) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
    {
        let cluster = Cluster::start_with_faults(self.nranks, self.net, self.faults);
        let setup = Arc::new(setup);
        let main = Arc::new(main);
        let platform = Arc::new(self.platform);
        let nranks = self.nranks;
        // Finalize barrier (the upcxx::finalize / MPI_Finalize semantics):
        // no rank tears its runtime down until every rank's main has
        // returned, so late-arriving remote requests (e.g. UPC++ rpcs) can
        // still be serviced.
        let exit_gate = Arc::new((parking_lot::Mutex::new(0usize), parking_lot::Condvar::new()));

        let handles: Vec<_> = (0..nranks)
            .map(|rank| {
                let transport = cluster.transport(rank);
                let setup = Arc::clone(&setup);
                let main = Arc::clone(&main);
                let platform = Arc::clone(&platform);
                let exit_gate = Arc::clone(&exit_gate);
                std::thread::Builder::new()
                    .name(format!("hiper-rank-{}", rank))
                    .spawn(move || {
                        // Tag the rank-main thread (and, transitively, the
                        // workers its runtime spawns) with the simulated
                        // rank so trace tracks can be attributed per rank.
                        hiper_trace::set_ambient_rank(rank);
                        let (modules, state) = setup(rank, transport.clone());
                        let mut builder = RuntimeBuilder::new(platform(rank));
                        for m in modules {
                            builder = builder.module(m);
                        }
                        let runtime = builder
                            .build()
                            .unwrap_or_else(|e| panic!("rank {}: {}", rank, e));
                        let env = RankEnv {
                            rank,
                            nranks,
                            runtime: runtime.clone(),
                            transport,
                        };
                        let rt = runtime.clone();
                        let result = rt.block_on(move || main(env, state));
                        {
                            let (count, cond) = &*exit_gate;
                            let mut done = count.lock();
                            *done += 1;
                            if *done == nranks {
                                cond.notify_all();
                            } else {
                                while *done < nranks {
                                    cond.wait(&mut done);
                                }
                            }
                        }
                        runtime.shutdown();
                        result
                    })
                    .expect("failed to spawn rank thread")
            })
            .collect();

        let results: Vec<R> = handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect();
        cluster.stop();
        results
    }

    /// Launches a module-free cluster: `main` gets only the [`RankEnv`].
    pub fn run_simple<R>(self, main: impl Fn(RankEnv) -> R + Send + Sync + 'static) -> Vec<R>
    where
        R: Send + 'static,
    {
        self.run(|_, _| (Vec::new(), ()), move |env, ()| main(env))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiper_runtime::Promise;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn ranks_run_and_return_in_order() {
        let results = SpmdBuilder::new(4)
            .net(NetConfig::instant())
            .workers_per_rank(1)
            .run_simple(|env| env.rank * 10);
        assert_eq!(results, vec![0, 10, 20, 30]);
    }

    #[test]
    fn ping_pong_roundtrip() {
        // Rank 0 sends to rank 1, rank 1 echoes back, rank 0 waits on a
        // future satisfied by the echo. Ranks register APP handlers in
        // setup.
        let results = SpmdBuilder::new(2).workers_per_rank(1).run(
            |_rank, transport| {
                // State: a promise slot the handler fills.
                let slot: Arc<parking_lot::Mutex<Option<Promise<u64>>>> =
                    Arc::new(parking_lot::Mutex::new(None));
                let slot2 = Arc::clone(&slot);
                let t2 = transport.clone();
                transport.register_handler(
                    Channel::APP,
                    Box::new(move |m| {
                        if m.tag < 100 {
                            // Echo with tag+100.
                            t2.send(m.src, Channel::APP, m.tag + 100, m.payload);
                        } else if let Some(p) = slot2.lock().take() {
                            p.put(m.tag);
                        }
                    }),
                );
                (Vec::new(), slot)
            },
            |env, slot| {
                if env.rank == 0 {
                    let p = Promise::new();
                    let f = p.future();
                    *slot.lock() = Some(p);
                    env.transport
                        .send(1, Channel::APP, 7, Bytes::from_static(b"ping"));
                    f.get()
                } else {
                    // Rank 1 just lingers long enough to echo.
                    std::thread::sleep(Duration::from_millis(50));
                    0
                }
            },
        );
        assert_eq!(results[0], 107);
    }

    #[test]
    fn all_ranks_share_one_engine() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let _ = SpmdBuilder::new(3)
            .net(NetConfig::instant())
            .workers_per_rank(1)
            .run(
                move |_rank, transport| {
                    let c = Arc::clone(&c);
                    transport.register_handler(
                        Channel::APP,
                        Box::new(move |_| {
                            c.fetch_add(1, Ordering::SeqCst);
                        }),
                    );
                    (Vec::new(), ())
                },
                |env, ()| {
                    // Everyone messages everyone (including self).
                    for dst in 0..env.nranks {
                        env.transport.send(dst, Channel::APP, 0, Bytes::new());
                    }
                    std::thread::sleep(Duration::from_millis(60));
                },
            );
        assert_eq!(counter.load(Ordering::SeqCst), 9);
    }

    #[test]
    fn runtime_tasks_work_inside_rank_main() {
        let results = SpmdBuilder::new(2)
            .net(NetConfig::instant())
            .workers_per_rank(2)
            .run_simple(|env| {
                let rank = env.rank;
                hiper_runtime::api::finish(|| {
                    for _ in 0..10 {
                        hiper_runtime::api::async_(move || {
                            std::hint::black_box(rank);
                        });
                    }
                })
                .expect("no task panicked");
                let f = hiper_runtime::api::async_future(move || rank + 1);
                f.get()
            });
        assert_eq!(results, vec![1, 2]);
    }
}
