//! Messages exchanged over the simulated interconnect.

use bytes::Bytes;

/// A rank (process) index within the simulated cluster.
pub type Rank = usize;

/// Demultiplexing channel: each communication module owns one channel and
/// registers one handler for it per rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Channel(pub u8);

impl Channel {
    /// Application-level messages (tests, ad-hoc use).
    pub const APP: Channel = Channel(0);
    /// The MPI module.
    pub const MPI: Channel = Channel(1);
    /// The OpenSHMEM module.
    pub const SHMEM: Channel = Channel(2);
    /// The UPC++ module.
    pub const UPCXX: Channel = Channel(3);
}

/// An active message: delivered to the destination rank's handler for
/// `channel` after the modeled network delay.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub src: Rank,
    /// Destination rank.
    pub dst: Rank,
    /// Module channel the message belongs to.
    pub channel: Channel,
    /// Module-defined discriminator (e.g. the MPI tag word, a SHMEM opcode).
    pub tag: u64,
    /// Protocol framing prefix, empty for raw application sends. The
    /// reliable layer puts its frame headers here instead of prepending
    /// them to `payload`, so a send never copies the payload into a framed
    /// buffer — header and payload travel as a two-segment rope. Counts
    /// toward [`wire_bytes`](Message::wire_bytes) exactly like the old
    /// in-payload framing did.
    pub header: Bytes,
    /// Payload bytes. `Bytes` keeps clones cheap on the delivery path.
    pub payload: Bytes,
    /// Causal parent span: trace id of the task that (logically) sent this
    /// message, 0 when untraced. Rides the simulated header — it does NOT
    /// count toward [`wire_bytes`](Message::wire_bytes), keeping the modeled
    /// delays (and hence the chaos-grid digests) identical whether or not
    /// tracing is on.
    pub span: u64,
    /// Modeled delivery deadline (trace-clock ns), stamped by the delivery
    /// engine just before the handler runs; 0 before delivery. Like `span`
    /// it rides the simulated header and does not count toward
    /// [`wire_bytes`](Message::wire_bytes). The reliable layer uses it to
    /// timestamp per-logical-message trace events when unpacking a jumbo
    /// frame that carried several coalesced messages.
    pub due_ns: u64,
}

impl Message {
    /// A raw application message (empty framing header).
    pub fn new(src: Rank, dst: Rank, channel: Channel, tag: u64, payload: Bytes) -> Message {
        Message {
            src,
            dst,
            channel,
            tag,
            header: Bytes::new(),
            payload,
            span: 0,
            due_ns: 0,
        }
    }

    /// Total modeled size on the wire (framing header + payload plus a
    /// fixed transport-level header).
    pub fn wire_bytes(&self) -> usize {
        const HEADER: usize = 64;
        HEADER + self.header.len() + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_includes_header() {
        let m = Message::new(0, 1, Channel::APP, 7, Bytes::from_static(b"hello"));
        assert_eq!(m.wire_bytes(), 64 + 5);
        let mut framed = m;
        framed.header = Bytes::from_static(b"0123456789abc");
        assert_eq!(framed.wire_bytes(), 64 + 13 + 5);
    }

    #[test]
    fn channel_constants_distinct() {
        let all = [Channel::APP, Channel::MPI, Channel::SHMEM, Channel::UPCXX];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                assert_eq!(i == j, a == b);
            }
        }
    }
}
