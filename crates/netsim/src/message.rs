//! Messages exchanged over the simulated interconnect.

use bytes::Bytes;

/// A rank (process) index within the simulated cluster.
pub type Rank = usize;

/// Demultiplexing channel: each communication module owns one channel and
/// registers one handler for it per rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Channel(pub u8);

impl Channel {
    /// Application-level messages (tests, ad-hoc use).
    pub const APP: Channel = Channel(0);
    /// The MPI module.
    pub const MPI: Channel = Channel(1);
    /// The OpenSHMEM module.
    pub const SHMEM: Channel = Channel(2);
    /// The UPC++ module.
    pub const UPCXX: Channel = Channel(3);
}

/// An active message: delivered to the destination rank's handler for
/// `channel` after the modeled network delay.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub src: Rank,
    /// Destination rank.
    pub dst: Rank,
    /// Module channel the message belongs to.
    pub channel: Channel,
    /// Module-defined discriminator (e.g. the MPI tag word, a SHMEM opcode).
    pub tag: u64,
    /// Payload bytes. `Bytes` keeps clones cheap on the delivery path.
    pub payload: Bytes,
    /// Causal parent span: trace id of the task that (logically) sent this
    /// message, 0 when untraced. Rides the simulated header — it does NOT
    /// count toward [`wire_bytes`](Message::wire_bytes), keeping the modeled
    /// delays (and hence the chaos-grid digests) identical whether or not
    /// tracing is on.
    pub span: u64,
}

impl Message {
    /// Total modeled size on the wire (payload plus a fixed header).
    pub fn wire_bytes(&self) -> usize {
        const HEADER: usize = 64;
        HEADER + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_includes_header() {
        let m = Message {
            src: 0,
            dst: 1,
            channel: Channel::APP,
            tag: 7,
            payload: Bytes::from_static(b"hello"),
            span: 0,
        };
        assert_eq!(m.wire_bytes(), 64 + 5);
    }

    #[test]
    fn channel_constants_distinct() {
        let all = [Channel::APP, Channel::MPI, Channel::SHMEM, Channel::UPCXX];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                assert_eq!(i == j, a == b);
            }
        }
    }
}
