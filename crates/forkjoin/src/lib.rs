//! A minimal OpenMP-like fork-join substrate.
//!
//! The paper's evaluation compares HiPER against *hybrid* baselines —
//! "OpenSHMEM+OpenMP", "MPI+OpenMP", "OpenSHMEM+OpenMP Tasks" — whose
//! defining property is fork-join parallelism with **coarse-grain
//! synchronization**: a `parallel for` is a barrier across its iterations,
//! and OpenMP task groups must `taskwait` on *all* pending tasks before the
//! enclosing code can continue (the exact weakness §III-C1 attributes to the
//! OpenSHMEM+OpenMP-Tasks UTS).
//!
//! This crate is that substrate: a persistent thread pool with
//! [`Pool::parallel_for`] (static chunking + implicit barrier) and
//! [`TaskGroup`] (dynamic task spawning + coarse `wait` barrier). It is
//! intentionally *not* a work-stealing runtime and has no futures — that's
//! the point of the comparison.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// A fixed-size fork-join thread pool (the "OpenMP runtime").
pub struct Pool {
    shared: Arc<Shared>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    size: usize,
}

impl Pool {
    /// Spawns a pool of `threads` workers.
    pub fn new(threads: usize) -> Arc<Pool> {
        assert!(threads > 0);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("omp-worker-{}", i))
                    .spawn(move || worker(shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Arc::new(Pool {
            shared,
            threads: Mutex::new(handles),
            size: threads,
        })
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    fn submit(&self, job: Job) {
        self.shared.queue.lock().push_back(job);
        self.shared.available.notify_one();
    }

    /// `#pragma omp parallel for` (static schedule): runs `f(i)` for every
    /// `i in 0..n` across the pool and **blocks until all iterations
    /// complete** (the implicit barrier).
    pub fn parallel_for(&self, n: usize, f: impl Fn(usize) + Send + Sync + 'static) {
        if n == 0 {
            return;
        }
        let f = Arc::new(f);
        let chunks = self.size.min(n);
        let remaining = Arc::new(AtomicUsize::new(chunks));
        let done = Arc::new((Mutex::new(false), Condvar::new()));
        let per = n.div_ceil(chunks);
        for c in 0..chunks {
            let lo = c * per;
            let hi = ((c + 1) * per).min(n);
            let f = Arc::clone(&f);
            let remaining = Arc::clone(&remaining);
            let done = Arc::clone(&done);
            self.submit(Box::new(move || {
                for i in lo..hi {
                    f(i);
                }
                if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let (lock, cond) = &*done;
                    *lock.lock() = true;
                    cond.notify_all();
                }
            }));
        }
        let (lock, cond) = &*done;
        let mut finished = lock.lock();
        while !*finished {
            cond.wait(&mut finished);
        }
    }

    /// `parallel for` with a per-chunk grain size instead of static
    /// splitting (dynamic schedule): iterations are dealt out in chunks of
    /// `grain`.
    pub fn parallel_for_dynamic(
        &self,
        n: usize,
        grain: usize,
        f: impl Fn(usize) + Send + Sync + 'static,
    ) {
        if n == 0 {
            return;
        }
        let grain = grain.max(1);
        let f = Arc::new(f);
        let next = Arc::new(AtomicUsize::new(0));
        let workers = self.size.min(n.div_ceil(grain));
        let remaining = Arc::new(AtomicUsize::new(workers));
        let done = Arc::new((Mutex::new(false), Condvar::new()));
        for _ in 0..workers {
            let f = Arc::clone(&f);
            let next = Arc::clone(&next);
            let remaining = Arc::clone(&remaining);
            let done = Arc::clone(&done);
            self.submit(Box::new(move || {
                loop {
                    let lo = next.fetch_add(grain, Ordering::Relaxed);
                    if lo >= n {
                        break;
                    }
                    for i in lo..(lo + grain).min(n) {
                        f(i);
                    }
                }
                if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let (lock, cond) = &*done;
                    *lock.lock() = true;
                    cond.notify_all();
                }
            }));
        }
        let (lock, cond) = &*done;
        let mut finished = lock.lock();
        while !*finished {
            cond.wait(&mut finished);
        }
    }

    /// Creates an OpenMP-style task group. Spawn with
    /// [`TaskGroup::spawn`], then [`TaskGroup::wait`] — a coarse barrier
    /// over *everything* spawned so far.
    pub fn task_group(self: &Arc<Self>) -> TaskGroup {
        TaskGroup {
            pool: Arc::clone(self),
            pending: Arc::new(AtomicUsize::new(0)),
            done: Arc::new((Mutex::new(()), Condvar::new())),
        }
    }

    /// Stops and joins the pool. Queued jobs are drained first.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

fn worker(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                shared.available.wait(&mut q);
            }
        };
        job();
    }
}

/// OpenMP `task` + `taskwait`: dynamic tasks with a coarse completion
/// barrier. Unlike HiPER futures there is no way to wait on *one* task —
/// `wait` blocks on all of them, which is precisely the coarse-grain
/// synchronization the paper's §III-C1 baseline suffers from.
#[derive(Clone)]
pub struct TaskGroup {
    pool: Arc<Pool>,
    pending: Arc<AtomicUsize>,
    done: Arc<(Mutex<()>, Condvar)>,
}

impl TaskGroup {
    /// Spawns a task into the group (`#pragma omp task`).
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        self.pending.fetch_add(1, Ordering::AcqRel);
        let pending = Arc::clone(&self.pending);
        let done = Arc::clone(&self.done);
        self.pool.submit(Box::new(move || {
            f();
            if pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let (lock, cond) = &*done;
                let _g = lock.lock();
                cond.notify_all();
            }
        }));
    }

    /// Number of tasks not yet finished (racy; diagnostics only).
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }

    /// `#pragma omp taskwait`: blocks until **every** spawned task has
    /// finished.
    pub fn wait(&self) {
        let (lock, cond) = &*self.done;
        let mut guard = lock.lock();
        while self.pending.load(Ordering::Acquire) != 0 {
            cond.wait(&mut guard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_for_covers_range_once() {
        let pool = Pool::new(3);
        let hits: Arc<Vec<AtomicUsize>> = Arc::new((0..500).map(|_| AtomicUsize::new(0)).collect());
        let h = Arc::clone(&hits);
        pool.parallel_for(500, move |i| {
            h[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, hit) in hits.iter().enumerate() {
            assert_eq!(hit.load(Ordering::SeqCst), 1, "iteration {}", i);
        }
        pool.shutdown();
    }

    #[test]
    fn parallel_for_is_a_barrier() {
        let pool = Pool::new(2);
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        pool.parallel_for(10, move |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            c.fetch_add(1, Ordering::SeqCst);
        });
        // All iterations must have completed before parallel_for returned.
        assert_eq!(count.load(Ordering::SeqCst), 10);
        pool.shutdown();
    }

    #[test]
    fn dynamic_schedule_covers_range() {
        let pool = Pool::new(4);
        let sum = Arc::new(AtomicUsize::new(0));
        let s = Arc::clone(&sum);
        pool.parallel_for_dynamic(1000, 7, move |i| {
            s.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::SeqCst), (0..1000).sum::<usize>());
        pool.shutdown();
    }

    #[test]
    fn empty_loops_return_immediately() {
        let pool = Pool::new(2);
        pool.parallel_for(0, |_| panic!("no iterations"));
        pool.parallel_for_dynamic(0, 4, |_| panic!("no iterations"));
        pool.shutdown();
    }

    #[test]
    fn task_group_taskwait() {
        let pool = Pool::new(3);
        let group = pool.task_group();
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&count);
            group.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        group.wait();
        assert_eq!(count.load(Ordering::SeqCst), 50);
        assert_eq!(group.pending(), 0);
        pool.shutdown();
    }

    #[test]
    fn task_group_nested_spawns() {
        let pool = Pool::new(2);
        let group = pool.task_group();
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let c = Arc::clone(&count);
            let g = group.clone();
            group.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
                for _ in 0..3 {
                    let c = Arc::clone(&c);
                    g.spawn(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        group.wait();
        assert_eq!(count.load(Ordering::SeqCst), 20);
        pool.shutdown();
    }

    #[test]
    fn multiple_parallel_fors_reuse_pool() {
        let pool = Pool::new(2);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&count);
            pool.parallel_for(100, move |_| {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::SeqCst), 1000);
        pool.shutdown();
    }
}
