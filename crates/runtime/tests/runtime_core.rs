//! Integration tests for the core runtime: spawning, finish scopes, futures,
//! help-first blocking, parallel loops and lifecycle.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hiper_platform::autogen;
use hiper_runtime::{api, Runtime};

fn rt(workers: usize) -> Runtime {
    Runtime::new(autogen::smp(workers))
}

#[test]
fn block_on_returns_value() {
    let rt = rt(2);
    assert_eq!(rt.block_on(|| 7 * 6), 42);
    rt.shutdown();
}

#[test]
fn finish_waits_for_all_spawns() {
    let rt = rt(3);
    let count = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&count);
    rt.block_on(move || {
        api::finish(|| {
            for _ in 0..100 {
                let c = Arc::clone(&c);
                api::async_(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .expect("no task panicked");
        // All 100 must have completed before finish returned.
        assert_eq!(c.load(Ordering::SeqCst), 100);
    });
    rt.shutdown();
}

#[test]
fn finish_waits_for_transitive_spawns() {
    let rt = rt(2);
    let count = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&count);
    rt.block_on(move || {
        api::finish(|| {
            let c1 = Arc::clone(&c);
            api::async_(move || {
                // Children spawned from inside a task still register with
                // the enclosing finish scope.
                for _ in 0..10 {
                    let c2 = Arc::clone(&c1);
                    api::async_(move || {
                        let c3 = Arc::clone(&c2);
                        api::async_(move || {
                            c3.fetch_add(1, Ordering::Relaxed);
                        });
                    });
                }
            });
        })
        .expect("no task panicked");
        assert_eq!(c.load(Ordering::SeqCst), 10);
    });
    rt.shutdown();
}

#[test]
fn nested_finish_scopes() {
    let rt = rt(2);
    rt.block_on(|| {
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let o = Arc::clone(&order);
        api::finish(|| {
            let o1 = Arc::clone(&o);
            api::async_(move || {
                o1.lock().push("outer");
            });
            let o2 = Arc::clone(&o);
            api::finish(move || {
                let o3 = Arc::clone(&o2);
                api::async_(move || {
                    o3.lock().push("inner");
                });
            })
            .expect("no task panicked");
            // Inner finish completed here; "inner" must be recorded.
            assert!(o.lock().contains(&"inner"));
        })
        .expect("no task panicked");
        assert_eq!(order.lock().len(), 2);
    });
    rt.shutdown();
}

#[test]
fn single_worker_does_not_deadlock() {
    // On one worker, finish inside a task must help-execute the children
    // rather than blocking the only thread.
    let rt = rt(1);
    let result = rt.block_on(|| {
        let mut total = 0u64;
        for _ in 0..5 {
            let fut = api::async_future(|| 1u64);
            total += fut.get();
        }
        api::finish(|| {
            for _ in 0..50 {
                api::async_(|| {});
            }
        })
        .expect("no task panicked");
        total
    });
    assert_eq!(result, 5);
    rt.shutdown();
}

#[test]
fn async_future_and_get() {
    let rt = rt(2);
    let v = rt.block_on(|| {
        let futs: Vec<_> = (0..20).map(|i| api::async_future(move || i * i)).collect();
        futs.iter().map(|f| f.get()).sum::<i64>()
    });
    assert_eq!(v, (0..20).map(|i| i * i).sum());
    rt.shutdown();
}

#[test]
fn async_await_runs_after_dependency() {
    let rt = rt(2);
    rt.block_on(|| {
        let flag = Arc::new(AtomicUsize::new(0));
        api::finish(|| {
            let p = hiper_runtime::Promise::new();
            let f = p.future();
            let flag1 = Arc::clone(&flag);
            api::async_await(&f, move || {
                // The dependency must have stored 1 before we run.
                assert_eq!(flag1.load(Ordering::SeqCst), 1);
                flag1.store(2, Ordering::SeqCst);
            });
            let flag2 = Arc::clone(&flag);
            api::async_(move || {
                std::thread::sleep(Duration::from_millis(5));
                flag2.store(1, Ordering::SeqCst);
                p.put(());
            });
        })
        .expect("no task panicked");
        assert_eq!(flag.load(Ordering::SeqCst), 2);
    });
    rt.shutdown();
}

#[test]
fn finish_waits_for_not_yet_eligible_await_tasks() {
    // A task registered with async_await inside a finish must be awaited by
    // that finish even though it only becomes eligible when the promise is
    // satisfied (possibly much later, from another thread).
    let rt = rt(2);
    let ran = Arc::new(AtomicUsize::new(0));
    let r = Arc::clone(&ran);
    rt.block_on(move || {
        let p = hiper_runtime::Promise::new();
        let f = p.future();
        // Satisfy from an external OS thread after a delay.
        let satisfier = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            p.put(());
        });
        api::finish(|| {
            let r = Arc::clone(&r);
            api::async_await(&f, move || {
                r.store(1, Ordering::SeqCst);
            });
        })
        .expect("no task panicked");
        assert_eq!(r.load(Ordering::SeqCst), 1);
        satisfier.join().unwrap();
    });
    rt.shutdown();
}

#[test]
fn async_future_await_chains() {
    let rt = rt(2);
    let result = rt.block_on(|| {
        let a = api::async_future(|| 10);
        let b = api::async_future_await(&a, || 20);
        let c = api::async_future_await(&b, || 30);
        c.wait();
        a.get() + b.get() + c.get()
    });
    assert_eq!(result, 60);
    rt.shutdown();
}

#[test]
fn forasync_runs_every_iteration_once() {
    let rt = rt(3);
    let hits = Arc::new((0..1000).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
    let h = Arc::clone(&hits);
    rt.block_on(move || {
        api::forasync_1d(1000, 16, move |i| {
            h[i].fetch_add(1, Ordering::Relaxed);
        });
    });
    for (i, hit) in hits.iter().enumerate() {
        assert_eq!(
            hit.load(Ordering::SeqCst),
            1,
            "iteration {} ran wrong count",
            i
        );
    }
    rt.shutdown();
}

#[test]
fn forasync_empty_and_tiny() {
    let rt = rt(2);
    rt.block_on(|| {
        api::forasync_1d(0, 8, |_| panic!("no iterations expected"));
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        api::forasync_1d(1, 100, move |_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::SeqCst), 1);
    });
    rt.shutdown();
}

#[test]
fn forasync_2d_and_3d_cover_space() {
    let rt = rt(2);
    let count = Arc::new(AtomicUsize::new(0));
    let c2 = Arc::clone(&count);
    let c3 = Arc::clone(&count);
    rt.block_on(move || {
        api::finish(|| {}).expect("no task panicked");
        hiper_runtime::Runtime::current()
            .unwrap()
            .forasync_2d((8, 9), 2, move |_i, _j| {
                c2.fetch_add(1, Ordering::Relaxed);
            });
    });
    assert_eq!(count.load(Ordering::SeqCst), 72);
    count.store(0, Ordering::SeqCst);
    rt.block_on(move || {
        hiper_runtime::Runtime::current()
            .unwrap()
            .forasync_3d((3, 4, 5), 1, move |_, _, _| {
                c3.fetch_add(1, Ordering::Relaxed);
            });
    });
    assert_eq!(count.load(Ordering::SeqCst), 60);
    rt.shutdown();
}

#[test]
fn forasync_future_overlaps_with_other_work() {
    let rt = rt(2);
    rt.block_on(|| {
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let fut = api::forasync_future_1d(100, 4, move |_| {
            d.fetch_add(1, Ordering::Relaxed);
        });
        // Do something else, then synchronize on the loop.
        let other = api::async_future(|| 5);
        assert_eq!(other.get(), 5);
        fut.wait();
        assert_eq!(done.load(Ordering::SeqCst), 100);
    });
    rt.shutdown();
}

#[test]
fn spawn_at_places_tasks_at_target_place() {
    let cfg = autogen::smp(2);
    let interconnect = autogen::interconnect_of(&cfg);
    let rt = Runtime::new(cfg);
    let rt2 = rt.clone();
    rt.block_on(move || {
        let seen = Arc::new(AtomicUsize::new(0));
        let s = Arc::clone(&seen);
        rt2.finish(|| {
            rt2.spawn_at(interconnect, move || {
                s.store(1, Ordering::SeqCst);
            });
        })
        .expect("no task panicked");
        assert_eq!(seen.load(Ordering::SeqCst), 1);
    });
    rt.shutdown();
}

#[test]
fn external_thread_spawn_and_finish() {
    // Calling runtime APIs from a plain OS thread (no TLS context).
    let rt = rt(2);
    let count = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&count);
    rt.finish(|| {
        for _ in 0..10 {
            let c = Arc::clone(&c);
            rt.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
    })
    .expect("no task panicked");
    assert_eq!(count.load(Ordering::SeqCst), 10);
    rt.shutdown();
}

#[test]
fn multiple_runtimes_coexist() {
    let rt_a = rt(1);
    let rt_b = rt(1);
    let a = rt_a.block_on(|| 1);
    let b = rt_b.block_on(|| 2);
    assert_eq!(a + b, 3);
    // Cross-runtime future composition: a task on A waits on a future
    // satisfied by a task on B.
    let p = hiper_runtime::Promise::new();
    let f = p.future();
    rt_b.spawn(move || p.put(123));
    let got = rt_a.block_on(move || f.get());
    assert_eq!(got, 123);
    rt_a.shutdown();
    rt_b.shutdown();
}

#[test]
fn stats_count_executed_tasks() {
    let rt = rt(2);
    rt.block_on(|| {
        api::finish(|| {
            for _ in 0..50 {
                api::async_(|| {});
            }
        })
        .expect("no task panicked");
    });
    let stats = rt.sched_stats();
    assert!(stats.tasks_executed >= 50, "stats: {}", stats);
    rt.shutdown();
}

#[test]
fn shutdown_is_idempotent() {
    let rt = rt(2);
    rt.block_on(|| ());
    rt.shutdown();
    rt.shutdown();
}

#[test]
fn task_panic_does_not_kill_worker() {
    let rt = rt(1);
    rt.block_on(|| {
        let r = api::finish(|| {
            api::async_(|| panic!("intentional test panic"));
        });
        let err = r.expect_err("finish must surface the task panic");
        assert!(
            err.to_string().contains("intentional test panic"),
            "{}",
            err
        );
        // The single worker survived and still executes tasks.
        let f = api::async_future(|| 11);
        assert_eq!(f.get(), 11);
    });
    rt.shutdown();
}

#[test]
fn when_all_composes_futures() {
    let rt = rt(2);
    rt.block_on(|| {
        let fs: Vec<_> = (0..5).map(|_| api::async_future(|| ())).collect();
        let all = hiper_runtime::when_all(&fs);
        all.wait();
        assert!(fs.iter().all(|f| f.is_ready()));
    });
    rt.shutdown();
}

#[test]
fn async_copy_host_to_host() {
    let cfg = autogen::smp(2);
    let rt = Runtime::new(cfg);
    let rt2 = rt.clone();
    rt.block_on(move || {
        let src = hiper_runtime::HostBuffer::new(64);
        let dst = hiper_runtime::HostBuffer::new(64);
        src.write_bytes(0, &[7u8; 64]);
        let home = rt2.here();
        let fut = rt2.async_copy(
            hiper_runtime::MemLoc::host(&dst, 0),
            home,
            hiper_runtime::MemLoc::host(&src, 0),
            home,
            64,
        );
        fut.wait();
        let mut out = [0u8; 64];
        dst.read_bytes(0, &mut out);
        assert_eq!(out, [7u8; 64]);
    });
    rt.shutdown();
}

#[test]
fn async_copy_await_orders_after_dependencies() {
    let cfg = autogen::smp(2);
    let rt = Runtime::new(cfg);
    let rt2 = rt.clone();
    rt.block_on(move || {
        let src = hiper_runtime::HostBuffer::new(8);
        let dst = hiper_runtime::HostBuffer::new(8);
        let home = rt2.here();
        let src2 = Arc::clone(&src);
        // The dependency writes the source *before* the copy may start.
        let dep = api::async_future(move || {
            std::thread::sleep(Duration::from_millis(10));
            src2.write_bytes(0, &[9u8; 8]);
        });
        let fut = rt2.async_copy_await(
            hiper_runtime::MemLoc::host(&dst, 0),
            home,
            hiper_runtime::MemLoc::host(&src, 0),
            home,
            8,
            &[dep],
        );
        fut.wait();
        let mut out = [0u8; 8];
        dst.read_bytes(0, &mut out);
        assert_eq!(out, [9u8; 8]);
    });
    rt.shutdown();
}

#[test]
fn hostbuffer_f64_views() {
    let buf = hiper_runtime::HostBuffer::new(10 * 8);
    let vals: Vec<f64> = (0..10).map(|i| i as f64 * 1.5).collect();
    buf.write_f64s(0, &vals);
    let mut out = vec![0.0; 10];
    buf.read_f64s(0, &mut out);
    assert_eq!(out, vals);
}

#[test]
fn task_panics_are_counted_in_sched_stats() {
    let rt = rt(2);
    rt.block_on(|| {
        let r = api::finish(|| {
            api::async_(|| panic!("counted panic a"));
            api::async_(|| panic!("counted panic b"));
        });
        assert!(r.is_err());
    });
    let snap = rt.sched_stats();
    assert_eq!(snap.task_panics, 2, "{}", snap);
    rt.shutdown();
}

#[test]
fn dependents_of_a_poisoned_future_fail_fast() {
    // The dependency's body panics, poisoning its future via the dropped
    // promise. The dependent body must never run; the enclosing finish
    // surfaces the propagated failure instead.
    let rt = rt(2);
    let ran = Arc::new(AtomicUsize::new(0));
    let r = Arc::clone(&ran);
    rt.block_on(move || {
        let out = api::finish(move || {
            let dep = api::async_future(|| -> u64 { panic!("poisoned dependency") });
            api::async_await(&dep, move || {
                r.fetch_add(1, Ordering::SeqCst);
            });
        });
        let err = out.expect_err("finish must surface the poisoned dependency");
        assert!(err.to_string().contains("dependency poisoned"), "{}", err);
    });
    assert_eq!(ran.load(Ordering::SeqCst), 0, "dependent body must not run");
    rt.shutdown();
}

#[test]
fn finish_drains_fully_before_surfacing_the_error() {
    // A panicking sibling must not cut the scope short: the slow sibling
    // still completes before finish returns (with the error).
    let rt = rt(2);
    let done = Arc::new(AtomicUsize::new(0));
    let d = Arc::clone(&done);
    let d2 = Arc::clone(&done);
    rt.block_on(move || {
        let out = api::finish(move || {
            api::async_(|| panic!("fast failing sibling"));
            api::async_(move || {
                std::thread::sleep(Duration::from_millis(50));
                d.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert!(out.is_err());
        assert_eq!(d2.load(Ordering::SeqCst), 1, "scope must drain fully");
    });
    rt.shutdown();
}
