//! Property tests for the lock-free promise state machine.
//!
//! The unit tests in `promise.rs` pin specific interleavings (inline slot,
//! poison-after-waiters, a fixed-shape registration race). These tests
//! randomize the shape instead: how many continuations register before the
//! completion, how many threads race their registrations *against* the
//! completion, and whether the promise is satisfied or poisoned. The
//! invariant under every interleaving is the same: each continuation runs
//! exactly once — never lost, never duplicated — and the future's terminal
//! state matches the completion.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use hiper_runtime::{Promise, TaskError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Randomized registration/completion interleavings: `pre` continuations
    /// register before the completion is even scheduled, then `racers`
    /// threads each register `per_racer` continuations while another thread
    /// concurrently puts or poisons. Every continuation must fire exactly
    /// once regardless of which side of the state transition it landed on.
    #[test]
    fn no_continuation_lost_or_duplicated(
        pre in 0usize..4,
        racers in 1usize..4,
        per_racer in 1usize..4,
        poison in proptest::strategy::any::<bool>(),
    ) {
        let total = pre + racers * per_racer;
        let fired: Arc<Vec<AtomicUsize>> =
            Arc::new((0..total).map(|_| AtomicUsize::new(0)).collect());

        let p = Promise::<u32>::new();
        let fut = p.future();

        for slot in 0..pre {
            let fired = Arc::clone(&fired);
            fut.on_ready(move || {
                fired[slot].fetch_add(1, Ordering::SeqCst);
            });
        }

        // One barrier party per racer plus the completing thread, so the
        // registrations and the put/poison are released together.
        let start = Arc::new(Barrier::new(racers + 1));
        let mut handles = Vec::new();
        for r in 0..racers {
            let fut = fut.clone();
            let fired = Arc::clone(&fired);
            let start = Arc::clone(&start);
            handles.push(std::thread::spawn(move || {
                start.wait();
                for k in 0..per_racer {
                    let slot = pre + r * per_racer + k;
                    let fired = Arc::clone(&fired);
                    fut.on_ready(move || {
                        fired[slot].fetch_add(1, Ordering::SeqCst);
                    });
                }
            }));
        }

        start.wait();
        if poison {
            p.poison(TaskError::new("interleaving test"));
        } else {
            p.put(7);
        }
        for h in handles {
            h.join().expect("racer thread panicked");
        }

        // The promise reached its terminal state before the racers joined,
        // and late registrations run synchronously — so by here every
        // continuation has fired, exactly once.
        prop_assert_eq!(fut.is_poisoned(), poison);
        prop_assert_eq!(fut.is_ready(), !poison);
        for (slot, count) in fired.iter().enumerate() {
            prop_assert_eq!(
                count.load(Ordering::SeqCst),
                1,
                "continuation {} fired {} times (pre={}, racers={}, per_racer={}, poison={})",
                slot,
                count.load(Ordering::SeqCst),
                pre,
                racers,
                per_racer,
                poison
            );
        }
    }

    /// The completion itself can race a `wait`: a blocked external waiter
    /// must always be released, whether it parked before or after the
    /// terminal transition, and must observe the terminal outcome.
    #[test]
    fn external_waiters_always_released(
        waiters in 1usize..4,
        poison in proptest::strategy::any::<bool>(),
    ) {
        let p = Promise::<u32>::new();
        let fut = p.future();
        let start = Arc::new(Barrier::new(waiters + 1));
        let mut handles = Vec::new();
        for _ in 0..waiters {
            let fut = fut.clone();
            let start = Arc::clone(&start);
            handles.push(std::thread::spawn(move || {
                start.wait();
                fut.wait();
                fut.is_poisoned()
            }));
        }
        start.wait();
        if poison {
            p.poison(TaskError::new("released test"));
        } else {
            p.put(11);
        }
        for h in handles {
            let saw_poison = h.join().expect("waiter thread panicked");
            prop_assert_eq!(saw_poison, poison);
        }
    }
}
