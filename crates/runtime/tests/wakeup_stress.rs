//! Stress tests for the targeted wake/park protocol.
//!
//! The invariants under test:
//!
//! 1. **No lost wakeups.** A `wake_one` that claims a registered worker must
//!    actually get that worker out of `park`, no matter how the registration,
//!    the park, and the wake interleave. The parks below use a 10-second
//!    timeout and assert an *explicit* wake, so a lost signal fails the
//!    assertion rather than being papered over by the timeout.
//! 2. **Silent spawn fast path.** `Scheduler::wake` on the spawn path must
//!    not take the idle mutex or signal any condvar while no worker is
//!    parked. Every wake decision is counted (`wake_signals_sent` vs
//!    `wakes_skipped`), so the counters prove which path ran.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use hiper_platform::autogen;
use hiper_runtime::{Runtime, WakeHub};

/// One spawner racing one parker on a bare hub, 100 consecutive rounds.
/// Each round the parker registers, re-checks a "work" flag, and parks; the
/// spawner publishes work and calls `wake_one`. Whatever the interleaving,
/// the parker must either see the flag on its re-check or be explicitly
/// woken — a bare 10 s timeout means a wakeup was lost.
#[test]
fn no_lost_wakeup_100_rounds() {
    for round in 0..100 {
        let hub = Arc::new(WakeHub::new(1));
        let work = Arc::new(AtomicBool::new(false));

        let parker = {
            let hub = Arc::clone(&hub);
            let work = Arc::clone(&work);
            thread::spawn(move || {
                hub.register_idle(0);
                if work.load(Ordering::Acquire) {
                    // Re-check saw the spawn: absorb any wake aimed at us.
                    hub.cancel_idle(0);
                    return true;
                }
                hub.park(0, Duration::from_secs(10))
            })
        };
        let spawner = {
            let hub = Arc::clone(&hub);
            let work = Arc::clone(&work);
            thread::spawn(move || {
                work.store(true, Ordering::Release);
                hub.wake_one()
            })
        };

        let parker_ok = parker.join().unwrap();
        let woke = spawner.join().unwrap();
        assert!(
            parker_ok,
            "round {round}: parker timed out — wakeup lost (spawner woke={woke})"
        );
    }
}

/// Many spawner/parker pairs hammering one hub concurrently: every claimed
/// wake must land, and the idle set must end empty.
#[test]
fn concurrent_wake_one_claims_are_never_lost() {
    const WORKERS: usize = 4;
    const ROUNDS: usize = 50;
    for _ in 0..ROUNDS {
        let hub = Arc::new(WakeHub::new(WORKERS));
        let sleepers: Vec<_> = (0..WORKERS)
            .map(|id| {
                let hub = Arc::clone(&hub);
                thread::spawn(move || {
                    hub.register_idle(id);
                    hub.park(id, Duration::from_secs(10))
                })
            })
            .collect();
        while hub.idle_count() < WORKERS {
            thread::yield_now();
        }
        let wakers: Vec<_> = (0..WORKERS)
            .map(|_| {
                let hub = Arc::clone(&hub);
                thread::spawn(move || hub.wake_one())
            })
            .collect();
        let claimed = wakers
            .into_iter()
            .map(|w| w.join().unwrap())
            .filter(|&woke| woke)
            .count();
        assert_eq!(
            claimed, WORKERS,
            "every waker had a registered sleeper to claim"
        );
        for s in sleepers {
            assert!(s.join().unwrap(), "registered sleeper was never woken");
        }
        assert_eq!(hub.idle_count(), 0);
    }
}

/// End-to-end: external spawns racing parked workers for 100 consecutive
/// finish scopes. Completion of every scope (without tripping the long-park
/// assertion windows above) is the pass condition.
#[test]
fn runtime_spawn_park_race_100_scopes() {
    let rt = Runtime::new(autogen::smp(4));
    let hits = Arc::new(AtomicU64::new(0));
    for round in 0u64..100 {
        let before = hits.load(Ordering::Relaxed);
        rt.finish(|| {
            for _ in 0..32 {
                let hits = Arc::clone(&hits);
                rt.spawn(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .expect("no task panicked");
        assert_eq!(
            hits.load(Ordering::Relaxed),
            before + 32,
            "round {round}: finish returned before all tasks ran"
        );
    }
    rt.shutdown();
}

/// The spawn fast path takes no lock and signals nobody when every worker is
/// busy. A single-worker runtime spawns from its own (running) worker, so no
/// worker is ever parked at spawn time: the wake counters must show the
/// skipped path overwhelmingly, and the snapshot totals must account for
/// every wake decision.
#[test]
fn spawn_fast_path_skips_wakes_when_nobody_parked() {
    const TASKS: u64 = 2000;
    let rt = Runtime::new(autogen::smp(1));
    let ran = Arc::new(AtomicU64::new(0));
    rt.block_on({
        let ran = Arc::clone(&ran);
        move || {
            let rt = Runtime::current().unwrap();
            rt.finish(|| {
                for _ in 0..TASKS {
                    let ran = Arc::clone(&ran);
                    rt.spawn(move || {
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
            })
            .expect("no task panicked");
        }
    });
    assert_eq!(ran.load(Ordering::Relaxed), TASKS);
    let snap = rt.sched_stats();
    // The only worker was running the spawning task itself, so virtually
    // every one of the >= TASKS wake decisions must have found nobody parked
    // and taken the lock-free skip path. A handful of sends are legitimate
    // (the external block_on submission racing the worker's park).
    assert!(
        snap.wakes_skipped >= TASKS,
        "expected >= {TASKS} skipped wakes, got {}",
        snap.wakes_skipped
    );
    assert!(
        snap.wake_signals_sent <= 16,
        "expected almost no wakes sent with a single busy worker, got {}",
        snap.wake_signals_sent
    );
    rt.shutdown();
}

/// Batched raids show up in the counters. External spawns land in the place
/// injector, and the calling thread floods it far faster than workers drain
/// it, so some drain must move more than one task and bank the extras —
/// which is exactly what `batch_steals` counts.
#[test]
fn batch_steals_are_counted() {
    const TASKS: u64 = 4000;
    let rt = Runtime::new(autogen::smp(2));
    let ran = Arc::new(AtomicU64::new(0));
    // `finish` on the test thread: every spawn inside is an external spawn
    // (injector path), racing the workers' batched drains.
    rt.finish(|| {
        for _ in 0..TASKS {
            let ran = Arc::clone(&ran);
            rt.spawn(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
    })
    .expect("no task panicked");
    assert_eq!(ran.load(Ordering::Relaxed), TASKS);
    let snap = rt.sched_stats();
    assert_eq!(snap.tasks_executed, TASKS);
    assert!(
        snap.batch_steals > 0,
        "flooding the injector must produce at least one batched drain: {snap}"
    );
    rt.shutdown();
}
