//! Allocation-count regression tests for the lean spawn path.
//!
//! A counting `#[global_allocator]` (test-binary-only; integration tests are
//! separate binaries, so nothing else inherits it) pins the two allocation
//! properties the slab/inline work bought:
//!
//! 1. A satisfied single-waiter promise round-trip allocates at most the
//!    promise's own `Arc` — the continuation rides the inline slot, the
//!    outcome is stored in-place, and no waiter list is ever built.
//! 2. A steady-state `forasync` over N iterations performs O(tasks actually
//!    published) allocations, not O(N): elided splits must not leave
//!    per-iteration garbage behind.
//!
//! Everything runs in ONE `#[test]` so the harness cannot interleave another
//! test's allocations into a measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use hiper_platform::autogen;
use hiper_runtime::{Promise, Runtime};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: defers entirely to `System`; the counter is a relaxed side effect.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTING: Counting = Counting;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One promise round-trip with a single inline continuation.
fn promise_round_trip() {
    static HITS: AtomicUsize = AtomicUsize::new(0);
    let seen = HITS.load(Ordering::SeqCst);
    let p = Promise::<u32>::new();
    let fut = p.future();
    fut.on_ready(|| {
        HITS.fetch_add(1, Ordering::SeqCst);
    });
    p.put(9);
    assert_eq!(fut.get(), 9);
    assert_eq!(HITS.load(Ordering::SeqCst), seen + 1);
}

#[test]
fn spawn_path_allocation_budget() {
    // ---- Part 1: single-waiter promise, measured before any Runtime ----
    // exists, so no worker thread can pollute the window. Warm once to get
    // lazy statics (panic machinery, etc.) out of the measurement.
    promise_round_trip();
    let before = allocs();
    promise_round_trip();
    let per_round_trip = allocs() - before;
    assert!(
        per_round_trip <= 1,
        "single-waiter promise round-trip made {} allocations; \
         the budget is 1 (the promise's Arc)",
        per_round_trip
    );

    // ---- Part 2: steady-state forasync is O(published tasks), not O(N) ----
    let rt = Runtime::new(autogen::smp(2));
    let n = 20_000usize;

    // Warm-up pass: worker TLS, slab free-lists, deque growth, trace lazy
    // init — all the one-time costs the steady state should not pay again.
    rt.block_on({
        let rt = rt.clone();
        move || {
            rt.forasync_1d(n, 1, |i| {
                std::hint::black_box(i);
            })
        }
    });

    let stats_before = rt.sched_stats();
    let allocs_before = allocs();
    rt.block_on({
        let rt = rt.clone();
        move || {
            rt.forasync_1d(n, 1, |i| {
                std::hint::black_box(i);
            })
        }
    });
    let allocs_delta = allocs() - allocs_before;
    let stats = rt.sched_stats().diff(&stats_before);
    rt.shutdown();

    let published = stats.tasks_executed.max(1);
    // Generous per-task budget (task body, latch/promise Arcs, closure Arc
    // clones, deque slot) plus a fixed overhead allowance for the block_on
    // round-trip itself. The point is the asymptotics: with grain 1 an
    // eager-splitting runtime would be >= N allocations here.
    let budget = published * 24 + 256;
    assert!(
        allocs_delta <= budget,
        "steady-state forasync({}, grain=1) made {} allocations for {} published \
         tasks (budget {}): allocations are scaling with N, not with tasks",
        n,
        allocs_delta,
        published,
        budget
    );
    assert!(
        (allocs_delta as usize) < n / 4,
        "steady-state forasync({}, grain=1) made {} allocations — O(N) regression",
        n,
        allocs_delta
    );
}
