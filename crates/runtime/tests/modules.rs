//! Tests for the pluggable-module machinery: lifecycle hooks, platform
//! assertions at initialization, copy-handler registration, per-module
//! statistics and the shared polling task.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hiper_platform::{autogen, PlaceKind};
use hiper_runtime::{
    CopyHandler, ModuleError, Poller, Promise, Runtime, RuntimeBuilder, SchedulerModule,
};

#[derive(Default)]
struct ProbeModule {
    initialized: AtomicBool,
    finalized: AtomicBool,
    require_gpu: bool,
}

impl SchedulerModule for ProbeModule {
    fn name(&self) -> &'static str {
        "probe"
    }

    fn initialize(&self, rt: &Runtime) -> Result<(), ModuleError> {
        if self.require_gpu && rt.place_of_kind(&PlaceKind::GpuMemory).is_none() {
            return Err(ModuleError::new("probe", "platform model has no GPU place"));
        }
        self.initialized.store(true, Ordering::SeqCst);
        Ok(())
    }

    fn finalize(&self, _rt: &Runtime) {
        self.finalized.store(true, Ordering::SeqCst);
    }

    fn register_copy_handlers(&self, rt: &Runtime) {
        let handler: Arc<CopyHandler> = Arc::new(|_rt, _req, done| done.put(()));
        rt.copy_registry().register(
            PlaceKind::Custom("probe".into()),
            PlaceKind::Custom("probe".into()),
            handler,
        );
    }
}

#[test]
fn module_lifecycle_init_then_finalize() {
    let module = Arc::new(ProbeModule::default());
    let rt = RuntimeBuilder::new(autogen::smp(2))
        .module(Arc::clone(&module) as Arc<dyn SchedulerModule>)
        .build()
        .unwrap();
    assert!(module.initialized.load(Ordering::SeqCst));
    assert!(!module.finalized.load(Ordering::SeqCst));
    rt.shutdown();
    assert!(module.finalized.load(Ordering::SeqCst));
}

#[test]
fn module_platform_assertion_fails_build() {
    let module = Arc::new(ProbeModule {
        require_gpu: true,
        ..Default::default()
    });
    let result = RuntimeBuilder::new(autogen::smp(2))
        .module(module as Arc<dyn SchedulerModule>)
        .build();
    match result {
        Err(e) => assert!(e.to_string().contains("no GPU place"), "{}", e),
        Ok(rt) => {
            rt.shutdown();
            panic!("build should fail when the platform assertion fails");
        }
    }
}

#[test]
fn module_stats_attribute_time() {
    let rt = Runtime::new(autogen::smp(1));
    {
        let _t = rt.module_stats().time("fake-module");
        std::thread::sleep(Duration::from_millis(1));
    }
    rt.module_stats()
        .record("fake-module", Duration::from_micros(3));
    let snap = rt.module_stats().snapshot();
    let entry = snap.iter().find(|(n, _, _)| n == "fake-module").unwrap();
    assert_eq!(entry.1, 2);
    rt.shutdown();
}

#[test]
fn poller_completes_pending_operations() {
    let rt = Runtime::new(autogen::smp(2));
    let place = rt.here();
    let poller = Poller::new("test-poller", place);
    // An "operation" that completes on its third poll.
    let polls = Arc::new(AtomicUsize::new(0));
    let p = Promise::new();
    let fut = p.future();
    let polls2 = Arc::clone(&polls);
    let mut promise = Some(p);
    poller.submit(
        &rt,
        Box::new(move || {
            let n = polls2.fetch_add(1, Ordering::SeqCst) + 1;
            if n >= 3 {
                if let Some(p) = promise.take() {
                    p.put(());
                }
                true
            } else {
                false
            }
        }),
    );
    fut.wait();
    assert!(polls.load(Ordering::SeqCst) >= 3);
    assert_eq!(poller.pending_len(), 0);
    rt.shutdown();
}

#[test]
fn poller_handles_many_concurrent_operations() {
    let rt = Runtime::new(autogen::smp(2));
    let place = rt.here();
    let poller = Poller::new("test-poller", place);
    let mut futures = Vec::new();
    for i in 0..50 {
        let p = Promise::new();
        futures.push(p.future());
        let mut promise = Some(p);
        // Complete after `i % 5` sweeps.
        let mut remaining = i % 5;
        poller.submit(
            &rt,
            Box::new(move || {
                if remaining == 0 {
                    if let Some(p) = promise.take() {
                        p.put(());
                    }
                    true
                } else {
                    remaining -= 1;
                    false
                }
            }),
        );
    }
    for f in &futures {
        f.wait();
    }
    assert_eq!(poller.pending_len(), 0);
    rt.shutdown();
}

#[test]
fn poller_restarts_after_going_idle() {
    let rt = Runtime::new(autogen::smp(1));
    let place = rt.here();
    let poller = Poller::new("test-poller", place);
    for round in 0..3 {
        let p = Promise::new();
        let fut = p.future();
        let mut promise = Some(p);
        poller.submit(
            &rt,
            Box::new(move || {
                if let Some(p) = promise.take() {
                    p.put(());
                }
                true
            }),
        );
        fut.wait();
        assert_eq!(poller.pending_len(), 0, "round {}", round);
        // Let the sweep task drain fully before resubmitting.
        std::thread::sleep(Duration::from_millis(2));
    }
    rt.shutdown();
}

#[test]
fn custom_copy_handler_is_used() {
    struct NullModule;
    impl SchedulerModule for NullModule {
        fn name(&self) -> &'static str {
            "null"
        }
        fn initialize(&self, _rt: &Runtime) -> Result<(), ModuleError> {
            Ok(())
        }
        fn register_copy_handlers(&self, rt: &Runtime) {
            // Claim sysmem->interconnect transfers: complete instantly and
            // set a marker byte instead of copying.
            let handler: Arc<CopyHandler> = Arc::new(|_rt, req, done| {
                if let hiper_runtime::MemLoc::Host { buf, offset } = &req.dst {
                    buf.write_bytes(*offset, &[0xAB]);
                }
                done.put(());
            });
            rt.copy_registry()
                .register(PlaceKind::SystemMemory, PlaceKind::Interconnect, handler);
        }
    }

    let cfg = autogen::smp(1);
    let net = autogen::interconnect_of(&cfg);
    let rt = RuntimeBuilder::new(cfg)
        .module(Arc::new(NullModule))
        .build()
        .unwrap();
    let src = hiper_runtime::HostBuffer::new(4);
    let dst = hiper_runtime::HostBuffer::new(4);
    let home = rt.here();
    let fut = rt.async_copy(
        hiper_runtime::MemLoc::host(&dst, 0),
        net,
        hiper_runtime::MemLoc::host(&src, 0),
        home,
        1,
    );
    fut.wait();
    let mut out = [0u8; 1];
    dst.read_bytes(0, &mut out);
    assert_eq!(out[0], 0xAB);
    rt.shutdown();
}

#[test]
#[should_panic(expected = "no copy handler")]
fn missing_copy_handler_panics() {
    let cfg = autogen::smp_with_gpus(1, 1);
    let gpu = cfg.graph.by_name("gpu0").unwrap();
    let rt = Runtime::new(cfg);
    let buf = hiper_runtime::HostBuffer::new(4);
    let home = rt.here();
    // No CUDA module installed: host->gpu has no handler.
    let _ = rt.async_copy(
        hiper_runtime::MemLoc::host(&buf, 0),
        gpu,
        hiper_runtime::MemLoc::host(&buf, 0),
        home,
        4,
    );
}
