//! The HiPER runtime handle and its task-creation APIs (paper §II-B4).

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hiper_deque::Worker;
use hiper_platform::{PlaceId, PlaceKind, PlatformConfig};
use hiper_trace::EventKind;
use parking_lot::{Mutex, RwLock};

use crate::copy::CopyRegistry;
use crate::module::{ModuleError, SchedulerModule};
use crate::promise::{Future, Promise, TaskError};
use crate::scheduler::Scheduler;
use crate::stats::{ModuleStats, SchedStatsSnapshot};
use crate::task::{BodyKind, FinishScope, Task, TaskBody};

/// Maximum depth of nested help-first blocking before a worker falls back to
/// parking (bounds stack growth; see DESIGN.md §2.1).
const MAX_HELP_DEPTH: usize = 64;

/// Failed full searches a worker burns with a CPU relax hint before it
/// starts yielding. Work often arrives within a task's lifetime.
const SPIN_SEARCHES: u32 = 4;

/// Additional failed searches spent on `yield_now` (letting producers run on
/// oversubscribed cores) before the worker actually parks.
const YIELD_SEARCHES: u32 = 16;

/// Worker park timeout. A safety net only: every wake source is signalled
/// (targeted unpark on spawn, broadcast on completions/shutdown), so this
/// fires only if there is genuinely nothing to do.
const WORKER_PARK_TIMEOUT: Duration = Duration::from_millis(20);

/// Park timeout for epoch-event waits (external threads, and workers that
/// exhausted their help depth and can only poll their predicate).
const EVENT_WAIT_TIMEOUT: Duration = Duration::from_millis(1);

pub(crate) struct RuntimeInner {
    pub sched: Arc<Scheduler>,
    pub config: PlatformConfig,
    pub modules: RwLock<Vec<Arc<dyn SchedulerModule>>>,
    pub copy_registry: CopyRegistry,
    pub module_stats: ModuleStats,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    stopped: AtomicBool,
    /// Keeps this runtime's scheduler-state section in watchdog flight
    /// records for the runtime's lifetime (deregisters on drop).
    _watchdog_info: Mutex<Option<crate::watchdog::InfoHandle>>,
}

/// A cheaply-cloneable handle to a HiPER runtime instance.
///
/// One process may host several runtimes (the cluster simulator runs one per
/// simulated rank); tasks belong to the runtime that spawned them and every
/// handle routes work to its own runtime only.
#[derive(Clone)]
pub struct Runtime {
    pub(crate) inner: Arc<RuntimeInner>,
}

struct WorkerTls {
    id: usize,
    /// Owner handles of this worker's deques, indexed by place id.
    owned: Vec<Worker<Task>>,
}

struct Tls {
    rt: Runtime,
    worker: Option<WorkerTls>,
    scope: Option<Arc<FinishScope>>,
    help_depth: usize,
}

thread_local! {
    static TLS: RefCell<Option<Tls>> = const { RefCell::new(None) };
}

/// Cached `'static` handles for the runtime's metric instruments; resolved
/// from the registry once and then read lock-free.
pub(crate) mod met {
    use hiper_metrics::{Gauge, Histogram};
    use std::sync::OnceLock;

    /// Traced task spans currently executing across every runtime in the
    /// process (gauge, with peak tracking). Only touched for tasks that
    /// carry a nonzero trace id, so the untraced path pays nothing.
    pub(crate) fn spans_active() -> &'static Gauge {
        static G: OnceLock<&'static Gauge> = OnceLock::new();
        G.get_or_init(|| hiper_metrics::gauge("hiper_spans_active"))
    }

    macro_rules! cached_histogram {
        ($fn_name:ident, $metric:literal) => {
            pub(crate) fn $fn_name() -> &'static Histogram {
                static H: OnceLock<&'static Histogram> = OnceLock::new();
                H.get_or_init(|| hiper_metrics::histogram($metric))
            }
        };
    }

    cached_histogram!(queue_latency, "hiper_task_queue_latency_ns");
    cached_histogram!(task_run, "hiper_task_run_ns");
    cached_histogram!(steal_latency, "hiper_steal_latency_ns");
    cached_histogram!(finish_scope, "hiper_finish_scope_ns");
}

/// Builds a task, assigning it a trace id and emitting its spawn event
/// (with the spawning task as parent) when tracing is enabled, and stamping
/// its spawn time when metrics are enabled. One relaxed atomic load per
/// subsystem when both are off.
fn make_task(body: TaskBody, place: PlaceId, scope: Option<Arc<FinishScope>>) -> Task {
    let trace_id = hiper_trace::fresh_task_id();
    if trace_id != 0 {
        hiper_trace::emit(
            EventKind::TaskSpawn,
            trace_id,
            hiper_trace::current_task(),
            place.index() as u64,
        );
    }
    let spawn_ns = if hiper_metrics::enabled() {
        hiper_trace::clock::now_ns().max(1)
    } else {
        0
    };
    Task {
        body,
        place,
        scope,
        trace_id,
        spawn_ns,
    }
}

/// Builder configuring a runtime before its workers start.
pub struct RuntimeBuilder {
    config: PlatformConfig,
    modules: Vec<Arc<dyn SchedulerModule>>,
}

impl RuntimeBuilder {
    /// Starts a builder from a platform configuration.
    pub fn new(config: PlatformConfig) -> RuntimeBuilder {
        RuntimeBuilder {
            config,
            modules: Vec::new(),
        }
    }

    /// Registers a pluggable module (paper §II-C). Modules are initialized
    /// in registration order once the worker pool is up, and finalized in
    /// reverse order at shutdown.
    pub fn module(mut self, module: Arc<dyn SchedulerModule>) -> RuntimeBuilder {
        self.modules.push(module);
        self
    }

    /// Starts the persistent worker pool and initializes modules.
    pub fn build(self) -> Result<Runtime, ModuleError> {
        crate::watchdog::init_from_env();
        let (sched, owned_sets) = Scheduler::new(&self.config);
        let inner = Arc::new(RuntimeInner {
            sched,
            config: self.config,
            modules: RwLock::new(Vec::new()),
            copy_registry: CopyRegistry::new(),
            module_stats: ModuleStats::default(),
            handles: Mutex::new(Vec::new()),
            stopped: AtomicBool::new(false),
            _watchdog_info: Mutex::new(None),
        });
        let rt = Runtime { inner };

        // Workers belong to the same simulated rank as the thread building
        // the runtime (thread-locals do not cross `spawn`, so the tag must
        // be re-applied inside each worker before its first trace emit).
        let rank = hiper_trace::ambient_rank();
        let mut handles = Vec::new();
        for (id, owned) in owned_sets.into_iter().enumerate() {
            let rt = rt.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("hiper-worker-{}", id))
                    .spawn(move || {
                        if let Some(r) = rank {
                            hiper_trace::set_ambient_rank(r);
                        }
                        worker_main(rt, id, owned)
                    })
                    .expect("failed to spawn worker thread"),
            );
        }
        *rt.inner.handles.lock() = handles;

        if crate::watchdog::armed() {
            let weak = Arc::downgrade(&rt.inner);
            let name = match rank {
                Some(r) => format!("runtime[rank {}] {}", r, rt.inner.config.name),
                None => format!("runtime {}", rt.inner.config.name),
            };
            let handle = crate::watchdog::register_info(name, move || match weak.upgrade() {
                Some(inner) => format!(
                    "workers={} idle={} stopped={} stats={:?}",
                    inner.sched.workers,
                    inner.sched.hub.idle_count(),
                    inner.stopped.load(Ordering::Relaxed),
                    inner.sched.stats.snapshot()
                ),
                None => "dropped".to_string(),
            });
            *rt.inner._watchdog_info.lock() = Some(handle);
        }

        // Default host<->host copy handler; modules may override kinds.
        crate::copy::register_default_handlers(&rt);

        for module in self.modules {
            module.initialize(&rt)?;
            module.register_copy_handlers(&rt);
            rt.inner.modules.write().push(module);
        }
        Ok(rt)
    }
}

fn worker_main(rt: Runtime, id: usize, owned: Vec<Worker<Task>>) {
    TLS.with(|tls| {
        *tls.borrow_mut() = Some(Tls {
            rt: rt.clone(),
            worker: Some(WorkerTls { id, owned }),
            scope: None,
            help_depth: 0,
        });
    });
    let sched = Arc::clone(&rt.inner.sched);
    // Failed-search count since the last task; drives the spin -> yield ->
    // park ladder.
    let mut misses: u32 = 0;
    loop {
        // Captured *before* the search: if it is still unchanged at park
        // time, the failed search below is proof enough that every queue is
        // empty and `maybe_has_work` can skip its exact scan.
        let seen = sched.publish_epoch();
        let task = TLS.with(|tls| {
            let tls = tls.borrow();
            let w = tls.as_ref().unwrap().worker.as_ref().unwrap();
            sched.find_task(id, &w.owned)
        });
        if let Some(task) = task {
            rt.execute_task(task);
            misses = 0;
            continue;
        }
        if sched.is_shutdown() {
            break;
        }
        misses += 1;
        if misses <= SPIN_SEARCHES {
            std::hint::spin_loop();
            continue;
        }
        if misses <= SPIN_SEARCHES + YIELD_SEARCHES {
            std::thread::yield_now();
            continue;
        }
        // Park protocol: register idle (SeqCst RMW inside), then re-check
        // for published work. A spawner either sees our registration (and
        // targets us with a wake) or we see its epoch bump here — never
        // neither (see the Dekker argument in event.rs).
        sched.hub.register_idle(id);
        let again = TLS.with(|tls| {
            let tls = tls.borrow();
            let w = tls.as_ref().unwrap().worker.as_ref().unwrap();
            sched.maybe_has_work(id, &w.owned, seen)
        });
        if again || sched.is_shutdown() {
            sched.hub.cancel_idle(id);
            misses = 0;
            continue;
        }
        sched.stats.park(id);
        // Capture the flag once so the park/unpark span stays balanced even
        // if tracing is flipped while we sleep.
        let tracing = hiper_trace::enabled();
        if tracing {
            hiper_trace::emit_always(EventKind::Park, 0, 0, 0);
        }
        let woken = sched.hub.park(id, WORKER_PARK_TIMEOUT);
        if tracing {
            hiper_trace::emit_always(EventKind::Unpark, woken as u64, 0, 0);
        }
        // An explicit wake means work very likely exists: restart the ladder
        // so we search eagerly. After a bare timeout, go straight back to
        // parking if the next search also fails.
        misses = if woken {
            0
        } else {
            SPIN_SEARCHES + YIELD_SEARCHES
        };
    }
    TLS.with(|tls| *tls.borrow_mut() = None);
}

impl Runtime {
    /// Creates a runtime with no modules.
    pub fn new(config: PlatformConfig) -> Runtime {
        RuntimeBuilder::new(config)
            .build()
            .expect("runtime with no modules cannot fail initialization")
    }

    /// The runtime owning the current task, if the calling thread is inside
    /// one (or is a worker thread).
    pub fn current() -> Option<Runtime> {
        TLS.with(|tls| tls.borrow().as_ref().map(|t| t.rt.clone()))
    }

    /// The platform configuration this runtime was built from.
    pub fn config(&self) -> &PlatformConfig {
        &self.inner.config
    }

    /// The first place of `kind` in the platform model, if any. Modules use
    /// this to locate e.g. the Interconnect place (paper §II-C1).
    pub fn place_of_kind(&self, kind: &PlaceKind) -> Option<PlaceId> {
        self.inner.config.graph.first_of_kind(kind)
    }

    /// Per-module statistics hooks (paper §V).
    pub fn module_stats(&self) -> &ModuleStats {
        &self.inner.module_stats
    }

    /// Scheduler counters snapshot.
    pub fn sched_stats(&self) -> SchedStatsSnapshot {
        self.inner.sched.stats.snapshot()
    }

    /// The live scheduler counters. External recovery drivers (the
    /// simulated cluster's supervisor harness) bump the recovery counters
    /// through this.
    pub fn stats(&self) -> &crate::stats::SchedStats {
        &self.inner.sched.stats
    }

    /// True when at least one worker is parked or registering idle — i.e.
    /// publishing more work right now would actually recruit parallelism.
    /// One relaxed load; `forasync` polls this to decide whether to split
    /// (publish its untouched half) or keep iterating sequentially.
    pub(crate) fn split_demand(&self) -> bool {
        self.inner.sched.hub.idle_count() > 0
    }

    /// Credits `n` elided forasync splits to the calling thread's shard.
    /// Called once per `split_run` frame, not per elision.
    pub(crate) fn note_splits_elided(&self, n: u64) {
        self.inner
            .sched
            .stats
            .splits_elided_n(self.current_shard(), n);
    }

    // ------------------------------------------------------------------
    // Task creation (paper §II-B4)
    // ------------------------------------------------------------------

    /// `async`: creates a task at the place closest to the current thread
    /// (its home place on a worker; the first worker home otherwise).
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        let (body, kind) = TaskBody::new(f);
        self.spawn_body(None, body, kind);
    }

    /// `async_at`: creates a task at a specific place.
    pub fn spawn_at(&self, place: PlaceId, f: impl FnOnce() + Send + 'static) {
        let (body, kind) = TaskBody::new(f);
        self.spawn_body(Some(place), body, kind);
    }

    /// Like [`spawn_at`](Self::spawn_at) but enqueues FIFO (to the place's
    /// injector) even from a worker thread. Used to *yield*: a task that
    /// re-spawns itself this way lets every other eligible task at the place
    /// run first (the paper's polling tasks, §II-C1 step 3).
    pub fn spawn_at_yield(&self, place: PlaceId, f: impl FnOnce() + Send + 'static) {
        let (body, kind) = TaskBody::new(f);
        let scope = self.current_scope_checked_in();
        self.inner.sched.stats.task_body(usize::MAX, kind);
        self.inner
            .sched
            .spawn_external(make_task(body, place, scope));
    }

    /// `async_future`: creates a task and returns a future satisfied with
    /// the task's result when it completes.
    pub fn spawn_future<T: Send + 'static>(
        &self,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> Future<T> {
        self.spawn_future_at(self.here(), f)
    }

    /// `async_future` at a specific place.
    pub fn spawn_future_at<T: Send + 'static>(
        &self,
        place: PlaceId,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> Future<T> {
        let promise = Promise::new();
        let future = promise.future();
        self.spawn_at(place, move || promise.put(f()));
        future
    }

    /// `async_await`: creates a task whose execution is predicated on the
    /// satisfaction of `dep`. The task is registered with the *current*
    /// finish scope immediately (so an enclosing `finish` waits for it even
    /// though it only becomes eligible later).
    pub fn spawn_await<D: Send + 'static>(
        &self,
        dep: &Future<D>,
        f: impl FnOnce() + Send + 'static,
    ) {
        self.spawn_await_at(self.here(), dep, f);
    }

    /// `async_await` at a specific place.
    ///
    /// Fail-fast: if `dep` is poisoned rather than satisfied, the predicated
    /// task body never runs — the poison propagates to the enclosing finish
    /// scope instead.
    pub fn spawn_await_at<D: Send + 'static>(
        &self,
        place: PlaceId,
        dep: &Future<D>,
        f: impl FnOnce() + Send + 'static,
    ) {
        let scope = self.current_scope_checked_in();
        let rt = self.clone();
        let dep2 = dep.clone();
        dep.on_ready(move || {
            if let Some(err) = dep2.poison_error() {
                // The dependency failed: propagate instead of running the
                // dependent body. Fail before check-out (see FinishScope).
                if let Some(scope) = scope {
                    scope.fail(TaskError::new(format!("dependency poisoned: {}", err)));
                    scope.check_out();
                }
                return;
            }
            // The body is wrapped when the dependency fires — usually on the
            // completer's worker thread, so the slot comes off its free list.
            let (body, kind) = TaskBody::new(f);
            rt.enqueue_prechecked(make_task(body, place, scope), kind);
        });
    }

    /// `async_future_await`: predicated on `dep`, returns a future satisfied
    /// on completion.
    pub fn spawn_future_await<D: Send + 'static, T: Send + 'static>(
        &self,
        dep: &Future<D>,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> Future<T> {
        let promise = Promise::new();
        let future = promise.future();
        self.spawn_await(dep, move || promise.put(f()));
        future
    }

    /// Creates a task predicated on *all* of `deps`.
    pub fn spawn_await_all(&self, deps: &[Future<()>], f: impl FnOnce() + Send + 'static) {
        let all = crate::promise::when_all(deps);
        self.spawn_await(&all, f);
    }

    /// `finish`: runs `f` inline and then blocks the calling *task* until
    /// every task transitively created inside `f` has completed. On a worker
    /// the block is help-first; on an external thread it parks.
    ///
    /// Returns `Err` if any task created inside the scope panicked (the
    /// first recorded failure). The scope always drains fully before the
    /// error is surfaced, so no spawned task is left running.
    pub fn finish<R>(&self, f: impl FnOnce() -> R) -> Result<R, TaskError> {
        let finish_t0 = if hiper_metrics::enabled() {
            hiper_trace::clock::now_ns().max(1)
        } else {
            0
        };
        let scope = FinishScope::new(Arc::clone(&self.inner.sched.hub));
        let prev = TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            match tls.as_mut() {
                Some(t) if Arc::ptr_eq(&t.rt.inner, &self.inner) => {
                    t.scope.replace(Arc::clone(&scope))
                }
                // Calling thread belongs to no runtime (or another runtime):
                // install a fresh TLS frame so spawns inside `f` still see
                // the scope.
                _ => {
                    *tls = Some(Tls {
                        rt: self.clone(),
                        worker: None,
                        scope: Some(Arc::clone(&scope)),
                        help_depth: 0,
                    });
                    None
                }
            }
        });
        let result = f();
        TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            if let Some(t) = tls.as_mut() {
                if t.worker.is_none() && prev.is_none() {
                    // Tear down the frame we installed, unless we are a
                    // worker (workers keep their frame).
                    if Arc::ptr_eq(&t.rt.inner, &self.inner)
                        && t.scope
                            .as_ref()
                            .map(|s| Arc::ptr_eq(s, &scope))
                            .unwrap_or(false)
                    {
                        *tls = None;
                        return;
                    }
                }
                t.scope = prev;
            }
        });
        scope.check_out(); // the body itself
        self.wait_for(&mut || scope.is_done());
        if finish_t0 != 0 {
            met::finish_scope().record(hiper_trace::clock::now_ns().saturating_sub(finish_t0));
        }
        match scope.error() {
            Some(err) => Err(err),
            None => Ok(result),
        }
    }

    /// `finish_supervised`: a resilient finish scope. Runs `body` (which
    /// receives the 1-based attempt number) under [`Runtime::finish`]; if
    /// the scope drains poisoned and `policy` classifies the failure as
    /// retryable, the whole body re-executes after the policy's backoff.
    ///
    /// The body must be *re-runnable*: any side effects it performed
    /// before the failure either are idempotent or are rolled back by the
    /// caller (the checkpoint-replay harness does the latter). The scope
    /// always drains fully before a retry starts, so no task from a failed
    /// attempt is still running when the next attempt begins.
    ///
    /// When the retry budget is exhausted (or the failure is not
    /// retryable) the last error surfaces through the existing typed error
    /// path — exactly what an unsupervised `finish` would have returned.
    pub fn finish_supervised<R>(
        &self,
        policy: &crate::supervisor::RetryPolicy,
        mut body: impl FnMut(u32) -> R,
    ) -> Result<R, TaskError> {
        let mut attempt = 1u32;
        loop {
            match self.finish(|| body(attempt)) {
                Ok(r) => return Ok(r),
                Err(err) => {
                    if !policy.should_retry(attempt, &err) {
                        return Err(err);
                    }
                    self.inner.sched.stats.task_retried(usize::MAX);
                    if hiper_trace::enabled() {
                        hiper_trace::emit(
                            hiper_trace::EventKind::TaskRetry,
                            attempt as u64,
                            policy.max_attempts as u64,
                            0,
                        );
                    }
                    let delay = policy.backoff_for(attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// Blocks the logical task until `pred` becomes true: help-first on a
    /// worker, parked on the scheduler event otherwise.
    pub(crate) fn wait_for(&self, pred: &mut dyn FnMut() -> bool) {
        if pred() {
            return;
        }
        let is_worker = TLS.with(|tls| {
            tls.borrow()
                .as_ref()
                .map(|t| t.worker.is_some())
                .unwrap_or(false)
        });
        if is_worker {
            self.help_until(pred);
        } else {
            // External thread: epoch-wait on the hub's event. Snapshot the
            // epoch *before* re-checking the predicate so a completion that
            // lands between the check and the sleep bumps the epoch and the
            // wait returns immediately. The short timeout is a safety net
            // for completions that don't signal.
            let hub = &self.inner.sched.hub;
            loop {
                if pred() {
                    return;
                }
                let epoch = hub.epoch();
                if !pred() {
                    hub.wait_while(epoch, EVENT_WAIT_TIMEOUT);
                }
            }
        }
    }

    /// The wake hub of the runtime owning the current thread, if any. Used
    /// by `Future::wait` to arrange a prompt wakeup (`signal_all` on
    /// promise satisfaction).
    pub(crate) fn current_sched_event() -> Option<Arc<crate::event::WakeHub>> {
        TLS.with(|tls| {
            tls.borrow()
                .as_ref()
                .map(|t| Arc::clone(&t.rt.inner.sched.hub))
        })
    }

    /// If the current thread is a worker of *any* runtime, run its help loop
    /// until `pred` holds and return true; otherwise return false. Called by
    /// `Future::wait` so that blocking on any future keeps the core busy.
    pub(crate) fn try_help_current(pred: &mut dyn FnMut() -> bool) -> bool {
        let rt = TLS.with(|tls| {
            tls.borrow()
                .as_ref()
                .filter(|t| t.worker.is_some())
                .map(|t| t.rt.clone())
        });
        match rt {
            Some(rt) => {
                rt.help_until(pred);
                true
            }
            None => false,
        }
    }

    /// Help-first blocking (worker threads only): execute eligible tasks
    /// until `pred` holds. Bounded nesting; beyond [`MAX_HELP_DEPTH`] the
    /// worker parks instead of recursing further.
    fn help_until(&self, pred: &mut dyn FnMut() -> bool) {
        let sched = Arc::clone(&self.inner.sched);
        let (id, too_deep) = TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            let t = tls.as_mut().unwrap();
            t.help_depth += 1;
            (t.worker.as_ref().unwrap().id, t.help_depth > MAX_HELP_DEPTH)
        });
        loop {
            if pred() {
                break;
            }
            // As in worker_main: epoch before the search, so an unchanged
            // epoch at park time lets `maybe_has_work` trust this search's
            // empty verdict without rescanning.
            let seen = sched.publish_epoch();
            let task = if too_deep {
                None
            } else {
                TLS.with(|tls| {
                    let tls = tls.borrow();
                    let w = tls.as_ref().unwrap().worker.as_ref().unwrap();
                    sched.find_task(id, &w.owned)
                })
            };
            match task {
                Some(task) => {
                    sched.stats.help(id);
                    self.execute_task(task);
                }
                None if too_deep => {
                    // A depth-capped worker cannot execute tasks, so it must
                    // NOT join the idle set — a targeted wake aimed at it
                    // would be absorbed without any task getting run. Its
                    // predicate only flips on completion-style transitions,
                    // which always broadcast, so the epoch event suffices.
                    let epoch = sched.hub.epoch();
                    if !pred() {
                        sched.hub.wait_while(epoch, EVENT_WAIT_TIMEOUT);
                    }
                }
                None => {
                    // Same register / re-check / park protocol as
                    // `worker_main`, with the blocking predicate folded into
                    // the re-check (pred flips always come with a broadcast,
                    // which unparks us even while registered).
                    sched.hub.register_idle(id);
                    let again = pred()
                        || sched.is_shutdown()
                        || TLS.with(|tls| {
                            let tls = tls.borrow();
                            let w = tls.as_ref().unwrap().worker.as_ref().unwrap();
                            sched.maybe_has_work(id, &w.owned, seen)
                        });
                    if again {
                        sched.hub.cancel_idle(id);
                    } else {
                        sched.stats.park(id);
                        let tracing = hiper_trace::enabled();
                        if tracing {
                            hiper_trace::emit_always(EventKind::Park, 0, 0, 0);
                        }
                        let woken = sched.hub.park(id, WORKER_PARK_TIMEOUT);
                        if tracing {
                            hiper_trace::emit_always(EventKind::Unpark, woken as u64, 0, 0);
                        }
                    }
                }
            }
        }
        TLS.with(|tls| {
            tls.borrow_mut().as_mut().unwrap().help_depth -= 1;
        });
    }

    /// Runs `f` on the pool and blocks the calling thread until it (and, via
    /// an implicit finish, everything it spawns) completes. The conventional
    /// SPMD main-function entry point.
    pub fn block_on<R: Send + 'static>(&self, f: impl FnOnce() -> R + Send + 'static) -> R {
        let rt = self.clone();
        let slot = Arc::new(Mutex::new(None));
        let out = Arc::clone(&slot);
        let fut = self.spawn_future(move || {
            let r = rt.finish(f);
            *out.lock() = Some(r);
        });
        // Wake the external waiter promptly on completion (or poisoning).
        let hub = Arc::clone(&self.inner.sched.hub);
        fut.on_ready(move || hub.signal_all());
        self.wait_for(&mut || fut.is_complete());
        let result = slot.lock().take();
        match result {
            Some(Ok(r)) => r,
            Some(Err(e)) => panic!("[hiper] unhandled task failure in block_on: {}", e),
            None => {
                // The body task itself panicked before storing a result; the
                // dropped promise carries the poison.
                let err = fut
                    .poison_error()
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "body produced no value".to_string());
                panic!("[hiper] unhandled task failure in block_on: {}", err);
            }
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// The "closest" place for spawns from the current thread.
    pub fn here(&self) -> PlaceId {
        TLS.with(|tls| {
            tls.borrow()
                .as_ref()
                .filter(|t| Arc::ptr_eq(&t.rt.inner, &self.inner))
                .and_then(|t| t.worker.as_ref())
                .map(|w| self.inner.sched.homes[w.id])
        })
        .unwrap_or_else(|| self.inner.sched.homes[0])
    }

    /// If the calling thread is a worker of *this* runtime, returns its
    /// current finish scope (not checked in; may be `None` inside no scope).
    /// Returns `None` when the caller is not one of our workers. `forasync`
    /// uses this to decide whether a loop may run inline on the caller.
    pub(crate) fn worker_scope(&self) -> Option<Option<Arc<FinishScope>>> {
        TLS.with(|tls| {
            tls.borrow()
                .as_ref()
                .filter(|t| t.worker.is_some() && Arc::ptr_eq(&t.rt.inner, &self.inner))
                .map(|t| t.scope.clone())
        })
    }

    /// The stats shard for the calling thread: its worker id on one of our
    /// workers, the external shard otherwise.
    pub(crate) fn current_shard(&self) -> usize {
        TLS.with(|tls| {
            tls.borrow()
                .as_ref()
                .filter(|t| Arc::ptr_eq(&t.rt.inner, &self.inner))
                .and_then(|t| t.worker.as_ref())
                .map(|w| w.id)
                .unwrap_or(usize::MAX)
        })
    }

    /// Captures the current finish scope (if it belongs to this runtime) and
    /// checks a new task into it.
    fn current_scope_checked_in(&self) -> Option<Arc<FinishScope>> {
        TLS.with(|tls| {
            let tls = tls.borrow();
            let t = tls.as_ref()?;
            if !Arc::ptr_eq(&t.rt.inner, &self.inner) {
                return None;
            }
            let scope = t.scope.as_ref()?;
            scope.check_in();
            Some(Arc::clone(scope))
        })
    }

    /// The consolidated spawn path: one TLS pass captures the current finish
    /// scope (checking the task in), resolves the placement (`None` = the
    /// spawner's home place) and routes the task — own deque for a worker of
    /// this runtime, place injector otherwise. The old path paid three
    /// separate TLS borrows per spawn (scope capture, worker probe, deque
    /// access); this is the per-task hot path, so they are folded into one.
    fn spawn_body(&self, place: Option<PlaceId>, body: TaskBody, kind: BodyKind) {
        let sched = &self.inner.sched;
        let external = TLS.with(|tls| {
            let tls = tls.borrow();
            match tls.as_ref() {
                Some(t) if Arc::ptr_eq(&t.rt.inner, &self.inner) => {
                    let scope = t.scope.as_ref().map(|s| {
                        s.check_in();
                        Arc::clone(s)
                    });
                    match t.worker.as_ref() {
                        Some(w) => {
                            let place = place.unwrap_or(sched.homes[w.id]);
                            sched.stats.task_body(w.id, kind);
                            sched.spawn_from_worker(w.id, &w.owned, make_task(body, place, scope));
                            None
                        }
                        None => Some(make_task(body, place.unwrap_or(sched.homes[0]), scope)),
                    }
                }
                // Thread belongs to no runtime (or another runtime): no
                // scope to inherit, spawn through the injector.
                _ => Some(make_task(body, place.unwrap_or(sched.homes[0]), None)),
            }
        });
        if let Some(task) = external {
            sched.stats.task_body(usize::MAX, kind);
            sched.spawn_external(task);
        }
    }

    /// Enqueues a task whose scope check-in already happened (the
    /// continuation path of `spawn_await`).
    pub(crate) fn enqueue_prechecked(&self, task: Task, kind: BodyKind) {
        let sched = &self.inner.sched;
        let routed = TLS.with(|tls| {
            let tls = tls.borrow();
            match tls.as_ref() {
                Some(t) if Arc::ptr_eq(&t.rt.inner, &self.inner) => match t.worker.as_ref() {
                    Some(w) => {
                        sched.stats.task_body(w.id, kind);
                        sched.spawn_from_worker(w.id, &w.owned, task);
                        None
                    }
                    None => Some(task),
                },
                _ => Some(task),
            }
        });
        if let Some(task) = routed {
            sched.stats.task_body(usize::MAX, kind);
            sched.spawn_external(task);
        }
    }

    fn execute_task(&self, task: Task) {
        let Task {
            body,
            scope,
            place,
            trace_id,
            spawn_ns,
        } = task;
        let (prev, shard) = TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            let t = tls.as_mut().expect("execute_task off-runtime");
            // Stats shard: the worker id, or the external shard for
            // non-worker frames (usize::MAX clamps to it).
            let shard = t.worker.as_ref().map(|w| w.id).unwrap_or(usize::MAX);
            (std::mem::replace(&mut t.scope, scope.clone()), shard)
        });
        // Only tasks spawned under tracing carry a nonzero id; untraced
        // tasks pay nothing here (no TLS writes, no clock reads).
        let prev_trace = if trace_id != 0 {
            hiper_trace::emit(EventKind::TaskBegin, trace_id, 0, place.index() as u64);
            met::spans_active().add(1);
            Some(hiper_trace::set_current_task(trace_id))
        } else {
            None
        };
        // Tasks stamped at spawn (metrics were on) report queue latency and
        // run time; unstamped tasks pay nothing here beyond the field move.
        let begin_ns = if spawn_ns != 0 {
            let now = hiper_trace::clock::now_ns();
            met::queue_latency().record(now.saturating_sub(spawn_ns));
            now
        } else {
            0
        };
        let result = catch_unwind(AssertUnwindSafe(|| body.call()));
        if spawn_ns != 0 {
            met::task_run().record(hiper_trace::clock::now_ns().saturating_sub(begin_ns));
        }
        if let Some(prev_task) = prev_trace {
            hiper_trace::set_current_task(prev_task);
            hiper_trace::emit(EventKind::TaskEnd, trace_id, 0, 0);
            met::spans_active().add(-1);
        }
        TLS.with(|tls| {
            if let Some(t) = tls.borrow_mut().as_mut() {
                t.scope = prev;
            }
        });
        if let Err(panic) = &result {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic>".to_string());
            self.inner.sched.stats.task_panic(shard);
            if trace_id != 0 {
                hiper_trace::emit(EventKind::TaskPanic, trace_id, place.index() as u64, 0);
            }
            eprintln!(
                "[hiper] task panicked (worker continues): {} (task={:#x} place={})",
                msg,
                trace_id,
                place.index()
            );
            // Poison the scope *before* checking the failed task out so the
            // finish waiter cannot observe a drained scope without the error.
            if let Some(scope) = &scope {
                scope.fail(TaskError::new(msg));
            }
        }
        if let Some(scope) = scope {
            scope.check_out();
        }
        self.inner.sched.stats.task_executed(shard);
        crate::watchdog::note_progress();
    }

    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Finalizes modules (reverse registration order), stops the worker pool
    /// and joins every worker thread. Tasks still queued are dropped;
    /// applications should reach quiescence (e.g. with `finish`) first.
    pub fn shutdown(&self) {
        if self.inner.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        let modules: Vec<_> = self.inner.modules.write().drain(..).collect();
        for module in modules.iter().rev() {
            module.finalize(self);
        }
        self.inner.sched.request_shutdown();
        let handles: Vec<_> = self.inner.handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.sched.workers
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("config", &self.inner.config.name)
            .field("workers", &self.inner.sched.workers)
            .finish()
    }
}
