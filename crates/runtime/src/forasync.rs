//! Parallel loops: the `forasync` family.
//!
//! `forasync` expresses data parallelism over index spaces as collections of
//! tasks on the work-stealing runtime — the HiPER equivalent of
//! `#pragma omp parallel for` bodies in the paper's examples (§II-D).
//!
//! # Split-on-demand (DESIGN.md §2.11)
//!
//! Ranges used to be split *eagerly*: every recursion level spawned the
//! upper half as a task, so a loop over `n` iterations with grain `g`
//! published `n/g` tasks even when every worker was already busy and nobody
//! could steal them. Splitting is now adaptive: a running chunk checks —
//! once per executed grain-sized chunk, a single relaxed load — whether any
//! worker is parked or going idle, and only then publishes its untouched
//! upper half as a stealable task. A saturated loop therefore collapses to
//! (almost) sequential execution with zero task churn (`splits_elided`
//! counts the skips), while an underloaded pool still fans out at
//! exponential rate: each published half re-splits on arrival if demand
//! persists. Results are unaffected — the same iterations run, only the
//! task boundaries move — which keeps the chaos grid (PR 3) bit-identical.

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hiper_platform::PlaceId;

use crate::promise::{Future, Promise, TaskError};
use crate::runtime::Runtime;

/// Completion latch shared by the chunks of one `forasync`.
///
/// Lock-free: `remaining` drains to zero and exactly one thread — the one
/// whose `complete` call observes the drain — takes the promise out of the
/// cell and satisfies it. The old `Mutex<Option<Promise>>` paid a lock
/// round-trip per completed chunk.
struct Latch {
    remaining: AtomicUsize,
    /// Taken exactly once, by the draining thread (see `complete`).
    promise: UnsafeCell<Option<Promise<()>>>,
}

// SAFETY: the cell is touched only by `Latch::new` (pre-share) and by the
// single thread whose `fetch_sub` drains `remaining` — the AcqRel RMW makes
// it the unique winner and orders the access after every other `complete`.
unsafe impl Sync for Latch {}

impl Latch {
    fn new(total: usize) -> (Arc<Latch>, Future<()>) {
        let promise = Promise::new();
        let future = promise.future();
        let latch = Arc::new(Latch {
            remaining: AtomicUsize::new(total),
            promise: UnsafeCell::new(Some(promise)),
        });
        if total == 0 {
            latch.complete(0); // degenerate empty loop
        }
        (latch, future)
    }

    fn complete(&self, n: usize) {
        // `n == 0` only for the empty-loop case, which must still fire.
        let prev = self.remaining.fetch_sub(n, Ordering::AcqRel);
        if prev == n {
            if let Some(p) = unsafe { (*self.promise.get()).take() } {
                p.put(());
            }
        }
    }
}

/// Runs `[lo, hi)` chunk by chunk, publishing the untouched upper half as a
/// stealable task whenever (a) the remaining range exceeds the grain and
/// (b) some worker is idle to take it. Completes the latch once, with the
/// iteration count this frame executed itself.
fn split_run(
    rt: &Runtime,
    place: PlaceId,
    lo: usize,
    hi: usize,
    grain: usize,
    f: &Arc<dyn Fn(usize) + Send + Sync>,
    latch: &Arc<Latch>,
) {
    debug_assert!(lo < hi);
    let mut lo = lo;
    let mut hi = hi;
    let mut executed = 0usize;
    let mut elided = 0u64;
    while lo < hi {
        if hi - lo > grain {
            if rt.split_demand() {
                let mid = lo + (hi - lo) / 2;
                let rt2 = rt.clone();
                let f2 = Arc::clone(f);
                let latch2 = Arc::clone(latch);
                rt.spawn_at(place, move || {
                    split_run(&rt2, place, mid, hi, grain, &f2, &latch2);
                });
                hi = mid;
            } else {
                elided += 1;
            }
        }
        // Always run one grain-sized chunk between split decisions, so a
        // still-parked worker cannot make us shred the whole range into
        // tasks before anyone actually steals.
        let end = hi.min(lo + grain);
        for i in lo..end {
            f(i);
        }
        executed += end - lo;
        lo = end;
    }
    if elided > 0 {
        rt.note_splits_elided(elided);
    }
    latch.complete(executed);
}

impl Runtime {
    /// `forasync_future` over `0..n` with the given grain size: returns a
    /// future satisfied when every iteration has run. Iterations run at
    /// `place` (commonly the caller's home).
    ///
    /// A loop that is one chunk or less (`n <= grain`) called from a worker
    /// thread runs *inline on the caller* instead of paying a spawn + latch
    /// round-trip: the returned future is already complete. A body panic on
    /// that path poisons the future and fails the caller's finish scope —
    /// exactly what the spawned version would have done — instead of
    /// unwinding the caller.
    pub fn forasync_future_1d(
        &self,
        place: PlaceId,
        n: usize,
        grain: usize,
        f: impl Fn(usize) + Send + Sync + 'static,
    ) -> Future<()> {
        let grain = grain.max(1);
        if n == 0 {
            let p = Promise::new();
            let future = p.future();
            p.put(());
            return future;
        }
        if n <= grain {
            if let Some(scope) = self.worker_scope() {
                let p = Promise::new();
                let future = p.future();
                match catch_unwind(AssertUnwindSafe(|| {
                    for i in 0..n {
                        f(i);
                    }
                })) {
                    Ok(()) => p.put(()),
                    Err(panic) => {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic>".to_string());
                        if let Some(scope) = scope {
                            scope.fail(TaskError::new(msg.clone()));
                        }
                        p.poison(TaskError::new(msg));
                    }
                }
                return future;
            }
        }
        let (latch, future) = Latch::new(n);
        let f: Arc<dyn Fn(usize) + Send + Sync> = Arc::new(f);
        let rt = self.clone();
        let latch2 = Arc::clone(&latch);
        self.spawn_at(place, move || {
            split_run(&rt, place, 0, n, grain, &f, &latch2);
        });
        future
    }

    /// Blocking `forasync` over `0..n`: returns when every iteration has
    /// run. Help-first on workers.
    ///
    /// On a worker thread the root chunk runs inline (no wrapper task); the
    /// caller then help-waits only for whatever halves were actually stolen.
    /// A body panic in the inline chunk unwinds the caller like a direct
    /// call would (failing its enclosing scope through the normal task
    /// machinery); panics in stolen halves poison the loop's latch and fail
    /// the scope, as before.
    pub fn forasync_1d(&self, n: usize, grain: usize, f: impl Fn(usize) + Send + Sync + 'static) {
        let grain = grain.max(1);
        if n == 0 {
            return;
        }
        if self.worker_scope().is_some() {
            if n <= grain {
                // One chunk, no parallelism possible: plain loop.
                for i in 0..n {
                    f(i);
                }
                return;
            }
            let (latch, fut) = Latch::new(n);
            let f: Arc<dyn Fn(usize) + Send + Sync> = Arc::new(f);
            split_run(self, self.here(), 0, n, grain, &f, &latch);
            // Drop our latch handle *before* waiting: if a stolen half
            // panicked (and never completed its count), the promise must be
            // droppable — poisoning the future — once the remaining task
            // handles go away; holding ours here would deadlock the wait.
            drop(latch);
            fut.wait();
            return;
        }
        let fut = self.forasync_future_1d(self.here(), n, grain, f);
        fut.wait();
    }

    /// `forasync` over a 2-D index space `(0..n0) × (0..n1)`; `grain` is in
    /// units of rows (outer index).
    pub fn forasync_2d(
        &self,
        (n0, n1): (usize, usize),
        grain: usize,
        f: impl Fn(usize, usize) + Send + Sync + 'static,
    ) {
        self.forasync_1d(n0, grain, move |i| {
            for j in 0..n1 {
                f(i, j);
            }
        });
    }

    /// `forasync` over a 3-D index space; `grain` is in units of planes
    /// (outermost index).
    pub fn forasync_3d(
        &self,
        (n0, n1, n2): (usize, usize, usize),
        grain: usize,
        f: impl Fn(usize, usize, usize) + Send + Sync + 'static,
    ) {
        self.forasync_1d(n0, grain, move |i| {
            for j in 0..n1 {
                for k in 0..n2 {
                    f(i, j, k);
                }
            }
        });
    }
}
