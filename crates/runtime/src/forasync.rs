//! Parallel loops: the `forasync` family.
//!
//! `forasync` expresses data parallelism over index spaces as collections of
//! tasks on the work-stealing runtime — the HiPER equivalent of
//! `#pragma omp parallel for` bodies in the paper's examples (§II-D).
//! Ranges are split recursively so idle workers steal the *larger* untouched
//! half, giving good load balance for irregular bodies.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hiper_platform::PlaceId;
use parking_lot::Mutex;

use crate::promise::{Future, Promise};
use crate::runtime::Runtime;

/// Completion latch shared by the chunks of one `forasync`.
struct Latch {
    remaining: AtomicUsize,
    promise: Mutex<Option<Promise<()>>>,
}

impl Latch {
    fn new(total: usize) -> (Arc<Latch>, Future<()>) {
        let promise = Promise::new();
        let future = promise.future();
        let latch = Arc::new(Latch {
            remaining: AtomicUsize::new(total),
            promise: Mutex::new(Some(promise)),
        });
        if total == 0 {
            latch.complete(0); // degenerate empty loop
        }
        (latch, future)
    }

    fn complete(&self, n: usize) {
        // `n == 0` only for the empty-loop case, which must still fire.
        let prev = self.remaining.fetch_sub(n, Ordering::AcqRel);
        if prev == n {
            if let Some(p) = self.promise.lock().take() {
                p.put(());
            }
        }
    }
}

fn split_run(
    rt: &Runtime,
    place: PlaceId,
    lo: usize,
    hi: usize,
    grain: usize,
    f: &Arc<dyn Fn(usize) + Send + Sync>,
    latch: &Arc<Latch>,
) {
    let mut hi = hi;
    // Spawn the upper half while the range is larger than the grain; iterate
    // on the lower half locally (depth-first, stealable breadth).
    while hi - lo > grain {
        let mid = lo + (hi - lo) / 2;
        let rt2 = rt.clone();
        let f2 = Arc::clone(f);
        let latch2 = Arc::clone(latch);
        rt.spawn_at(place, move || {
            split_run(&rt2, place, mid, hi, grain, &f2, &latch2);
        });
        hi = mid;
    }
    for i in lo..hi {
        f(i);
    }
    latch.complete(hi - lo);
}

impl Runtime {
    /// `forasync_future` over `0..n` with the given grain size: returns a
    /// future satisfied when every iteration has run. Iterations run at
    /// `place` (commonly the caller's home).
    pub fn forasync_future_1d(
        &self,
        place: PlaceId,
        n: usize,
        grain: usize,
        f: impl Fn(usize) + Send + Sync + 'static,
    ) -> Future<()> {
        let grain = grain.max(1);
        let (latch, future) = Latch::new(n);
        if n > 0 {
            let f: Arc<dyn Fn(usize) + Send + Sync> = Arc::new(f);
            let rt = self.clone();
            let latch2 = Arc::clone(&latch);
            self.spawn_at(place, move || {
                split_run(&rt, place, 0, n, grain, &f, &latch2);
            });
        }
        future
    }

    /// Blocking `forasync` over `0..n`: returns when every iteration has
    /// run. Help-first on workers.
    pub fn forasync_1d(&self, n: usize, grain: usize, f: impl Fn(usize) + Send + Sync + 'static) {
        let fut = self.forasync_future_1d(self.here(), n, grain, f);
        fut.wait();
    }

    /// `forasync` over a 2-D index space `(0..n0) × (0..n1)`; `grain` is in
    /// units of rows (outer index).
    pub fn forasync_2d(
        &self,
        (n0, n1): (usize, usize),
        grain: usize,
        f: impl Fn(usize, usize) + Send + Sync + 'static,
    ) {
        self.forasync_1d(n0, grain, move |i| {
            for j in 0..n1 {
                f(i, j);
            }
        });
    }

    /// `forasync` over a 3-D index space; `grain` is in units of planes
    /// (outermost index).
    pub fn forasync_3d(
        &self,
        (n0, n1, n2): (usize, usize, usize),
        grain: usize,
        f: impl Fn(usize, usize, usize) + Send + Sync + 'static,
    ) {
        self.forasync_1d(n0, grain, move |i| {
            for j in 0..n1 {
                for k in 0..n2 {
                    f(i, j, k);
                }
            }
        });
    }
}
