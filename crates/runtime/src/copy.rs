//! `async_copy`: asynchronous data movement between places (paper §II-B4).
//!
//! `async_copy(dst_loc, dst_place, src_loc, src_place, nbytes)` transfers
//! data between memory locations attached to places in the platform model
//! and returns a future. The runtime dispatches each request to a *copy
//! handler* selected by the (source kind, destination kind) pair; the
//! default handler covers host↔host copies, and modules register handlers
//! for the kinds they own — e.g. the CUDA module registers itself for every
//! pair that touches a GPU place (paper §II-C3).

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use hiper_platform::{PlaceId, PlaceKind};
use parking_lot::RwLock;

use crate::promise::{Future, Promise};
use crate::runtime::Runtime;

/// A byte buffer attached to a host place. The analogue of page-locked
/// transfer memory: applications stage data for `async_copy` in these.
pub struct HostBuffer {
    data: RwLock<Vec<u8>>,
}

impl HostBuffer {
    /// Allocates a zeroed buffer of `len` bytes.
    pub fn new(len: usize) -> Arc<HostBuffer> {
        Arc::new(HostBuffer {
            data: RwLock::new(vec![0; len]),
        })
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.read().len()
    }

    /// True if the buffer has zero length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies `src` into the buffer starting at `offset`.
    pub fn write_bytes(&self, offset: usize, src: &[u8]) {
        self.data.write()[offset..offset + src.len()].copy_from_slice(src);
    }

    /// Copies `dst.len()` bytes out of the buffer starting at `offset`.
    pub fn read_bytes(&self, offset: usize, dst: &mut [u8]) {
        dst.copy_from_slice(&self.data.read()[offset..offset + dst.len()]);
    }

    /// Runs `f` over the raw bytes (shared).
    pub fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.data.read())
    }

    /// Runs `f` over the raw bytes (exclusive).
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        f(&mut self.data.write())
    }

    /// Typed store of an `f64` slice at element offset `elems`.
    pub fn write_f64s(&self, elems: usize, src: &[f64]) {
        let mut data = self.data.write();
        let base = elems * 8;
        for (i, v) in src.iter().enumerate() {
            data[base + i * 8..base + i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Typed load of an `f64` slice from element offset `elems`.
    pub fn read_f64s(&self, elems: usize, dst: &mut [f64]) {
        let data = self.data.read();
        let base = elems * 8;
        for (i, v) in dst.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&data[base + i * 8..base + i * 8 + 8]);
            *v = f64::from_le_bytes(b);
        }
    }
}

impl fmt::Debug for HostBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostBuffer")
            .field("len", &self.len())
            .finish()
    }
}

/// One endpoint of an `async_copy`.
#[derive(Clone)]
pub enum MemLoc {
    /// A location in a [`HostBuffer`] (byte offset).
    Host { buf: Arc<HostBuffer>, offset: usize },
    /// A module-owned location (e.g. a GPU device buffer). The owning
    /// module's copy handler downcasts the token.
    Opaque {
        token: Arc<dyn Any + Send + Sync>,
        offset: usize,
    },
}

impl MemLoc {
    /// Host location helper.
    pub fn host(buf: &Arc<HostBuffer>, offset: usize) -> MemLoc {
        MemLoc::Host {
            buf: Arc::clone(buf),
            offset,
        }
    }

    /// Opaque (module-owned) location helper.
    pub fn opaque(token: Arc<dyn Any + Send + Sync>, offset: usize) -> MemLoc {
        MemLoc::Opaque { token, offset }
    }
}

impl fmt::Debug for MemLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemLoc::Host { offset, .. } => write!(f, "MemLoc::Host(+{})", offset),
            MemLoc::Opaque { offset, .. } => write!(f, "MemLoc::Opaque(+{})", offset),
        }
    }
}

/// A copy request handed to a handler.
pub struct CopyRequest {
    /// Destination location and its place.
    pub dst: MemLoc,
    /// Place the destination is attached to.
    pub dst_place: PlaceId,
    /// Source location.
    pub src: MemLoc,
    /// Place the source is attached to.
    pub src_place: PlaceId,
    /// Bytes to transfer.
    pub nbytes: usize,
}

/// A registered copy handler: performs (or schedules) the transfer and
/// satisfies `done` on completion.
pub type CopyHandler = dyn Fn(&Runtime, CopyRequest, Promise<()>) + Send + Sync;

/// Registry mapping (src kind, dst kind) to handlers.
pub struct CopyRegistry {
    handlers: RwLock<HashMap<(PlaceKind, PlaceKind), Arc<CopyHandler>>>,
}

impl CopyRegistry {
    pub(crate) fn new() -> CopyRegistry {
        CopyRegistry {
            handlers: RwLock::new(HashMap::new()),
        }
    }

    /// Registers (or replaces) the handler for transfers from `src` kinds to
    /// `dst` kinds.
    pub fn register(&self, src: PlaceKind, dst: PlaceKind, handler: Arc<CopyHandler>) {
        self.handlers.write().insert((src, dst), handler);
    }

    fn lookup(&self, src: &PlaceKind, dst: &PlaceKind) -> Option<Arc<CopyHandler>> {
        self.handlers
            .read()
            .get(&(src.clone(), dst.clone()))
            .cloned()
    }
}

/// Installs the built-in host↔host handler (memcpy scheduled at the
/// destination place).
pub(crate) fn register_default_handlers(rt: &Runtime) {
    let handler: Arc<CopyHandler> = Arc::new(|rt, req, done| {
        rt.spawn_at(req.dst_place, move || {
            host_to_host(&req);
            done.put(());
        });
    });
    rt.inner
        .copy_registry
        .register(PlaceKind::SystemMemory, PlaceKind::SystemMemory, handler);
}

fn host_to_host(req: &CopyRequest) {
    match (&req.src, &req.dst) {
        (
            MemLoc::Host {
                buf: src,
                offset: so,
            },
            MemLoc::Host {
                buf: dst,
                offset: do_,
            },
        ) => {
            let mut tmp = vec![0u8; req.nbytes];
            src.read_bytes(*so, &mut tmp);
            dst.write_bytes(*do_, &tmp);
        }
        _ => panic!("default copy handler requires host locations on both sides"),
    }
}

impl Runtime {
    /// `async_copy`: asynchronously transfers `nbytes` from `src` (attached
    /// to `src_place`) to `dst` (attached to `dst_place`). Returns a future
    /// satisfied on completion.
    ///
    /// # Panics
    /// Panics if no handler is registered for the place-kind pair (e.g. a
    /// GPU copy without the CUDA module installed).
    pub fn async_copy(
        &self,
        dst: MemLoc,
        dst_place: PlaceId,
        src: MemLoc,
        src_place: PlaceId,
        nbytes: usize,
    ) -> Future<()> {
        let src_kind = self.config().graph.place(src_place).kind.clone();
        let dst_kind = self.config().graph.place(dst_place).kind.clone();
        let handler = self
            .inner
            .copy_registry
            .lookup(&src_kind, &dst_kind)
            .unwrap_or_else(|| {
                panic!(
                    "no copy handler registered for {} -> {}; is the owning module installed?",
                    src_kind, dst_kind
                )
            });
        let promise = Promise::new();
        let future = promise.future();
        handler(
            self,
            CopyRequest {
                dst,
                dst_place,
                src,
                src_place,
                nbytes,
            },
            promise,
        );
        future
    }

    /// `async_copy_await`: like [`async_copy`](Self::async_copy) but the
    /// transfer additionally waits for `deps` before starting.
    pub fn async_copy_await(
        &self,
        dst: MemLoc,
        dst_place: PlaceId,
        src: MemLoc,
        src_place: PlaceId,
        nbytes: usize,
        deps: &[Future<()>],
    ) -> Future<()> {
        let all = crate::promise::when_all(deps);
        let rt = self.clone();
        let promise = Promise::new();
        let future = promise.future();
        let promise = parking_lot::Mutex::new(Some(promise));
        all.on_ready(move || {
            let inner = rt.async_copy(dst, dst_place, src, src_place, nbytes);
            let promise = promise.lock().take().expect("copy dependency fired twice");
            inner.on_ready(move || promise.put(()));
        });
        future
    }

    /// Access to the copy-handler registry (for module registration).
    pub fn copy_registry(&self) -> &CopyRegistry {
        &self.inner.copy_registry
    }
}
