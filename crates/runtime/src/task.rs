//! Tasks, the task slot slab, and finish scopes.
//!
//! A HiPER task is a single-threaded stream of execution placed at a place in
//! the platform model (paper §II-B1). In this implementation a task is a
//! closure plus its placement and the finish scope it was spawned under;
//! suspension is expressed with continuations and help-first blocking rather
//! than stack swapping (DESIGN.md §2.1).
//!
//! # The task slab (DESIGN.md §2.11)
//!
//! Spawning used to cost one `Box<dyn FnOnce>` per task. Fine-grained task
//! graphs — the regime the paper's generalized-runtime claim is about — hit
//! the global allocator once per spawn and once per drop, from different
//! threads (spawner allocates, executor frees), which is the worst case for
//! most allocators. [`TaskBody`] replaces the box with recycled fixed-size
//! *slots*: a spawn pops a slot from the spawning thread's free list (or
//! allocates one on a miss), writes the closure inline, and the executing
//! worker returns the slot to *its own* free list after the closure runs.
//! In steady state the slots circulate through the pool and the allocator is
//! out of the loop entirely. Closures bigger than [`SLOT_PAYLOAD_BYTES`]
//! (or over-aligned ones) fall back to plain boxing.

use std::cell::{RefCell, UnsafeCell};
use std::marker::PhantomData;
use std::mem::{self, MaybeUninit};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use hiper_platform::PlaceId;

use crate::event::WakeHub;
use crate::promise::TaskError;

/// Inline closure budget of a task slot. 128 bytes covers the runtime's own
/// task bodies (a forasync split closure is an `Arc`, a range, a grain and a
/// latch — well under half this) and small user captures; bigger captures
/// are boxed.
pub(crate) const SLOT_PAYLOAD_BYTES: usize = 128;

const SLOT_WORDS: usize = SLOT_PAYLOAD_BYTES / mem::size_of::<usize>();

/// Free slots a thread keeps for reuse before handing excess back to the
/// allocator. 256 slots ≈ 36 KiB per thread, enough to absorb a deep spawn
/// burst without unbounded growth.
const SLAB_MAX_FREE: usize = 256;

/// A recyclable task slot: erased call/drop entry points plus word-aligned
/// inline storage for the closure.
#[repr(C)]
struct Slot {
    /// Reads the closure out of `payload` and calls it.
    call: unsafe fn(*mut u8),
    /// Drops the closure in place without calling it.
    drop_in_place: unsafe fn(*mut u8),
    payload: [MaybeUninit<usize>; SLOT_WORDS],
}

struct SlabCache {
    free: Vec<NonNull<Slot>>,
}

impl Drop for SlabCache {
    fn drop(&mut self) {
        for p in self.free.drain(..) {
            unsafe { dealloc_slot(p) };
        }
    }
}

thread_local! {
    /// Per-thread slot free list. Workers are the main users; external
    /// threads allocate on spawn and the executing worker recycles, so an
    /// external-heavy workload degrades to today's per-spawn allocation,
    /// never worse.
    static SLAB: RefCell<SlabCache> = const {
        RefCell::new(SlabCache { free: Vec::new() })
    };
}

fn alloc_slot() -> NonNull<Slot> {
    let layout = std::alloc::Layout::new::<Slot>();
    // SAFETY: Slot has nonzero size.
    let p = unsafe { std::alloc::alloc(layout) };
    NonNull::new(p as *mut Slot).unwrap_or_else(|| std::alloc::handle_alloc_error(layout))
}

/// SAFETY: `p` must have come from [`alloc_slot`] and its payload must
/// already be dropped (or moved out).
unsafe fn dealloc_slot(p: NonNull<Slot>) {
    std::alloc::dealloc(p.as_ptr() as *mut u8, std::alloc::Layout::new::<Slot>());
}

/// Pops a slot from the calling thread's free list, or allocates on a miss.
/// The bool is `true` on a recycle hit.
fn acquire_slot() -> (NonNull<Slot>, bool) {
    // try_with: during thread teardown the cache may already be destroyed;
    // fall back to plain allocation rather than panicking.
    match SLAB.try_with(|c| c.borrow_mut().free.pop()) {
        Ok(Some(p)) => (p, true),
        _ => (alloc_slot(), false),
    }
}

/// Returns a dead slot (payload already dropped or moved out) to the calling
/// thread's free list, deallocating if the list is full or gone.
fn release_slot(p: NonNull<Slot>) {
    let kept = SLAB
        .try_with(|c| {
            let mut c = c.borrow_mut();
            if c.free.len() < SLAB_MAX_FREE {
                c.free.push(p);
                true
            } else {
                false
            }
        })
        .unwrap_or(false);
    if !kept {
        unsafe { dealloc_slot(p) };
    }
}

/// A task closure stored in a recycled slab slot.
pub(crate) struct SlabTask {
    slot: NonNull<Slot>,
    /// The payload is an erased `F: FnOnce() + Send`; this marker keeps the
    /// auto traits honest (`Send` but not `Sync`).
    _marker: PhantomData<Box<dyn FnOnce() + Send>>,
}

// SAFETY: the slot is exclusively owned (moved with the task between
// threads, never aliased) and the payload type is `Send` by construction.
unsafe impl Send for SlabTask {}

/// Recycles the slot once the closure has been read out of it — on normal
/// return *and* on unwind, so a panicking task body still returns its slot.
struct RecycleGuard(NonNull<Slot>);

impl Drop for RecycleGuard {
    fn drop(&mut self) {
        release_slot(self.0);
    }
}

impl SlabTask {
    /// Stores `f` in a slot if it fits; hands it back otherwise. The bool is
    /// `true` when the slot came off the free list (no allocation).
    fn try_new<F: FnOnce() + Send + 'static>(f: F) -> Result<(SlabTask, bool), F> {
        if mem::size_of::<F>() > SLOT_PAYLOAD_BYTES
            || mem::align_of::<F>() > mem::align_of::<usize>()
        {
            return Err(f);
        }
        unsafe fn call_impl<F: FnOnce()>(p: *mut u8) {
            ((p as *mut F).read())()
        }
        unsafe fn drop_impl<F>(p: *mut u8) {
            std::ptr::drop_in_place(p as *mut F)
        }
        let (slot, hit) = acquire_slot();
        unsafe {
            let s = slot.as_ptr();
            (*s).call = call_impl::<F>;
            (*s).drop_in_place = drop_impl::<F>;
            ((*s).payload.as_mut_ptr() as *mut F).write(f);
        }
        Ok((
            SlabTask {
                slot,
                _marker: PhantomData,
            },
            hit,
        ))
    }

    /// Runs the closure and recycles the slot (to the *executing* thread's
    /// free list — that is what makes the slab circulate: workers that burn
    /// through tasks accumulate the slots they will spawn from next).
    fn call(self) {
        let slot = self.slot;
        mem::forget(self); // our Drop would double-drop the payload
        let _recycle = RecycleGuard(slot);
        unsafe {
            // `call` reads the closure onto the callee's stack before running
            // user code, so the slot is dead (and recyclable) from that point
            // even if the closure panics.
            let call = (*slot.as_ptr()).call;
            call((*slot.as_ptr()).payload.as_mut_ptr() as *mut u8);
        }
    }
}

impl Drop for SlabTask {
    /// A task dropped without executing (queue drained at shutdown): release
    /// the closure's captures, then recycle the slot.
    fn drop(&mut self) {
        unsafe {
            let s = self.slot.as_ptr();
            ((*s).drop_in_place)((*s).payload.as_mut_ptr() as *mut u8);
        }
        release_slot(self.slot);
    }
}

/// How a task body was stored; drives the `tasks_inline` / `slab_hits` /
/// `slab_misses` counters on the spawn path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum BodyKind {
    /// Inline in a recycled slot (no allocation).
    SlabHit,
    /// Inline in a freshly allocated slot (first use; it will recycle).
    SlabMiss,
    /// Closure too big or over-aligned for a slot: plain box.
    Boxed,
}

/// The closure a task executes: slab slot fast path, box fallback.
pub(crate) enum TaskBody {
    Slab(SlabTask),
    Boxed(Box<dyn FnOnce() + Send + 'static>),
}

impl TaskBody {
    /// Wraps `f`, preferring a slab slot.
    pub(crate) fn new<F: FnOnce() + Send + 'static>(f: F) -> (TaskBody, BodyKind) {
        match SlabTask::try_new(f) {
            Ok((t, true)) => (TaskBody::Slab(t), BodyKind::SlabHit),
            Ok((t, false)) => (TaskBody::Slab(t), BodyKind::SlabMiss),
            Err(f) => (TaskBody::Boxed(Box::new(f)), BodyKind::Boxed),
        }
    }

    /// Invokes the closure, consuming the body.
    pub(crate) fn call(self) {
        match self {
            TaskBody::Slab(t) => t.call(),
            TaskBody::Boxed(f) => f(),
        }
    }
}

/// A schedulable unit of work.
pub(crate) struct Task {
    /// The body to execute.
    pub body: TaskBody,
    /// Where in the platform model this task is placed.
    pub place: PlaceId,
    /// The innermost finish scope enclosing the spawn, if any. The task has
    /// already been checked in; the executor checks it out on completion.
    pub scope: Option<Arc<FinishScope>>,
    /// Trace identity: nonzero only for tasks spawned while tracing was
    /// enabled (0 = untraced; the executor emits no events for it).
    pub trace_id: u64,
    /// Spawn timestamp (trace-clock ns), nonzero only for tasks spawned
    /// while metrics were enabled; the executor records the spawn→begin
    /// queue latency from it.
    pub spawn_ns: u64,
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task").field("place", &self.place).finish()
    }
}

// Failure-slot states for FinishScope.
const FAIL_NONE: u8 = 0;
const FAIL_WRITING: u8 = 1;
const FAIL_SET: u8 = 2;

/// A `finish` scope: blocks its creator until every task transitively
/// spawned inside it has completed (paper §II-B4).
///
/// The counter starts at 1 (the scope body itself); each spawn inside the
/// scope checks in, each completed task checks out, and the body checks out
/// when it returns. When the counter reaches zero the runtime event is
/// signalled to release the (help-first or parked) waiter. Completion is a
/// one-to-many transition (the waiter may be parked on its private parker or
/// on the external epoch event), so it *broadcasts* through the scheduler's
/// wake hub rather than waking one worker.
pub struct FinishScope {
    pending: AtomicUsize,
    hub: Arc<WakeHub>,
    /// State of the failure slot below: NONE → WRITING (one winner) → SET.
    /// Lock-free so the scope stays mutex-free end to end; see `fail`.
    fail_state: AtomicU8,
    /// First task failure recorded under this scope, if any; `finish`
    /// surfaces it as its `Err` once the scope drains. Written exactly once,
    /// while `fail_state == WRITING`; read only after observing SET.
    failed: UnsafeCell<Option<TaskError>>,
}

// SAFETY: `failed` is only written by the single thread that won the
// NONE→WRITING CAS and only read after an Acquire load observed SET.
unsafe impl Send for FinishScope {}
unsafe impl Sync for FinishScope {}

impl FinishScope {
    /// Creates a scope with the body's own check-in already counted.
    pub(crate) fn new(hub: Arc<WakeHub>) -> Arc<FinishScope> {
        Arc::new(FinishScope {
            pending: AtomicUsize::new(1),
            hub,
            fail_state: AtomicU8::new(FAIL_NONE),
            failed: UnsafeCell::new(None),
        })
    }

    /// Records a task failure; the first error wins (later failures of the
    /// same scope are dropped, matching the old mutex behavior). Must happen
    /// *before* the failing task's `check_out`: the release half of that
    /// `fetch_sub` publishes the SET store to whichever thread observes the
    /// drained counter, so the `finish` waiter cannot see a drained scope
    /// without also seeing the error.
    pub(crate) fn fail(&self, err: TaskError) {
        if self
            .fail_state
            .compare_exchange(
                FAIL_NONE,
                FAIL_WRITING,
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            unsafe { *self.failed.get() = Some(err) };
            self.fail_state.store(FAIL_SET, Ordering::Release);
        }
    }

    /// The first recorded failure, if any. (A failure still being written by
    /// a concurrent `fail` reads as `None`; `finish` only calls this after
    /// the scope drained, which orders it after any `fail`.)
    pub fn error(&self) -> Option<TaskError> {
        if self.fail_state.load(Ordering::Acquire) == FAIL_SET {
            unsafe { (*self.failed.get()).clone() }
        } else {
            None
        }
    }

    /// Registers one more task under this scope.
    pub(crate) fn check_in(&self) {
        let prev = self.pending.fetch_add(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "check_in on a completed finish scope");
    }

    /// Marks one task (or the body) complete.
    pub(crate) fn check_out(&self) {
        let prev = self.pending.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "check_out underflow");
        if prev == 1 {
            self.hub.signal_all();
        }
    }

    /// True once every registered task has completed.
    pub fn is_done(&self) -> bool {
        self.pending.load(Ordering::Acquire) == 0
    }

    /// Number of tasks still pending (including the body if it has not
    /// returned yet). Diagnostic only; racy by nature.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for FinishScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FinishScope")
            .field("pending", &self.pending())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_counts_check_ins_and_outs() {
        let hub = Arc::new(WakeHub::new(0));
        let scope = FinishScope::new(Arc::clone(&hub));
        assert_eq!(scope.pending(), 1);
        assert!(!scope.is_done());
        scope.check_in();
        scope.check_in();
        assert_eq!(scope.pending(), 3);
        scope.check_out();
        scope.check_out();
        assert!(!scope.is_done());
        let before = hub.epoch();
        scope.check_out(); // body done
        assert!(scope.is_done());
        assert_eq!(hub.epoch(), before + 1, "completion must signal");
    }

    #[test]
    fn concurrent_check_in_out_balance() {
        let scope = FinishScope::new(Arc::new(WakeHub::new(0)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let scope = Arc::clone(&scope);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        scope.check_in();
                        scope.check_out();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(scope.pending(), 1);
        scope.check_out();
        assert!(scope.is_done());
    }

    #[test]
    fn concurrent_fails_keep_exactly_one_error() {
        let scope = FinishScope::new(Arc::new(WakeHub::new(0)));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let scope = Arc::clone(&scope);
                std::thread::spawn(move || scope.fail(TaskError::new(format!("t{}", i))))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let err = scope.error().expect("one error must be recorded");
        assert!(err.message.starts_with('t'));
        // First-wins: a later fail never overwrites.
        scope.fail(TaskError::new("late"));
        assert_eq!(scope.error().unwrap().message, err.message);
    }

    #[test]
    fn slab_body_runs_and_recycles() {
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let (body, kind) = TaskBody::new(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_ne!(kind, BodyKind::Boxed, "small closure must use the slab");
        body.call();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        // The slot went back to this thread's free list: a second wrap of a
        // same-size closure is a hit.
        let h = Arc::clone(&hits);
        let (body, kind) = TaskBody::new(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(kind, BodyKind::SlabHit);
        body.call();
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn oversized_body_boxes() {
        let big = [3u8; SLOT_PAYLOAD_BYTES + 1];
        let total = Arc::new(AtomicU64::new(0));
        let t = Arc::clone(&total);
        let (body, kind) = TaskBody::new(move || {
            t.fetch_add(big[0] as u64, Ordering::SeqCst);
        });
        assert_eq!(kind, BodyKind::Boxed);
        body.call();
        assert_eq!(total.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn dropped_unexecuted_body_releases_captures() {
        let payload = Arc::new(());
        let p = Arc::clone(&payload);
        let (body, kind) = TaskBody::new(move || {
            let _keep = &p;
        });
        assert_ne!(kind, BodyKind::Boxed);
        drop(body);
        assert_eq!(Arc::strong_count(&payload), 1, "capture must be dropped");
    }

    #[test]
    fn panicking_slab_body_recycles_and_drops_captures() {
        let payload = Arc::new(());
        let p = Arc::clone(&payload);
        let (body, kind) = TaskBody::new(move || {
            let _keep = &p;
            panic!("task body panic");
        });
        assert_ne!(kind, BodyKind::Boxed);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body.call()));
        assert!(r.is_err());
        assert_eq!(Arc::strong_count(&payload), 1);
        // Slot survived the panic and is reusable.
        let (body, kind) = TaskBody::new(|| {});
        assert_eq!(kind, BodyKind::SlabHit);
        body.call();
    }

    #[test]
    fn slab_roundtrip_cross_thread() {
        // Spawn-side misses (fresh thread, empty cache), executor-side
        // recycles: the executing thread's free list grows instead.
        let bodies: Vec<TaskBody> = std::thread::spawn(|| {
            (0..8)
                .map(|_| {
                    let (b, _k) = TaskBody::new(|| {});
                    b
                })
                .collect()
        })
        .join()
        .unwrap();
        for b in bodies {
            b.call();
        }
        let (_, kind) = TaskBody::new(|| {});
        assert_eq!(kind, BodyKind::SlabHit);
    }
}
