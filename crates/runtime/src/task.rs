//! Tasks and finish scopes.
//!
//! A HiPER task is a single-threaded stream of execution placed at a place in
//! the platform model (paper §II-B1). In this implementation a task is a
//! boxed closure plus its placement and the finish scope it was spawned
//! under; suspension is expressed with continuations and help-first blocking
//! rather than stack swapping (DESIGN.md §2.1).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hiper_platform::PlaceId;
use parking_lot::Mutex;

use crate::event::WakeHub;
use crate::promise::TaskError;

/// The closure a task executes.
pub(crate) type TaskFn = Box<dyn FnOnce() + Send + 'static>;

/// A schedulable unit of work.
pub(crate) struct Task {
    /// The body to execute.
    pub f: TaskFn,
    /// Where in the platform model this task is placed.
    pub place: PlaceId,
    /// The innermost finish scope enclosing the spawn, if any. The task has
    /// already been checked in; the executor checks it out on completion.
    pub scope: Option<Arc<FinishScope>>,
    /// Trace identity: nonzero only for tasks spawned while tracing was
    /// enabled (0 = untraced; the executor emits no events for it).
    pub trace_id: u64,
    /// Spawn timestamp (trace-clock ns), nonzero only for tasks spawned
    /// while metrics were enabled; the executor records the spawn→begin
    /// queue latency from it.
    pub spawn_ns: u64,
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task").field("place", &self.place).finish()
    }
}

/// A `finish` scope: blocks its creator until every task transitively
/// spawned inside it has completed (paper §II-B4).
///
/// The counter starts at 1 (the scope body itself); each spawn inside the
/// scope checks in, each completed task checks out, and the body checks out
/// when it returns. When the counter reaches zero the runtime event is
/// signalled to release the (help-first or parked) waiter. Completion is a
/// one-to-many transition (the waiter may be parked on its private parker or
/// on the external epoch event), so it *broadcasts* through the scheduler's
/// wake hub rather than waking one worker.
pub struct FinishScope {
    pending: AtomicUsize,
    hub: Arc<WakeHub>,
    /// First task failure recorded under this scope, if any; `finish`
    /// surfaces it as its `Err` once the scope drains.
    failed: Mutex<Option<TaskError>>,
}

impl FinishScope {
    /// Creates a scope with the body's own check-in already counted.
    pub(crate) fn new(hub: Arc<WakeHub>) -> Arc<FinishScope> {
        Arc::new(FinishScope {
            pending: AtomicUsize::new(1),
            hub,
            failed: Mutex::new(None),
        })
    }

    /// Records a task failure; the first error wins. Must happen *before*
    /// the failing task's `check_out` so the `finish` waiter cannot observe
    /// a drained scope without the error.
    pub(crate) fn fail(&self, err: TaskError) {
        let mut slot = self.failed.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
    }

    /// The first recorded failure, if any.
    pub fn error(&self) -> Option<TaskError> {
        self.failed.lock().clone()
    }

    /// Registers one more task under this scope.
    pub(crate) fn check_in(&self) {
        let prev = self.pending.fetch_add(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "check_in on a completed finish scope");
    }

    /// Marks one task (or the body) complete.
    pub(crate) fn check_out(&self) {
        let prev = self.pending.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "check_out underflow");
        if prev == 1 {
            self.hub.signal_all();
        }
    }

    /// True once every registered task has completed.
    pub fn is_done(&self) -> bool {
        self.pending.load(Ordering::Acquire) == 0
    }

    /// Number of tasks still pending (including the body if it has not
    /// returned yet). Diagnostic only; racy by nature.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for FinishScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FinishScope")
            .field("pending", &self.pending())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_counts_check_ins_and_outs() {
        let hub = Arc::new(WakeHub::new(0));
        let scope = FinishScope::new(Arc::clone(&hub));
        assert_eq!(scope.pending(), 1);
        assert!(!scope.is_done());
        scope.check_in();
        scope.check_in();
        assert_eq!(scope.pending(), 3);
        scope.check_out();
        scope.check_out();
        assert!(!scope.is_done());
        let before = hub.epoch();
        scope.check_out(); // body done
        assert!(scope.is_done());
        assert_eq!(hub.epoch(), before + 1, "completion must signal");
    }

    #[test]
    fn concurrent_check_in_out_balance() {
        let scope = FinishScope::new(Arc::new(WakeHub::new(0)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let scope = Arc::clone(&scope);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        scope.check_in();
                        scope.check_out();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(scope.pending(), 1);
        scope.check_out();
        assert!(scope.is_done());
    }
}
