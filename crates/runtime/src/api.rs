//! Paper-style free-function API.
//!
//! Inside a task (or on a worker thread) the owning runtime is implicit;
//! these functions mirror the C++ HiPER surface from §II-B4 so that example
//! code reads like the paper:
//!
//! ```ignore
//! hiper::finish(|| {
//!     hiper::async_(|| { /* body */ });
//!     let fut = hiper::async_future(|| 42);
//!     hiper::async_await(&fut, || { /* runs after fut */ });
//! });
//! ```
//!
//! Every function panics if called from a thread with no current runtime;
//! use the methods on [`Runtime`] explicitly in that situation.

use hiper_platform::PlaceId;

use crate::promise::{Future, TaskError};
use crate::runtime::Runtime;

fn rt() -> Runtime {
    Runtime::current().expect("no current HiPER runtime on this thread")
}

/// `async`: create a task at the place closest to the current thread.
pub fn async_(f: impl FnOnce() + Send + 'static) {
    rt().spawn(f);
}

/// `async_at`: create a task at a specific place.
pub fn async_at(place: PlaceId, f: impl FnOnce() + Send + 'static) {
    rt().spawn_at(place, f);
}

/// `async_future`: create a task returning a future on its result.
pub fn async_future<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> Future<T> {
    rt().spawn_future(f)
}

/// `async_await`: create a task predicated on `dep`.
pub fn async_await<D: Send + 'static>(dep: &Future<D>, f: impl FnOnce() + Send + 'static) {
    rt().spawn_await(dep, f);
}

/// `async_future_await`: predicated on `dep`, returns a completion future.
pub fn async_future_await<D: Send + 'static, T: Send + 'static>(
    dep: &Future<D>,
    f: impl FnOnce() -> T + Send + 'static,
) -> Future<T> {
    rt().spawn_future_await(dep, f)
}

/// `finish`: run `f` and wait for every task transitively created inside it.
///
/// Returns `Err` with the first recorded failure if any task in the scope
/// panicked; the scope still drains fully before the error surfaces.
pub fn finish<R>(f: impl FnOnce() -> R) -> Result<R, TaskError> {
    rt().finish(f)
}

/// `finish_supervised`: a resilient finish scope that re-executes `f`
/// (passed the 1-based attempt number) when the scope fails for a cause
/// `policy` classifies as retryable. See `Runtime::finish_supervised`.
pub fn finish_supervised<R>(
    policy: &crate::supervisor::RetryPolicy,
    f: impl FnMut(u32) -> R,
) -> Result<R, TaskError> {
    rt().finish_supervised(policy, f)
}

/// Blocking `forasync` over `0..n`.
pub fn forasync_1d(n: usize, grain: usize, f: impl Fn(usize) + Send + Sync + 'static) {
    rt().forasync_1d(n, grain, f)
}

/// `forasync_future` over `0..n`.
pub fn forasync_future_1d(
    n: usize,
    grain: usize,
    f: impl Fn(usize) + Send + Sync + 'static,
) -> Future<()> {
    let rt = rt();
    let here = rt.here();
    rt.forasync_future_1d(here, n, grain, f)
}
