//! Inline type-erased `FnOnce` storage.
//!
//! [`SmallFn`] is the allocation-lean replacement for `Box<dyn FnOnce()>`
//! on the runtime's synchronization paths: closures whose captures fit in
//! [`SMALL_FN_BYTES`] (and need no over-aligned storage) are stored *inside*
//! the `SmallFn` value itself — no heap allocation — while oversized
//! captures fall back to a plain box. The promise continuation slot and the
//! external-waiter wakeup path are the main users; the task slab in
//! `task.rs` uses the same erasure technique but with recycled heap slots
//! (tasks must stay small while queued in the deques, continuations do not).

use std::marker::PhantomData;
use std::mem::{self, MaybeUninit};

/// Inline capture budget. 48 bytes covers the runtime's own continuations
/// (an `Arc` or two plus a couple of words) with room for small user
/// captures; anything larger is boxed.
pub(crate) const SMALL_FN_BYTES: usize = 48;

const WORDS: usize = SMALL_FN_BYTES / mem::size_of::<usize>();

/// Word-aligned inline storage. `usize` alignment is all we promise;
/// closures with stricter alignment are boxed.
type Data = [MaybeUninit<usize>; WORDS];

enum Repr {
    Inline {
        data: Data,
        /// Reads the closure out of `data` and calls it.
        call: unsafe fn(*mut u8),
        /// Drops the closure in place without calling it.
        drop_in_place: unsafe fn(*mut u8),
    },
    Boxed(Box<dyn FnOnce() + Send>),
}

/// A `Send` `FnOnce()` that avoids heap allocation for small captures.
pub(crate) struct SmallFn {
    repr: Repr,
    /// The payload is an erased `F: FnOnce() + Send` — `Send` but not
    /// necessarily `Sync`; this marker keeps the auto traits honest.
    _marker: PhantomData<Box<dyn FnOnce() + Send>>,
}

impl SmallFn {
    /// Wraps `f`, storing it inline when it fits. The second return value
    /// is `true` when the capture was inlined (no allocation happened).
    pub(crate) fn new<F: FnOnce() + Send + 'static>(f: F) -> (SmallFn, bool) {
        let repr = if mem::size_of::<F>() <= SMALL_FN_BYTES
            && mem::align_of::<F>() <= mem::align_of::<usize>()
        {
            unsafe fn call_impl<F: FnOnce()>(p: *mut u8) {
                ((p as *mut F).read())()
            }
            unsafe fn drop_impl<F>(p: *mut u8) {
                std::ptr::drop_in_place(p as *mut F)
            }
            let mut data: Data = [MaybeUninit::uninit(); WORDS];
            unsafe { (data.as_mut_ptr() as *mut F).write(f) };
            Repr::Inline {
                data,
                call: call_impl::<F>,
                drop_in_place: drop_impl::<F>,
            }
        } else {
            Repr::Boxed(Box::new(f))
        };
        let inlined = matches!(repr, Repr::Inline { .. });
        (
            SmallFn {
                repr,
                _marker: PhantomData,
            },
            inlined,
        )
    }

    /// Invokes the closure, consuming the wrapper.
    pub(crate) fn call(self) {
        // Move the repr out without running our Drop (which would drop the
        // closure a second time).
        let repr = unsafe { std::ptr::read(&self.repr) };
        mem::forget(self);
        match repr {
            Repr::Inline { mut data, call, .. } => {
                // `call` reads the closure onto the callee's stack before
                // running user code, so a panic unwinds cleanly: the stack
                // copy is dropped by unwinding and `data` holds nothing.
                unsafe { call(data.as_mut_ptr() as *mut u8) }
            }
            Repr::Boxed(f) => f(),
        }
    }
}

impl Drop for SmallFn {
    fn drop(&mut self) {
        // Never called: release the capture. The Boxed variant drops
        // naturally through the enum; inline storage needs the erased drop.
        if let Repr::Inline {
            data,
            drop_in_place,
            ..
        } = &mut self.repr
        {
            unsafe { drop_in_place(data.as_mut_ptr() as *mut u8) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn small_capture_is_inlined_and_runs() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let (f, inlined) = SmallFn::new(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert!(inlined);
        f.call();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn oversized_capture_falls_back_to_box() {
        let big = [7u8; SMALL_FN_BYTES + 1];
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let (f, inlined) = SmallFn::new(move || {
            h.fetch_add(big[0] as usize, Ordering::SeqCst);
        });
        assert!(!inlined);
        f.call();
        assert_eq!(hits.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn dropping_uncalled_releases_capture() {
        let payload = Arc::new(());
        let p = Arc::clone(&payload);
        let (f, inlined) = SmallFn::new(move || {
            let _keep = &p;
        });
        assert!(inlined);
        drop(f);
        assert_eq!(Arc::strong_count(&payload), 1, "capture must be dropped");

        let p2 = Arc::clone(&payload);
        let big = [0u8; SMALL_FN_BYTES + 1];
        let (f, inlined) = SmallFn::new(move || {
            let _keep = (&p2, &big);
        });
        assert!(!inlined);
        drop(f);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn panic_in_inline_closure_unwinds_cleanly() {
        let payload = Arc::new(());
        let p = Arc::clone(&payload);
        let (f, inlined) = SmallFn::new(move || {
            let _keep = &p;
            panic!("boom");
        });
        assert!(inlined);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f.call()));
        assert!(err.is_err());
        assert_eq!(
            Arc::strong_count(&payload),
            1,
            "unwinding must drop the capture exactly once"
        );
    }
}
