//! Supervised execution: failure signals, the recovery state machine, and
//! retry policies for resilient finish scopes.
//!
//! The paper's pluggable-module design gives the unified runtime a global
//! view of communication *and* computation; this module adds the control
//! plane that exploits it when a rank dies. Failure signals flow in from
//! three sources — reliable-transport dead-peer reports, watchdog probe
//! verdicts, and the netsim `RankDown` event — and a [`Supervisor`] drives
//! each affected rank through a small state machine:
//!
//! ```text
//!            report(Down)        begin_recovery()
//!  Healthy ───────────────▶ Detected ───────────▶ Quiescing
//!     ▲                                                │ advance(Restoring)
//!     │ mark_resumed()                                 ▼
//!  Resumed ◀── advance(Replaying) ◀──────────── Restoring
//!                                                      │ no checkpoint /
//!                                                      │ circuit open
//!                                                      ▼
//!                                                   Failed (terminal)
//! ```
//!
//! The transition driver itself (quiesce in-flight sends, restore the
//! checkpoint image, bump the reliable-transport epoch, replay) lives in
//! the simulated cluster (`hiper-netsim`), which owns the endpoints; this
//! module owns the bookkeeping, the circuit breaker, and the
//! [`RetryPolicy`] used by `Runtime::finish_supervised`.

use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

use parking_lot::Mutex;

use crate::promise::TaskError;

/// A failure observation delivered to the supervisor. Variants mirror the
/// three detection paths plus the all-clear.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureSignal {
    /// A reliable transport declared a peer dead after exhausting
    /// retransmits. `module` is the owning module's name ("shmem", "mpi").
    PeerDead { module: &'static str, rank: u32 },
    /// The simulated network severed a rank (supervised kill).
    RankDown { rank: u32, at_ns: u64 },
    /// A previously-down rank finished recovery.
    RankRestored { rank: u32, at_ns: u64 },
    /// A watchdog probe reported a stall attributable to a rank.
    ProbeStall { probe: String, rank: u32 },
}

impl FailureSignal {
    /// The rank this signal is about.
    pub fn rank(&self) -> u32 {
        match self {
            FailureSignal::PeerDead { rank, .. }
            | FailureSignal::RankDown { rank, .. }
            | FailureSignal::RankRestored { rank, .. }
            | FailureSignal::ProbeStall { rank, .. } => *rank,
        }
    }

    /// True for signals that indicate the rank is (still) unhealthy.
    pub fn is_failure(&self) -> bool {
        !matches!(self, FailureSignal::RankRestored { .. })
    }
}

/// Where a rank currently sits in the recovery lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPhase {
    /// No failure observed (or fully recovered and reported resumed).
    Healthy,
    /// A failure signal arrived; recovery has not started.
    Detected,
    /// In-flight sends toward the dead rank are being fenced off.
    Quiescing,
    /// The checkpoint image is being restored.
    Restoring,
    /// The rank is re-executing work since its last checkpoint.
    Replaying,
    /// Recovery completed; the rank is live under a new epoch.
    Resumed,
    /// Recovery is permanently abandoned (no checkpoint, or the circuit
    /// breaker opened). Terminal: further `begin_recovery` calls fail.
    Failed,
}

/// Why a recovery attempt could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// No checkpoint snapshot exists for the rank (it died before its
    /// first checkpoint). The rank degrades to a terminal unreachable.
    NoCheckpoint,
    /// Every stored snapshot failed validation.
    Corrupt(String),
    /// The per-rank recovery budget is exhausted; the breaker converts
    /// further failures into the ordinary typed error path.
    CircuitOpen,
    /// The checkpoint backend or transport reported an error.
    Backend(String),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::NoCheckpoint => write!(f, "no checkpoint available for rank"),
            RecoveryError::Corrupt(s) => write!(f, "all snapshots corrupt: {}", s),
            RecoveryError::CircuitOpen => write!(f, "recovery circuit breaker open"),
            RecoveryError::Backend(s) => write!(f, "recovery backend error: {}", s),
        }
    }
}

impl std::error::Error for RecoveryError {}

#[derive(Debug, Default)]
struct RankRecord {
    phase: Option<RecoveryPhase>,
    attempts: u32,
}

/// Per-cluster recovery coordinator. One instance supervises all ranks;
/// it is cheap (two mutex-guarded maps) and safe to share via `Arc`.
#[derive(Debug)]
pub struct Supervisor {
    /// Recovery attempts allowed per rank before the breaker opens.
    max_recoveries_per_rank: u32,
    ranks: Mutex<HashMap<u32, RankRecord>>,
    /// Every signal ever reported, in arrival order (flight-record fodder
    /// and test observability).
    log: Mutex<Vec<FailureSignal>>,
}

impl Supervisor {
    /// Creates a supervisor allowing `max_recoveries_per_rank` recovery
    /// attempts per rank (0 means never recover — every kill degrades).
    pub fn new(max_recoveries_per_rank: u32) -> Supervisor {
        Supervisor {
            max_recoveries_per_rank,
            ranks: Mutex::new(HashMap::new()),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Records a failure signal. Failure-indicating signals move a
    /// `Healthy`/`Resumed` rank to `Detected`; `RankRestored` is logged
    /// but does not change phase (that is `mark_resumed`'s job, called by
    /// whoever drove the recovery).
    pub fn report(&self, sig: FailureSignal) {
        let rank = sig.rank();
        if sig.is_failure() {
            let mut ranks = self.ranks.lock();
            let rec = ranks.entry(rank).or_default();
            match rec.phase {
                None | Some(RecoveryPhase::Healthy) | Some(RecoveryPhase::Resumed) => {
                    rec.phase = Some(RecoveryPhase::Detected);
                }
                // Already mid-recovery or terminally failed: keep phase.
                Some(_) => {}
            }
        }
        self.log.lock().push(sig);
    }

    /// Current phase for `rank` (`Healthy` when never reported).
    pub fn phase(&self, rank: u32) -> RecoveryPhase {
        self.ranks
            .lock()
            .get(&rank)
            .and_then(|r| r.phase)
            .unwrap_or(RecoveryPhase::Healthy)
    }

    /// Recovery attempts started for `rank` so far.
    pub fn attempts(&self, rank: u32) -> u32 {
        self.ranks
            .lock()
            .get(&rank)
            .map(|r| r.attempts)
            .unwrap_or(0)
    }

    /// Claims the right to recover `rank`: checks the circuit breaker,
    /// bumps the attempt count, and moves the rank to `Quiescing`.
    ///
    /// Errors leave the rank in `Failed` (terminal), which is exactly the
    /// degradation path: the caller routes the failure into the module's
    /// existing typed error (`ModuleError::Unreachable`) instead of
    /// recovering.
    pub fn begin_recovery(&self, rank: u32) -> Result<(), RecoveryError> {
        let mut ranks = self.ranks.lock();
        let rec = ranks.entry(rank).or_default();
        if rec.phase == Some(RecoveryPhase::Failed) {
            return Err(RecoveryError::CircuitOpen);
        }
        if rec.attempts >= self.max_recoveries_per_rank {
            rec.phase = Some(RecoveryPhase::Failed);
            return Err(RecoveryError::CircuitOpen);
        }
        rec.attempts += 1;
        rec.phase = Some(RecoveryPhase::Quiescing);
        Ok(())
    }

    /// Advances a mid-recovery rank to `phase` (`Restoring` or
    /// `Replaying`). Panics in debug builds on nonsensical transitions so
    /// driver bugs surface in tests; release builds just record the phase.
    pub fn advance(&self, rank: u32, phase: RecoveryPhase) {
        debug_assert!(
            matches!(phase, RecoveryPhase::Restoring | RecoveryPhase::Replaying),
            "advance() only moves through mid-recovery phases, got {:?}",
            phase
        );
        let mut ranks = self.ranks.lock();
        let rec = ranks.entry(rank).or_default();
        debug_assert!(
            matches!(
                rec.phase,
                Some(RecoveryPhase::Quiescing) | Some(RecoveryPhase::Restoring)
            ),
            "advance({:?}) from {:?}",
            phase,
            rec.phase
        );
        rec.phase = Some(phase);
    }

    /// Marks a recovery complete: the rank is live again.
    pub fn mark_resumed(&self, rank: u32) {
        let mut ranks = self.ranks.lock();
        ranks.entry(rank).or_default().phase = Some(RecoveryPhase::Resumed);
    }

    /// Marks a recovery permanently failed (terminal).
    pub fn mark_failed(&self, rank: u32) {
        let mut ranks = self.ranks.lock();
        ranks.entry(rank).or_default().phase = Some(RecoveryPhase::Failed);
    }

    /// All signals reported so far, in order.
    pub fn signals(&self) -> Vec<FailureSignal> {
        self.log.lock().clone()
    }
}

/// Which task failures a supervised scope re-executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryOn {
    /// Only failures classified transient (see [`TaskError::is_transient`]):
    /// unreachable peers, timeouts, rank-down windows. Deterministic bugs
    /// (assertion failures, index panics) surface immediately.
    Transient,
    /// Any scope failure. Useful when the body is known idempotent and the
    /// failure source is external.
    Any,
}

/// Retry policy for `Runtime::finish_supervised` /
/// `api::finish_supervised`: the per-scope retry budget plus backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total executions allowed, including the first (so 1 = no retry).
    pub max_attempts: u32,
    /// Base delay before a retry; attempt `n`'s delay is `backoff * n`
    /// (linear — failures here are rank recoveries measured in modeled
    /// milliseconds, not remote-service rate limits).
    pub backoff: Duration,
    /// Failure classification filter.
    pub retry_on: RetryOn,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(1),
            retry_on: RetryOn::Transient,
        }
    }
}

impl RetryPolicy {
    /// A policy retrying any failure up to `max_attempts` with no backoff.
    pub fn any(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            backoff: Duration::ZERO,
            retry_on: RetryOn::Any,
        }
    }

    /// A policy retrying transient failures up to `max_attempts`.
    pub fn transient(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        }
    }

    /// Builder-style backoff override.
    pub fn with_backoff(mut self, backoff: Duration) -> RetryPolicy {
        self.backoff = backoff;
        self
    }

    /// Whether a failure on execution `attempt` (1-based) warrants another
    /// try under this policy.
    pub fn should_retry(&self, attempt: u32, err: &TaskError) -> bool {
        if attempt >= self.max_attempts {
            return false;
        }
        match self.retry_on {
            RetryOn::Any => true,
            RetryOn::Transient => err.is_transient(),
        }
    }

    /// Delay before retrying after a failed execution `attempt` (1-based).
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        self.backoff.saturating_mul(attempt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_rank_and_classification() {
        let down = FailureSignal::RankDown { rank: 3, at_ns: 10 };
        let up = FailureSignal::RankRestored { rank: 3, at_ns: 20 };
        assert_eq!(down.rank(), 3);
        assert!(down.is_failure());
        assert!(!up.is_failure());
        assert!(FailureSignal::PeerDead {
            module: "shmem",
            rank: 1
        }
        .is_failure());
    }

    #[test]
    fn state_machine_happy_path() {
        let sup = Supervisor::new(2);
        assert_eq!(sup.phase(0), RecoveryPhase::Healthy);
        sup.report(FailureSignal::RankDown { rank: 0, at_ns: 5 });
        assert_eq!(sup.phase(0), RecoveryPhase::Detected);
        sup.begin_recovery(0).unwrap();
        assert_eq!(sup.phase(0), RecoveryPhase::Quiescing);
        sup.advance(0, RecoveryPhase::Restoring);
        sup.advance(0, RecoveryPhase::Replaying);
        assert_eq!(sup.phase(0), RecoveryPhase::Replaying);
        sup.mark_resumed(0);
        assert_eq!(sup.phase(0), RecoveryPhase::Resumed);
        assert_eq!(sup.attempts(0), 1);
        assert_eq!(sup.signals().len(), 1);
    }

    #[test]
    fn repeated_failure_keeps_phase_until_resume() {
        let sup = Supervisor::new(5);
        sup.report(FailureSignal::RankDown { rank: 1, at_ns: 1 });
        sup.begin_recovery(1).unwrap();
        // A second signal mid-recovery (e.g. watchdog echo) must not yank
        // the rank back to Detected.
        sup.report(FailureSignal::ProbeStall {
            probe: "netsim.stall".into(),
            rank: 1,
        });
        assert_eq!(sup.phase(1), RecoveryPhase::Quiescing);
    }

    #[test]
    fn circuit_breaker_opens_after_budget() {
        let sup = Supervisor::new(2);
        sup.report(FailureSignal::RankDown { rank: 4, at_ns: 1 });
        assert!(sup.begin_recovery(4).is_ok());
        sup.mark_resumed(4);
        sup.report(FailureSignal::RankDown { rank: 4, at_ns: 2 });
        assert!(sup.begin_recovery(4).is_ok());
        sup.mark_resumed(4);
        sup.report(FailureSignal::RankDown { rank: 4, at_ns: 3 });
        assert_eq!(sup.begin_recovery(4), Err(RecoveryError::CircuitOpen));
        assert_eq!(sup.phase(4), RecoveryPhase::Failed);
        // Terminal: even with budget nominally available, Failed sticks.
        assert_eq!(sup.begin_recovery(4), Err(RecoveryError::CircuitOpen));
        assert_eq!(sup.attempts(4), 2);
    }

    #[test]
    fn zero_budget_always_degrades() {
        let sup = Supervisor::new(0);
        sup.report(FailureSignal::RankDown { rank: 7, at_ns: 1 });
        assert_eq!(sup.begin_recovery(7), Err(RecoveryError::CircuitOpen));
        assert_eq!(sup.phase(7), RecoveryPhase::Failed);
    }

    #[test]
    fn retry_policy_classification() {
        let p = RetryPolicy::transient(3);
        let transient = TaskError::new("module shmem: peer 1 unreachable");
        let hard = TaskError::new("index out of bounds");
        assert!(p.should_retry(1, &transient));
        assert!(p.should_retry(2, &transient));
        assert!(!p.should_retry(3, &transient)); // budget spent
        assert!(!p.should_retry(1, &hard));
        assert!(RetryPolicy::any(2).should_retry(1, &hard));
        assert_eq!(
            RetryPolicy::default()
                .with_backoff(Duration::from_millis(2))
                .backoff_for(3),
            Duration::from_millis(6)
        );
    }
}
