//! Runtime and module statistics (paper §V).
//!
//! "Like any unified scheduler, the HiPER runtime is aware of all of the work
//! executing on a system. Hooks have been added to the HiPER runtime which
//! enable programmers to gather statistics on time spent in calls to
//! different modules." This module is those hooks: scheduler-level counters
//! (pops, steals, injector hits, parks, executed tasks, wake decisions) plus
//! per-module call counts and cumulative time.
//!
//! Scheduler counters are *sharded*: each worker owns a cache-line-padded
//! block of relaxed atomics, plus one extra block shared by off-pool threads,
//! so the per-task hot path never bounces a counter line between cores.
//! Shards are summed only when a [`SchedStatsSnapshot`] is taken.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::RwLock;

/// Pads (and aligns) a value to 128 bytes so adjacent shards never share a
/// cache line (128 covers the spatial-prefetcher pair on x86 and the 128-byte
/// lines on some arm64 parts).
#[derive(Debug, Default)]
#[repr(align(128))]
struct CachePadded<T>(T);

/// One worker's private counter block. All increments are relaxed: counters
/// are monotonic event counts with no ordering obligations.
#[derive(Debug, Default)]
struct StatShard {
    tasks_executed: AtomicU64,
    pops: AtomicU64,
    steals: AtomicU64,
    batch_steals: AtomicU64,
    injector_hits: AtomicU64,
    parks: AtomicU64,
    helped: AtomicU64,
    wake_signals_sent: AtomicU64,
    wakes_skipped: AtomicU64,
    task_panics: AtomicU64,
    tasks_inline: AtomicU64,
    slab_hits: AtomicU64,
    slab_misses: AtomicU64,
    splits_elided: AtomicU64,
    /// Tasks made visible to other workers (deque push, injector push,
    /// batch-steal banking). The cross-shard sum is the *publish epoch* the
    /// pre-park check compares against; see `Scheduler::maybe_has_work`.
    tasks_published: AtomicU64,
    tasks_retried: AtomicU64,
    ranks_recovered: AtomicU64,
    recoveries_failed: AtomicU64,
}

/// Scheduler-level counters: one padded shard per worker plus one trailing
/// shard (index `workers`) for threads outside the pool.
#[derive(Debug)]
pub struct SchedStats {
    shards: Box<[CachePadded<StatShard>]>,
}

macro_rules! bump {
    ($field:expr) => {
        $field.fetch_add(1, Ordering::Relaxed)
    };
}

impl SchedStats {
    /// Creates counter blocks for `workers` workers (plus the external
    /// shard).
    pub fn new(workers: usize) -> SchedStats {
        SchedStats {
            shards: (0..workers + 1).map(|_| CachePadded::default()).collect(),
        }
    }

    /// The shard index off-pool threads record under.
    pub fn external_shard(&self) -> usize {
        self.shards.len() - 1
    }

    fn shard(&self, shard: usize) -> &StatShard {
        &self.shards[shard.min(self.shards.len() - 1)].0
    }

    pub(crate) fn task_executed(&self, shard: usize) {
        bump!(self.shard(shard).tasks_executed);
    }
    pub(crate) fn pop(&self, shard: usize) {
        bump!(self.shard(shard).pops);
    }
    pub(crate) fn steal(&self, shard: usize) {
        bump!(self.shard(shard).steals);
    }
    pub(crate) fn batch_steal(&self, shard: usize) {
        bump!(self.shard(shard).batch_steals);
    }
    pub(crate) fn injector_hit(&self, shard: usize) {
        bump!(self.shard(shard).injector_hits);
    }
    pub(crate) fn park(&self, shard: usize) {
        bump!(self.shard(shard).parks);
    }
    pub(crate) fn help(&self, shard: usize) {
        bump!(self.shard(shard).helped);
    }
    pub(crate) fn wake_sent(&self, shard: usize) {
        bump!(self.shard(shard).wake_signals_sent);
    }
    pub(crate) fn wake_skipped(&self, shard: usize) {
        bump!(self.shard(shard).wakes_skipped);
    }
    pub(crate) fn task_panic(&self, shard: usize) {
        bump!(self.shard(shard).task_panics);
    }
    pub(crate) fn task_inline(&self, shard: usize, recycled: bool) {
        let s = self.shard(shard);
        bump!(s.tasks_inline);
        if recycled {
            bump!(s.slab_hits);
        } else {
            bump!(s.slab_misses);
        }
    }
    /// Attributes a spawn's body storage: slab (hit or miss) counts as
    /// inline, boxed bodies count nothing here (`tasks_executed` covers
    /// volume; the gap `tasks_executed - tasks_inline` is the boxed share).
    pub(crate) fn task_body(&self, shard: usize, kind: crate::task::BodyKind) {
        match kind {
            crate::task::BodyKind::SlabHit => self.task_inline(shard, true),
            crate::task::BodyKind::SlabMiss => self.task_inline(shard, false),
            crate::task::BodyKind::Boxed => {}
        }
    }
    /// A supervised finish scope re-ran its body after a transient failure.
    pub fn task_retried(&self, shard: usize) {
        bump!(self.shard(shard).tasks_retried);
    }
    /// A killed rank was brought back via checkpoint replay.
    pub fn rank_recovered(&self, shard: usize) {
        bump!(self.shard(shard).ranks_recovered);
    }
    /// A recovery attempt ended in permanent degradation (no usable
    /// checkpoint, or the circuit breaker opened).
    pub fn recovery_failed(&self, shard: usize) {
        bump!(self.shard(shard).recoveries_failed);
    }
    /// Batched: one RMW for a whole `split_run` frame's elisions.
    pub(crate) fn splits_elided_n(&self, shard: usize, n: u64) {
        self.shard(shard)
            .splits_elided
            .fetch_add(n, Ordering::Relaxed);
    }
    /// Records one task publication. Release, not relaxed: a parking worker
    /// whose Acquire epoch read observes this bump must also observe the
    /// queue push sequenced before it (see `Scheduler::maybe_has_work`).
    /// Same `lock xadd` as relaxed on x86.
    pub(crate) fn published(&self, shard: usize) {
        self.shard(shard)
            .tasks_published
            .fetch_add(1, Ordering::Release);
    }

    /// The publish epoch: total tasks ever made visible to other workers.
    /// Monotonic; a change between two reads means *something* was published
    /// in between, and (Acquire pairing with the Release bump) the publishing
    /// push itself is visible to the reader. Cold path only — workers read it
    /// once per failed search, never per task.
    pub(crate) fn publish_epoch(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.tasks_published.load(Ordering::Acquire))
            .sum()
    }

    /// A point-in-time copy of all counters, aggregated across shards.
    pub fn snapshot(&self) -> SchedStatsSnapshot {
        let mut snap = SchedStatsSnapshot::default();
        for shard in self.shards.iter() {
            let s = &shard.0;
            snap.tasks_executed += s.tasks_executed.load(Ordering::Relaxed);
            snap.pops += s.pops.load(Ordering::Relaxed);
            snap.steals += s.steals.load(Ordering::Relaxed);
            snap.batch_steals += s.batch_steals.load(Ordering::Relaxed);
            snap.injector_hits += s.injector_hits.load(Ordering::Relaxed);
            snap.parks += s.parks.load(Ordering::Relaxed);
            snap.helped += s.helped.load(Ordering::Relaxed);
            snap.wake_signals_sent += s.wake_signals_sent.load(Ordering::Relaxed);
            snap.wakes_skipped += s.wakes_skipped.load(Ordering::Relaxed);
            snap.task_panics += s.task_panics.load(Ordering::Relaxed);
            snap.tasks_inline += s.tasks_inline.load(Ordering::Relaxed);
            snap.slab_hits += s.slab_hits.load(Ordering::Relaxed);
            snap.slab_misses += s.slab_misses.load(Ordering::Relaxed);
            snap.splits_elided += s.splits_elided.load(Ordering::Relaxed);
            snap.tasks_retried += s.tasks_retried.load(Ordering::Relaxed);
            snap.ranks_recovered += s.ranks_recovered.load(Ordering::Relaxed);
            snap.recoveries_failed += s.recoveries_failed.load(Ordering::Relaxed);
        }
        // Process-global (promises are not bound to a runtime); monotonic, so
        // `diff` attributes it to a measured region like the sharded counts.
        snap.promise_inline_waiters = crate::promise::inline_waiters_total();
        snap
    }
}

impl Default for SchedStats {
    /// A single-shard instance (external shard only); real schedulers use
    /// [`SchedStats::new`] with their worker count.
    fn default() -> SchedStats {
        SchedStats::new(0)
    }
}

/// Plain-data snapshot of [`SchedStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedStatsSnapshot {
    pub tasks_executed: u64,
    pub pops: u64,
    pub steals: u64,
    /// Steals that also moved extra tasks into the thief's own deque.
    pub batch_steals: u64,
    pub injector_hits: u64,
    pub parks: u64,
    pub helped: u64,
    /// Spawn-side wakeups that unparked a worker.
    pub wake_signals_sent: u64,
    /// Spawn-side wakeups skipped because no worker was parked.
    pub wakes_skipped: u64,
    /// Tasks whose body panicked (the panic poisons the enclosing scope).
    pub task_panics: u64,
    /// Tasks whose closure was stored inline in a slab slot (no box).
    pub tasks_inline: u64,
    /// Inline tasks whose slot came off a free list (no allocation at all).
    pub slab_hits: u64,
    /// Inline tasks that had to allocate a fresh slot (it will recycle).
    pub slab_misses: u64,
    /// forasync splits skipped because every worker was already busy.
    pub splits_elided: u64,
    /// Promise continuations stored in the inline slot (process-global:
    /// promises are not bound to a runtime instance).
    pub promise_inline_waiters: u64,
    /// Supervised-scope bodies re-executed after a transient failure.
    pub tasks_retried: u64,
    /// Killed ranks successfully restored from a checkpoint.
    pub ranks_recovered: u64,
    /// Recovery attempts that ended in permanent degradation.
    pub recoveries_failed: u64,
}

impl SchedStatsSnapshot {
    /// Steals (including injector drains) per executed task. Near 0 means
    /// work stayed local; near 1 means almost every task crossed a deque.
    pub fn steals_per_task(&self) -> f64 {
        if self.tasks_executed == 0 {
            return 0.0;
        }
        (self.steals + self.injector_hits) as f64 / self.tasks_executed as f64
    }

    /// Fraction of spawn-side wake decisions that actually unparked a
    /// worker: `sent / (sent + skipped)`. Low values mean the pool was
    /// already saturated (wakes were unnecessary); this is the targeted-
    /// wakeup efficiency the hot-path overhaul (PR 1) optimizes for.
    pub fn wake_efficiency(&self) -> f64 {
        let total = self.wake_signals_sent + self.wakes_skipped;
        if total == 0 {
            return 0.0;
        }
        self.wake_signals_sent as f64 / total as f64
    }

    /// Counter-wise difference `self - earlier`, saturating at zero.
    /// Snapshots are cumulative since runtime start; the perf gate diffs
    /// a snapshot pair to attribute counts to one measured region.
    pub fn diff(&self, earlier: &SchedStatsSnapshot) -> SchedStatsSnapshot {
        SchedStatsSnapshot {
            tasks_executed: self.tasks_executed.saturating_sub(earlier.tasks_executed),
            pops: self.pops.saturating_sub(earlier.pops),
            steals: self.steals.saturating_sub(earlier.steals),
            batch_steals: self.batch_steals.saturating_sub(earlier.batch_steals),
            injector_hits: self.injector_hits.saturating_sub(earlier.injector_hits),
            parks: self.parks.saturating_sub(earlier.parks),
            helped: self.helped.saturating_sub(earlier.helped),
            wake_signals_sent: self
                .wake_signals_sent
                .saturating_sub(earlier.wake_signals_sent),
            wakes_skipped: self.wakes_skipped.saturating_sub(earlier.wakes_skipped),
            task_panics: self.task_panics.saturating_sub(earlier.task_panics),
            tasks_inline: self.tasks_inline.saturating_sub(earlier.tasks_inline),
            slab_hits: self.slab_hits.saturating_sub(earlier.slab_hits),
            slab_misses: self.slab_misses.saturating_sub(earlier.slab_misses),
            splits_elided: self.splits_elided.saturating_sub(earlier.splits_elided),
            promise_inline_waiters: self
                .promise_inline_waiters
                .saturating_sub(earlier.promise_inline_waiters),
            tasks_retried: self.tasks_retried.saturating_sub(earlier.tasks_retried),
            ranks_recovered: self.ranks_recovered.saturating_sub(earlier.ranks_recovered),
            recoveries_failed: self
                .recoveries_failed
                .saturating_sub(earlier.recoveries_failed),
        }
    }
}

impl fmt::Display for SchedStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tasks={} pops={} steals={} batch_steals={} injector={} parks={} helped={} \
             wakes_sent={} wakes_skipped={} panics={} inline={} slab_hits={} slab_misses={} \
             splits_elided={} promise_inline={} retried={} ranks_recovered={} \
             recoveries_failed={} steals/task={:.3} wake_eff={:.3}",
            self.tasks_executed,
            self.pops,
            self.steals,
            self.batch_steals,
            self.injector_hits,
            self.parks,
            self.helped,
            self.wake_signals_sent,
            self.wakes_skipped,
            self.task_panics,
            self.tasks_inline,
            self.slab_hits,
            self.slab_misses,
            self.splits_elided,
            self.promise_inline_waiters,
            self.tasks_retried,
            self.ranks_recovered,
            self.recoveries_failed,
            self.steals_per_task(),
            self.wake_efficiency()
        )
    }
}

/// Per-module accounting: how many API calls ran and how long they took.
#[derive(Debug, Default)]
struct ModuleCounters {
    calls: AtomicU64,
    nanos: AtomicU64,
}

/// Registry of per-module statistics, keyed by module name.
#[derive(Debug, Default)]
pub struct ModuleStats {
    modules: RwLock<BTreeMap<&'static str, ModuleCounters>>,
}

impl ModuleStats {
    /// Records one call of `dur` against `module`. Module API wrappers call
    /// this around every user-facing entry point.
    pub fn record(&self, module: &'static str, dur: Duration) {
        {
            let map = self.modules.read();
            if let Some(c) = map.get(module) {
                c.calls.fetch_add(1, Ordering::Relaxed);
                c.nanos.fetch_add(dur.as_nanos() as u64, Ordering::Relaxed);
                return;
            }
        }
        let mut map = self.modules.write();
        let c = map.entry(module).or_default();
        c.calls.fetch_add(1, Ordering::Relaxed);
        c.nanos.fetch_add(dur.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Snapshot of all modules: (name, calls, total time).
    pub fn snapshot(&self) -> Vec<(String, u64, Duration)> {
        self.modules
            .read()
            .iter()
            .map(|(name, c)| {
                (
                    name.to_string(),
                    c.calls.load(Ordering::Relaxed),
                    Duration::from_nanos(c.nanos.load(Ordering::Relaxed)),
                )
            })
            .collect()
    }
}

/// A guard that records elapsed time against a module when dropped.
/// Usage: `let _t = stats.time("mpi");`
pub struct ModuleTimer<'a> {
    stats: &'a ModuleStats,
    module: &'static str,
    /// Operation name (empty for untagged [`ModuleStats::time`] calls) and
    /// payload byte count; fed to the metrics registry on drop when metrics
    /// are enabled.
    op: &'static str,
    bytes: u64,
    start: std::time::Instant,
    /// Interned (module, op) ids when a ModuleEnter event was emitted; the
    /// Drop emits the matching ModuleExit (even if tracing was disabled in
    /// between, so spans stay balanced per track).
    traced: Option<(u64, u64)>,
}

impl ModuleStats {
    /// Starts a timer attributed to `module`.
    pub fn time(&self, module: &'static str) -> ModuleTimer<'_> {
        self.time_op(module, "", 0)
    }

    /// Starts a timer attributed to `module`, additionally tagging the trace
    /// span with the operation name and a byte count (0 when not meaningful).
    pub fn time_op(&self, module: &'static str, op: &'static str, bytes: u64) -> ModuleTimer<'_> {
        let traced = if hiper_trace::enabled() {
            let m = hiper_trace::intern(module);
            let o = if op.is_empty() {
                0
            } else {
                hiper_trace::intern(op)
            };
            hiper_trace::emit(hiper_trace::EventKind::ModuleEnter, m, o, bytes);
            Some((m, o))
        } else {
            None
        };
        ModuleTimer {
            stats: self,
            module,
            op,
            bytes,
            start: std::time::Instant::now(),
            traced,
        }
    }
}

impl Drop for ModuleTimer<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.stats.record(self.module, elapsed);
        if hiper_metrics::enabled() {
            let om = hiper_metrics::module_op(self.module, self.op);
            om.latency_ns.record(elapsed.as_nanos() as u64);
            if self.bytes != 0 {
                om.bytes.add(self.bytes);
            }
        }
        if let Some((m, o)) = self.traced {
            hiper_trace::emit_always(hiper_trace::EventKind::ModuleExit, m, o, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sched_counters_accumulate_across_shards() {
        let s = SchedStats::new(2);
        s.task_executed(0);
        s.task_executed(1);
        s.pop(0);
        s.steal(1);
        s.batch_steal(1);
        s.injector_hit(0);
        s.park(1);
        s.help(0);
        s.wake_sent(0);
        s.wake_skipped(s.external_shard());
        s.task_panic(0);
        s.task_inline(0, true);
        s.task_inline(1, false);
        s.splits_elided_n(0, 1);
        s.published(0);
        s.published(s.external_shard());
        s.task_retried(0);
        s.rank_recovered(1);
        s.recovery_failed(s.external_shard());
        let snap = s.snapshot();
        assert_eq!(snap.tasks_executed, 2);
        assert_eq!(snap.pops, 1);
        assert_eq!(snap.steals, 1);
        assert_eq!(snap.batch_steals, 1);
        assert_eq!(snap.injector_hits, 1);
        assert_eq!(snap.parks, 1);
        assert_eq!(snap.helped, 1);
        assert_eq!(snap.wake_signals_sent, 1);
        assert_eq!(snap.wakes_skipped, 1);
        assert_eq!(snap.task_panics, 1);
        assert_eq!(snap.tasks_inline, 2);
        assert_eq!(snap.slab_hits, 1);
        assert_eq!(snap.slab_misses, 1);
        assert_eq!(snap.splits_elided, 1);
        assert_eq!(snap.tasks_retried, 1);
        assert_eq!(snap.ranks_recovered, 1);
        assert_eq!(snap.recoveries_failed, 1);
        assert_eq!(s.publish_epoch(), 2);
        let shown = snap.to_string();
        assert!(shown.contains("tasks=2"));
        assert!(shown.contains("batch_steals=1"));
        assert!(shown.contains("wakes_sent=1"));
        assert!(shown.contains("wakes_skipped=1"));
        assert!(shown.contains("panics=1"));
        assert!(shown.contains("inline=2"));
        assert!(shown.contains("slab_hits=1"));
        assert!(shown.contains("splits_elided=1"));
        assert!(shown.contains("retried=1"));
        assert!(shown.contains("ranks_recovered=1"));
        assert!(shown.contains("recoveries_failed=1"));
    }

    #[test]
    fn diff_covers_allocation_counters() {
        let s = SchedStats::new(1);
        let before = s.snapshot();
        s.task_inline(0, true);
        s.splits_elided_n(0, 1);
        let d = s.snapshot().diff(&before);
        assert_eq!(d.tasks_inline, 1);
        assert_eq!(d.slab_hits, 1);
        assert_eq!(d.slab_misses, 0);
        assert_eq!(d.splits_elided, 1);
    }

    #[test]
    fn shards_are_cache_line_separated() {
        assert!(std::mem::align_of::<CachePadded<StatShard>>() >= 128);
        assert_eq!(std::mem::size_of::<CachePadded<StatShard>>() % 128, 0);
    }

    #[test]
    fn module_stats_record_and_snapshot() {
        let m = ModuleStats::default();
        m.record("mpi", Duration::from_micros(5));
        m.record("mpi", Duration::from_micros(7));
        m.record("cuda", Duration::from_micros(1));
        let snap = m.snapshot();
        assert_eq!(snap.len(), 2);
        let mpi = snap.iter().find(|(n, _, _)| n == "mpi").unwrap();
        assert_eq!(mpi.1, 2);
        assert_eq!(mpi.2, Duration::from_micros(12));
    }

    #[test]
    fn timer_guard_records_on_drop() {
        let m = ModuleStats::default();
        {
            let _t = m.time("shmem");
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = m.snapshot();
        let shmem = snap.iter().find(|(n, _, _)| n == "shmem").unwrap();
        assert_eq!(shmem.1, 1);
        assert!(shmem.2 >= Duration::from_millis(1));
    }

    #[test]
    fn concurrent_recording() {
        let m = std::sync::Arc::new(ModuleStats::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record("x", Duration::from_nanos(10));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = m.snapshot();
        assert_eq!(snap[0].1, 4000);
    }
}
