//! Runtime and module statistics (paper §V).
//!
//! "Like any unified scheduler, the HiPER runtime is aware of all of the work
//! executing on a system. Hooks have been added to the HiPER runtime which
//! enable programmers to gather statistics on time spent in calls to
//! different modules." This module is those hooks: scheduler-level counters
//! (pops, steals, injector hits, parks, executed tasks) plus per-module call
//! counts and cumulative time, all cheap relaxed atomics.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::RwLock;

/// Scheduler-level counters. One instance per runtime, shared by workers.
#[derive(Debug, Default)]
pub struct SchedStats {
    /// Tasks executed to completion.
    pub tasks_executed: AtomicU64,
    /// Tasks found on the worker's own pop path.
    pub pops: AtomicU64,
    /// Tasks taken from other workers' deques.
    pub steals: AtomicU64,
    /// Tasks taken from place injectors (off-pool spawns).
    pub injector_hits: AtomicU64,
    /// Times a worker parked for lack of work.
    pub parks: AtomicU64,
    /// Tasks executed inside blocking waits (help-first scheduling).
    pub helped: AtomicU64,
}

macro_rules! bump {
    ($field:expr) => {
        $field.fetch_add(1, Ordering::Relaxed)
    };
}

impl SchedStats {
    pub(crate) fn task_executed(&self) {
        bump!(self.tasks_executed);
    }
    pub(crate) fn pop(&self) {
        bump!(self.pops);
    }
    pub(crate) fn steal(&self) {
        bump!(self.steals);
    }
    pub(crate) fn injector_hit(&self) {
        bump!(self.injector_hits);
    }
    pub(crate) fn park(&self) {
        bump!(self.parks);
    }
    pub(crate) fn help(&self) {
        bump!(self.helped);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> SchedStatsSnapshot {
        SchedStatsSnapshot {
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            pops: self.pops.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            injector_hits: self.injector_hits.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            helped: self.helped.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of [`SchedStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedStatsSnapshot {
    pub tasks_executed: u64,
    pub pops: u64,
    pub steals: u64,
    pub injector_hits: u64,
    pub parks: u64,
    pub helped: u64,
}

impl fmt::Display for SchedStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tasks={} pops={} steals={} injector={} parks={} helped={}",
            self.tasks_executed, self.pops, self.steals, self.injector_hits, self.parks,
            self.helped
        )
    }
}

/// Per-module accounting: how many API calls ran and how long they took.
#[derive(Debug, Default)]
struct ModuleCounters {
    calls: AtomicU64,
    nanos: AtomicU64,
}

/// Registry of per-module statistics, keyed by module name.
#[derive(Debug, Default)]
pub struct ModuleStats {
    modules: RwLock<BTreeMap<&'static str, ModuleCounters>>,
}

impl ModuleStats {
    /// Records one call of `dur` against `module`. Module API wrappers call
    /// this around every user-facing entry point.
    pub fn record(&self, module: &'static str, dur: Duration) {
        {
            let map = self.modules.read();
            if let Some(c) = map.get(module) {
                c.calls.fetch_add(1, Ordering::Relaxed);
                c.nanos.fetch_add(dur.as_nanos() as u64, Ordering::Relaxed);
                return;
            }
        }
        let mut map = self.modules.write();
        let c = map.entry(module).or_default();
        c.calls.fetch_add(1, Ordering::Relaxed);
        c.nanos.fetch_add(dur.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Snapshot of all modules: (name, calls, total time).
    pub fn snapshot(&self) -> Vec<(String, u64, Duration)> {
        self.modules
            .read()
            .iter()
            .map(|(name, c)| {
                (
                    name.to_string(),
                    c.calls.load(Ordering::Relaxed),
                    Duration::from_nanos(c.nanos.load(Ordering::Relaxed)),
                )
            })
            .collect()
    }
}

/// A guard that records elapsed time against a module when dropped.
/// Usage: `let _t = stats.time("mpi");`
pub struct ModuleTimer<'a> {
    stats: &'a ModuleStats,
    module: &'static str,
    start: std::time::Instant,
}

impl ModuleStats {
    /// Starts a timer attributed to `module`.
    pub fn time(&self, module: &'static str) -> ModuleTimer<'_> {
        ModuleTimer {
            stats: self,
            module,
            start: std::time::Instant::now(),
        }
    }
}

impl Drop for ModuleTimer<'_> {
    fn drop(&mut self) {
        self.stats.record(self.module, self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sched_counters_accumulate() {
        let s = SchedStats::default();
        s.task_executed();
        s.task_executed();
        s.pop();
        s.steal();
        s.injector_hit();
        s.park();
        s.help();
        let snap = s.snapshot();
        assert_eq!(snap.tasks_executed, 2);
        assert_eq!(snap.pops, 1);
        assert_eq!(snap.steals, 1);
        assert_eq!(snap.injector_hits, 1);
        assert_eq!(snap.parks, 1);
        assert_eq!(snap.helped, 1);
        assert!(snap.to_string().contains("tasks=2"));
    }

    #[test]
    fn module_stats_record_and_snapshot() {
        let m = ModuleStats::default();
        m.record("mpi", Duration::from_micros(5));
        m.record("mpi", Duration::from_micros(7));
        m.record("cuda", Duration::from_micros(1));
        let snap = m.snapshot();
        assert_eq!(snap.len(), 2);
        let mpi = snap.iter().find(|(n, _, _)| n == "mpi").unwrap();
        assert_eq!(mpi.1, 2);
        assert_eq!(mpi.2, Duration::from_micros(12));
    }

    #[test]
    fn timer_guard_records_on_drop() {
        let m = ModuleStats::default();
        {
            let _t = m.time("shmem");
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = m.snapshot();
        let shmem = snap.iter().find(|(n, _, _)| n == "shmem").unwrap();
        assert_eq!(shmem.1, 1);
        assert!(shmem.2 >= Duration::from_millis(1));
    }

    #[test]
    fn concurrent_recording() {
        let m = std::sync::Arc::new(ModuleStats::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record("x", Duration::from_nanos(10));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = m.snapshot();
        assert_eq!(snap[0].1, 4000);
    }
}
