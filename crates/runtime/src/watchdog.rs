//! Stall watchdog: detects no-global-progress windows and dumps a flight
//! record before warning or aborting (DESIGN.md §2.12).
//!
//! A distributed deadlock in HiPER looks like silence: every worker parked,
//! a promise that never resolves, a reliable-transport peer retransmitting
//! into a dead rank. The watchdog turns that silence into evidence. It
//! keeps one process-global *progress counter* (bumped on every task
//! execution and promise completion), a registry of unresolved promises
//! tagged with their owning trace span and simulated rank, and a set of
//! pluggable *probes* (e.g. the reliable transport reports head-of-line
//! retransmit stalls). A monitor thread wakes a few times per threshold
//! window; when the counter has been frozen past the threshold AND at
//! least one suspicion exists (an unresolved promise older than the
//! threshold, or a firing probe), it writes a flight record — unresolved
//! promises with owning spans, probe reports, per-runtime scheduler state,
//! a metrics dump, and the tail of every trace ring — to a timestamped
//! JSON file, then warns or aborts per configuration.
//!
//! # Cost model
//!
//! Disarmed (the default), every hook is one relaxed load. Armed, the
//! per-task cost is one relaxed `fetch_add`; the per-promise cost is one
//! mutex-guarded map insert/remove — promises are allocation-rate objects,
//! not per-instruction objects, so this stays invisible next to the
//! allocation they already do. The monitor thread sleeps between polls and
//! takes no locks shared with hot paths except those registries.
//!
//! # Configuration
//!
//! `HIPER_WATCHDOG=MODE[:THRESHOLD]` where `MODE` is `warn` or `abort` and
//! `THRESHOLD` is a duration (`500ms`, `2s`, `250000us`; bare numbers are
//! milliseconds; default 1s). `off`/`0`/empty disarms. The flight record
//! goes to `hiper-flightrec-<unix_ms>.json` in the working directory
//! unless `HIPER_WATCHDOG_FILE` pins a path.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant, SystemTime};

use parking_lot::Mutex;

/// What to do once a stall is confirmed and the flight record is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Log the stall loudly and keep running (the record may repeat if the
    /// stall clears and recurs; one record per frozen-counter episode).
    Warn,
    /// Log, then `std::process::exit(86)` — for CI jobs that would
    /// otherwise hang until the job timeout with no diagnostics.
    Abort,
}

/// Parsed watchdog configuration.
#[derive(Debug, Clone)]
pub struct Config {
    pub mode: Mode,
    /// How long the progress counter must stay frozen (with a live
    /// suspicion) before the stall is declared.
    pub threshold: Duration,
    /// Flight-record path override (`HIPER_WATCHDOG_FILE`); `None` writes
    /// `hiper-flightrec-<unix_ms>.json` in the working directory.
    pub record_path: Option<PathBuf>,
}

/// One unresolved promise in the registry.
#[derive(Debug, Clone)]
struct PromiseInfo {
    /// Trace span (task id) that created the promise; 0 = untraced.
    span: u64,
    /// Simulated rank of the creating thread, if inside an SPMD run.
    rank: Option<usize>,
    created: Instant,
}

/// A stall probe: returns `Some(report)` when its subsystem believes
/// forward progress is wedged (e.g. head-of-line retransmit exhaustion).
type ProbeFn = Box<dyn Fn() -> Option<String> + Send + Sync>;

/// An informational section contributor: always included in the flight
/// record (e.g. a runtime's scheduler-state snapshot).
type InfoFn = Box<dyn Fn() -> String + Send + Sync>;

struct Inner {
    config: Option<Config>,
    monitor_running: bool,
    promises: BTreeMap<u64, PromiseInfo>,
    probes: Vec<(u64, String, ProbeFn)>,
    infos: Vec<(u64, String, InfoFn)>,
}

struct State {
    inner: Mutex<Inner>,
}

/// Relaxed-load gate checked by every hook; set only while a config is
/// installed.
static ARMED: AtomicBool = AtomicBool::new(false);
/// Global progress counter: task executions + promise completions.
static PROGRESS: AtomicU64 = AtomicU64::new(0);
/// Id allocator shared by promises, probes, and info sections.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn state() -> &'static State {
    static STATE: OnceLock<State> = OnceLock::new();
    STATE.get_or_init(|| State {
        inner: Mutex::new(Inner {
            config: None,
            monitor_running: false,
            promises: BTreeMap::new(),
            probes: Vec::new(),
            infos: Vec::new(),
        }),
    })
}

/// True when the watchdog is armed. One relaxed load — the gate every
/// hook checks first.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// True when a flight record could be consumed: the watchdog is armed
/// (stall monitoring) or `HIPER_WATCHDOG_FILE` pins an on-demand sink.
/// State contributors (probes, info sections) register under this gate so
/// an on-demand dump — recovery degradation, for example — captures them
/// even when no stall monitor is running.
pub fn recording() -> bool {
    static FILE_SET: OnceLock<bool> = OnceLock::new();
    armed() || *FILE_SET.get_or_init(|| std::env::var_os("HIPER_WATCHDOG_FILE").is_some())
}

/// Records one unit of global progress (a task executed, a promise
/// completed). No-op unless armed.
#[inline]
pub fn note_progress() {
    if armed() {
        PROGRESS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Parses `HIPER_WATCHDOG` and arms the watchdog if it names a mode. Safe
/// to call many times (e.g. once per runtime build); the environment is
/// read once.
pub fn init_from_env() {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        if let Some(config) = config_from_env() {
            arm(config);
        }
    });
}

fn config_from_env() -> Option<Config> {
    let raw = std::env::var("HIPER_WATCHDOG").ok()?;
    let raw = raw.trim();
    if raw.is_empty() || raw == "0" || raw.eq_ignore_ascii_case("off") {
        return None;
    }
    let (mode_s, dur_s) = match raw.split_once(':') {
        Some((m, d)) => (m, Some(d)),
        None => (raw, None),
    };
    let mode = match mode_s.to_ascii_lowercase().as_str() {
        "warn" => Mode::Warn,
        "abort" => Mode::Abort,
        other => {
            eprintln!(
                "[hiper-watchdog] ignoring HIPER_WATCHDOG: unknown mode {:?} \
                 (expected warn[:DUR] or abort[:DUR])",
                other
            );
            return None;
        }
    };
    let threshold = match dur_s {
        None => Duration::from_secs(1),
        Some(d) => match parse_duration(d) {
            Some(t) if !t.is_zero() => t,
            _ => {
                eprintln!(
                    "[hiper-watchdog] ignoring HIPER_WATCHDOG: bad threshold {:?}",
                    d
                );
                return None;
            }
        },
    };
    let record_path = std::env::var("HIPER_WATCHDOG_FILE")
        .ok()
        .filter(|p| !p.is_empty())
        .map(PathBuf::from);
    Some(Config {
        mode,
        threshold,
        record_path,
    })
}

/// Parses `500ms` / `2s` / `250us` / `3m`; a bare number is milliseconds.
fn parse_duration(s: &str) -> Option<Duration> {
    let s = s.trim();
    let split = s
        .find(|c: char| !c.is_ascii_digit() && c != '.')
        .unwrap_or(s.len());
    let (num, unit) = s.split_at(split);
    if num.is_empty() {
        return None;
    }
    let v: f64 = num.parse().ok()?;
    let nanos = match unit {
        "ns" => v,
        "us" | "µs" => v * 1e3,
        "" | "ms" => v * 1e6,
        "s" => v * 1e9,
        "m" => v * 60.0 * 1e9,
        _ => return None,
    };
    Some(Duration::from_nanos(nanos as u64))
}

/// Arms the watchdog with `config`, spawning the monitor thread on first
/// arm. Re-arming replaces the configuration in place.
pub fn arm(config: Config) {
    let mut inner = state().inner.lock();
    inner.config = Some(config);
    ARMED.store(true, Ordering::SeqCst);
    if !inner.monitor_running {
        inner.monitor_running = true;
        std::thread::Builder::new()
            .name("hiper-watchdog".into())
            .spawn(monitor_loop)
            .expect("spawn watchdog monitor");
    }
}

/// Disarms the watchdog. The monitor thread keeps sleeping (it is a
/// daemon) but detects nothing, and the per-hook cost drops back to one
/// relaxed load. Registered promises/probes stay registered.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    state().inner.lock().config = None;
}

// ---------------------------------------------------------------------
// Promise registry
// ---------------------------------------------------------------------

/// Registers an unresolved promise owned by trace span `span` (0 =
/// untraced); the creating thread's ambient rank is captured. Returns a
/// nonzero registry id to pass to [`resolve_promise`], or 0 when the
/// watchdog is disarmed (callers skip the resolve call for id 0).
#[inline]
pub fn register_promise(span: u64) -> u64 {
    if !armed() {
        return 0;
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let info = PromiseInfo {
        span,
        rank: hiper_trace::ambient_rank(),
        created: Instant::now(),
    };
    state().inner.lock().promises.insert(id, info);
    id
}

/// Marks promise `id` resolved (fulfilled, poisoned, or dropped) and
/// counts it as progress. No-op for id 0.
#[inline]
pub fn resolve_promise(id: u64) {
    if id == 0 {
        return;
    }
    state().inner.lock().promises.remove(&id);
    PROGRESS.fetch_add(1, Ordering::Relaxed);
}

/// Number of registered-but-unresolved promises (test/diagnostic surface).
pub fn unresolved_promises() -> usize {
    state().inner.lock().promises.len()
}

// ---------------------------------------------------------------------
// Probes and info sections
// ---------------------------------------------------------------------

/// Deregisters its probe when dropped.
pub struct ProbeHandle {
    id: u64,
}

impl Drop for ProbeHandle {
    fn drop(&mut self) {
        state()
            .inner
            .lock()
            .probes
            .retain(|(id, ..)| *id != self.id);
    }
}

/// Registers a stall probe. The watchdog calls `f` on every suspicion
/// check; `Some(report)` votes that the system is wedged and the report is
/// embedded in the flight record.
pub fn register_probe(
    name: impl Into<String>,
    f: impl Fn() -> Option<String> + Send + Sync + 'static,
) -> ProbeHandle {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    state()
        .inner
        .lock()
        .probes
        .push((id, name.into(), Box::new(f)));
    ProbeHandle { id }
}

/// Deregisters its info section when dropped.
pub struct InfoHandle {
    id: u64,
}

impl Drop for InfoHandle {
    fn drop(&mut self) {
        state().inner.lock().infos.retain(|(id, ..)| *id != self.id);
    }
}

/// Registers an informational section (always included in flight records):
/// `f` renders current state, e.g. a runtime's scheduler counters.
pub fn register_info(
    name: impl Into<String>,
    f: impl Fn() -> String + Send + Sync + 'static,
) -> InfoHandle {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    state()
        .inner
        .lock()
        .infos
        .push((id, name.into(), Box::new(f)));
    InfoHandle { id }
}

// ---------------------------------------------------------------------
// Monitor
// ---------------------------------------------------------------------

/// One confirmed suspicion set, gathered under the registry lock.
struct Suspicion {
    /// (registry id, info) for unresolved promises older than the
    /// threshold, oldest first.
    stale_promises: Vec<(u64, PromiseInfo)>,
    /// (probe name, report) for every probe that fired.
    probe_reports: Vec<(String, String)>,
}

impl Suspicion {
    /// The promise to blame: the oldest stale promise that carries a trace
    /// span, falling back to the oldest overall. Untraced infrastructure
    /// promises (e.g. `block_on`'s completion future, span 0) must not mask
    /// a traced user promise created later.
    fn stuck_promise(&self) -> Option<&(u64, PromiseInfo)> {
        self.stale_promises
            .iter()
            .find(|(_, p)| p.span != 0)
            .or_else(|| self.stale_promises.first())
    }
}

fn monitor_loop() {
    let mut last_progress = PROGRESS.load(Ordering::Relaxed);
    let mut last_change = Instant::now();
    // One flight record per frozen-counter episode: remember the counter
    // value we dumped at and stay quiet until it moves again.
    let mut dumped_at: Option<u64> = None;
    loop {
        let config = match state().inner.lock().config.clone() {
            Some(c) => c,
            None => {
                std::thread::sleep(Duration::from_millis(200));
                continue;
            }
        };
        let poll = (config.threshold / 4).clamp(Duration::from_millis(5), Duration::from_secs(1));
        std::thread::sleep(poll);
        let now = PROGRESS.load(Ordering::Relaxed);
        if now != last_progress {
            last_progress = now;
            last_change = Instant::now();
            dumped_at = None;
            continue;
        }
        let frozen_for = last_change.elapsed();
        if frozen_for < config.threshold || dumped_at == Some(now) {
            continue;
        }
        let suspicion = gather_suspicion(config.threshold);
        if suspicion.stale_promises.is_empty() && suspicion.probe_reports.is_empty() {
            // Quiet but innocent: an idle runtime with nothing pending is
            // not a stall.
            continue;
        }
        dumped_at = Some(now);
        hiper_metrics::gauge("hiper_watchdog_stalls_detected").add(1);
        handle_stall(&config, frozen_for, now, suspicion);
    }
}

/// Writes a flight record *on demand* — no stall required and no arming
/// required — and returns its path. Recovery drivers call this when a rank
/// degrades to a terminal failure so the evidence (probe reports, reliable-
/// transport peer state, trace tails) is captured at the moment of
/// degradation rather than lost when the process exits cleanly.
///
/// The record lands at `HIPER_WATCHDOG_FILE` if set, else
/// `hiper-flightrec-<unix_ms>.json` in the working directory.
pub fn dump_record(reason: &str) -> Option<PathBuf> {
    // Honor `HIPER_WATCHDOG_FILE` even when the watchdog was never armed —
    // recovery drivers dump on demand without arming, and CI pins the
    // artifact path through the environment.
    let config = state()
        .inner
        .lock()
        .config
        .clone()
        .unwrap_or_else(|| Config {
            mode: Mode::Warn,
            threshold: Duration::ZERO,
            record_path: std::env::var("HIPER_WATCHDOG_FILE").ok().map(PathBuf::from),
        });
    // Zero threshold: include every unresolved promise, not just stale ones.
    let suspicion = gather_suspicion(Duration::ZERO);
    let progress = PROGRESS.load(Ordering::Relaxed);
    let record = render_flight_record(&config, reason, Duration::ZERO, progress, &suspicion);
    let path = config.record_path.clone().unwrap_or_else(|| {
        let unix_ms = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        PathBuf::from(format!("hiper-flightrec-{}.json", unix_ms))
    });
    match std::fs::write(&path, &record) {
        Ok(()) => {
            eprintln!(
                "[hiper-watchdog] flight record ({}): {}",
                reason,
                path.display()
            );
            Some(path)
        }
        Err(e) => {
            eprintln!(
                "[hiper-watchdog] failed to write flight record {}: {}",
                path.display(),
                e
            );
            None
        }
    }
}

fn gather_suspicion(threshold: Duration) -> Suspicion {
    let inner = state().inner.lock();
    let mut stale: Vec<(u64, PromiseInfo)> = inner
        .promises
        .iter()
        .filter(|(_, p)| p.created.elapsed() >= threshold)
        .map(|(id, p)| (*id, p.clone()))
        .collect();
    stale.sort_by_key(|(_, p)| std::cmp::Reverse(p.created.elapsed()));
    let probe_reports = inner
        .probes
        .iter()
        .filter_map(|(_, name, f)| f().map(|r| (name.clone(), r)))
        .collect();
    Suspicion {
        stale_promises: stale,
        probe_reports,
    }
}

fn handle_stall(config: &Config, frozen_for: Duration, progress: u64, suspicion: Suspicion) {
    let stuck = suspicion.stuck_promise();
    let stuck_span = stuck.map(|(_, p)| p.span).unwrap_or(0);
    let stuck_rank = stuck.and_then(|(_, p)| p.rank);
    let record = render_flight_record(config, "stall", frozen_for, progress, &suspicion);
    let path = config.record_path.clone().unwrap_or_else(|| {
        let unix_ms = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        PathBuf::from(format!("hiper-flightrec-{}.json", unix_ms))
    });
    let wrote = std::fs::write(&path, &record);
    eprintln!(
        "[hiper-watchdog] STALL: no global progress for {:.1}s \
         ({} unresolved promise(s), {} probe report(s)); stuck span {}{}",
        frozen_for.as_secs_f64(),
        suspicion.stale_promises.len(),
        suspicion.probe_reports.len(),
        stuck_span,
        match stuck_rank {
            Some(r) => format!(" on rank {}", r),
            None => String::new(),
        }
    );
    for (name, report) in &suspicion.probe_reports {
        eprintln!("[hiper-watchdog]   probe {}: {}", name, report);
    }
    match wrote {
        Ok(()) => eprintln!("[hiper-watchdog] flight record: {}", path.display()),
        Err(e) => eprintln!(
            "[hiper-watchdog] failed to write flight record {}: {}",
            path.display(),
            e
        ),
    }
    if config.mode == Mode::Abort {
        eprintln!("[hiper-watchdog] aborting (HIPER_WATCHDOG=abort)");
        std::process::exit(86);
    }
}

// ---------------------------------------------------------------------
// Flight record rendering (hand-rolled JSON; no serde in the tree)
// ---------------------------------------------------------------------

/// Most recent events embedded per trace track; full rings would dwarf the
/// rest of the record.
const TRACE_TAIL: usize = 256;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_flight_record(
    config: &Config,
    reason: &str,
    frozen_for: Duration,
    progress: u64,
    suspicion: &Suspicion,
) -> String {
    let unix_ms = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let stuck = suspicion.stuck_promise();
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("{\n");
    out.push_str(&format!("  \"detected_unix_ms\": {},\n", unix_ms));
    out.push_str(&format!("  \"reason\": \"{}\",\n", json_escape(reason)));
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        match config.mode {
            Mode::Warn => "warn",
            Mode::Abort => "abort",
        }
    ));
    out.push_str(&format!("  \"stall_ms\": {},\n", frozen_for.as_millis()));
    out.push_str(&format!("  \"progress_count\": {},\n", progress));
    out.push_str(&format!(
        "  \"stuck_span\": {},\n",
        stuck.map(|(_, p)| p.span).unwrap_or(0)
    ));
    out.push_str(&format!(
        "  \"stuck_rank\": {},\n",
        match stuck.and_then(|(_, p)| p.rank) {
            Some(r) => r.to_string(),
            None => "null".to_string(),
        }
    ));
    // Unresolved promises, oldest first.
    out.push_str("  \"unresolved_promises\": [");
    for (i, (id, p)) in suspicion.stale_promises.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"id\": {}, \"span\": {}, \"rank\": {}, \"age_ms\": {}}}",
            id,
            p.span,
            match p.rank {
                Some(r) => r.to_string(),
                None => "null".to_string(),
            },
            p.created.elapsed().as_millis()
        ));
    }
    out.push_str("\n  ],\n");
    // Probe reports.
    out.push_str("  \"probes\": [");
    for (i, (name, report)) in suspicion.probe_reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"report\": \"{}\"}}",
            json_escape(name),
            json_escape(report)
        ));
    }
    out.push_str("\n  ],\n");
    // Per-runtime state sections (scheduler counters, worker states).
    out.push_str("  \"runtimes\": [");
    {
        let inner = state().inner.lock();
        for (i, (_, name, f)) in inner.infos.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"state\": \"{}\"}}",
                json_escape(name),
                json_escape(&f())
            ));
        }
    }
    out.push_str("\n  ],\n");
    // Metrics snapshot (OpenMetrics text, embedded verbatim).
    out.push_str(&format!(
        "  \"metrics\": \"{}\",\n",
        json_escape(&hiper_metrics::dump_openmetrics())
    ));
    // Trace-ring tails: non-destructive snapshot so the end-of-run export
    // still sees everything.
    out.push_str("  \"trace\": {\"tracks\": [");
    let snap = hiper_trace::snapshot();
    for (i, track) in snap.tracks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let tail_from = track.events.len().saturating_sub(TRACE_TAIL);
        out.push_str(&format!(
            "\n    {{\"label\": \"{}\", \"rank\": {}, \"events\": {}, \"dropped\": {}, \"tail\": [",
            json_escape(&track.label),
            match track.rank {
                Some(r) => r.to_string(),
                None => "null".to_string(),
            },
            track.events.len(),
            track.dropped
        ));
        for (j, e) in track.events[tail_from..].iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n      {{\"ts_ns\": {}, \"kind\": \"{}\", \"a\": {}, \"b\": {}, \"c\": {}}}",
                e.ts_ns,
                e.kind.name(),
                e.a,
                e.b,
                e.c
            ));
        }
        out.push_str("\n    ]}");
    }
    out.push_str("\n  ]}\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_duration_units() {
        assert_eq!(parse_duration("500ms"), Some(Duration::from_millis(500)));
        assert_eq!(parse_duration("2s"), Some(Duration::from_secs(2)));
        assert_eq!(parse_duration("250us"), Some(Duration::from_micros(250)));
        assert_eq!(parse_duration("3m"), Some(Duration::from_secs(180)));
        assert_eq!(parse_duration("junk"), None);
        assert_eq!(
            parse_duration("10"),
            Some(Duration::from_millis(10)),
            "bare numbers are milliseconds"
        );
    }

    #[test]
    fn promise_registry_disarmed_is_free() {
        // Disarmed: registration returns the 0 sentinel and records nothing.
        disarm();
        assert_eq!(register_promise(42), 0);
        resolve_promise(0); // must be a no-op
    }

    #[test]
    fn json_escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn flight_record_is_valid_shape() {
        let config = Config {
            mode: Mode::Warn,
            threshold: Duration::from_millis(100),
            record_path: None,
        };
        let suspicion = Suspicion {
            stale_promises: vec![(
                7,
                PromiseInfo {
                    span: 42,
                    rank: Some(1),
                    created: Instant::now(),
                },
            )],
            probe_reports: vec![("reliable".into(), "peer 1 stuck \"hol\"".into())],
        };
        let record = render_flight_record(&config, "stall", Duration::from_secs(2), 99, &suspicion);
        assert!(record.contains("\"reason\": \"stall\""));
        assert!(record.contains("\"stuck_span\": 42"));
        assert!(record.contains("\"stuck_rank\": 1"));
        assert!(record.contains("\"span\": 42"));
        assert!(record.contains("peer 1 stuck \\\"hol\\\""));
        assert!(record.contains("\"progress_count\": 99"));
    }

    #[test]
    fn untraced_promise_does_not_mask_traced_one() {
        // An older span-0 infrastructure promise (block_on's completion
        // future) must not win the blame over a traced user promise.
        let suspicion = Suspicion {
            stale_promises: vec![
                (
                    1,
                    PromiseInfo {
                        span: 0,
                        rank: None,
                        created: Instant::now(),
                    },
                ),
                (
                    2,
                    PromiseInfo {
                        span: 9001,
                        rank: Some(0),
                        created: Instant::now(),
                    },
                ),
            ],
            probe_reports: Vec::new(),
        };
        assert_eq!(suspicion.stuck_promise().map(|(id, _)| *id), Some(2));
        let config = Config {
            mode: Mode::Abort,
            threshold: Duration::from_millis(100),
            record_path: None,
        };
        let record = render_flight_record(&config, "stall", Duration::from_secs(1), 5, &suspicion);
        assert!(record.contains("\"stuck_span\": 9001"));
        // Both promises still appear in the full dump.
        assert!(record.contains("\"span\": 0"));
    }
}
