//! The generalized work-stealing scheduler core (paper §II-B).
//!
//! Scheduling state is laid out exactly as the paper describes: every place
//! in the platform model holds `N` task deques (`N` = worker count) plus an
//! injector for off-pool spawns. Deque `i` at a place holds only eligible
//! tasks spawned by worker `i`, so a worker can prefer its own tasks
//! (locality, pop path) or others' tasks (load balance, steal path) purely by
//! which deque end and index it looks at.

use std::sync::atomic::{fence, AtomicBool, Ordering};
use std::sync::Arc;

use hiper_deque::{new_deque, Injector, Steal, Stealer, Worker};
use hiper_platform::{PlaceId, PlatformConfig, WorkerPaths};
use hiper_trace::EventKind;

use crate::event::WakeHub;
use crate::stats::SchedStats;
use crate::task::Task;

/// Maximum tasks drained from a place injector in one lock acquisition.
/// Modest so FIFO spawns keep flowing to other workers too.
const INJECTOR_BATCH: usize = 16;

/// Per-place scheduling state.
pub(crate) struct PlaceState {
    /// Thief handles for the per-worker deques at this place; index `i` is
    /// the deque owned (pushed/popped) by worker `i`.
    pub stealers: Vec<Stealer<Task>>,
    /// FIFO queue for tasks spawned by non-worker threads (network delivery
    /// engine, GPU pollers, application threads) and for explicit yields.
    pub injector: Injector<Task>,
}

/// The scheduler: shared state of one runtime instance's worker pool.
pub(crate) struct Scheduler {
    pub places: Vec<PlaceState>,
    pub workers: usize,
    pub paths: Vec<WorkerPaths>,
    pub homes: Vec<PlaceId>,
    /// Sleep/wake machinery: targeted per-worker wakeups on the spawn path,
    /// broadcast (epoch bump + unpark all) for completion-style transitions.
    pub hub: Arc<WakeHub>,
    /// Set once by shutdown; workers drain and exit.
    pub shutdown: AtomicBool,
    pub stats: SchedStats,
}

impl Scheduler {
    /// Builds scheduler state from a validated platform configuration.
    /// Returns the shared scheduler plus, for each worker, the owner handles
    /// of its deques (indexed by place id). The owner handles move into the
    /// worker threads' TLS.
    pub fn new(config: &PlatformConfig) -> (Arc<Scheduler>, Vec<Vec<Worker<Task>>>) {
        let nplaces = config.graph.len();
        let nworkers = config.workers;
        let mut owned: Vec<Vec<Worker<Task>>> = (0..nworkers).map(|_| Vec::new()).collect();
        let mut places = Vec::with_capacity(nplaces);
        for _ in 0..nplaces {
            let mut stealers = Vec::with_capacity(nworkers);
            for per_worker in owned.iter_mut() {
                let (worker, stealer) = new_deque();
                per_worker.push(worker);
                stealers.push(stealer);
            }
            places.push(PlaceState {
                stealers,
                injector: Injector::new(),
            });
        }
        let paths = WorkerPaths::generate_all(
            &config.graph,
            &config.worker_homes,
            config.pop_policy,
            config.steal_policy,
        );
        let sched = Arc::new(Scheduler {
            places,
            workers: nworkers,
            paths,
            homes: config.worker_homes.clone(),
            hub: Arc::new(WakeHub::new(nworkers)),
            shutdown: AtomicBool::new(false),
            stats: SchedStats::new(nworkers),
        });
        (sched, owned)
    }

    /// Enqueues a task from worker `me` (the calling thread), using the
    /// worker's own deque at the task's place.
    pub fn spawn_from_worker(&self, me: usize, owned: &[Worker<Task>], task: Task) {
        owned[task.place.index()].push(task);
        self.stats.published(me);
        self.wake(me);
    }

    /// Enqueues a task from outside the worker pool (or as an explicit
    /// yield): goes to the place's FIFO injector.
    pub fn spawn_external(&self, task: Task) {
        self.places[task.place.index()].injector.push(task);
        self.stats.published(self.stats.external_shard());
        self.wake(self.stats.external_shard());
    }

    /// Wakes exactly one parked worker, if any; a no-op (fence + one relaxed
    /// load, no mutex, no condvar) when every worker is already running.
    /// `shard` attributes the wake decision in the stats. The no-lost-wakeup
    /// argument lives in the [`WakeHub`] docs: the caller just published the
    /// task, and `wake_one`'s internal SeqCst fence pairs with the parking
    /// worker's idle registration.
    pub fn wake(&self, shard: usize) {
        if self.hub.wake_one() {
            self.stats.wake_sent(shard);
        } else {
            self.stats.wake_skipped(shard);
        }
    }

    /// One full search for work on behalf of worker `me`:
    /// 1. pop path — own deques (LIFO), newest-first for locality;
    /// 2. steal path — place injectors, then other workers' deques (FIFO
    ///    from the thief end), rotating the starting victim to spread
    ///    contention.
    ///
    /// Steals are *batched*: one successful raid takes up to half the
    /// victim's visible tasks (or a bounded injector drain), returns one and
    /// parks the rest in the thief's own home deque, amortizing the steal
    /// protocol over several tasks. A thief that banks extra tasks wakes one
    /// more worker (wake chaining), so a burst of work recruits sleepers at
    /// exponential rate without any broadcast.
    pub fn find_task(&self, me: usize, owned: &[Worker<Task>]) -> Option<Task> {
        // Pop path: only this worker's own tasks (paper §II-B3).
        for &p in &self.paths[me].pop {
            if let Some(task) = owned[p.index()].pop() {
                self.stats.pop(me);
                if hiper_trace::enabled() {
                    hiper_trace::emit(EventKind::Pop, task.trace_id, p.index() as u64, 0);
                }
                return Some(task);
            }
        }
        // Batch destination: the home deque heads every pop path this worker
        // has (all built-in policies start at home), so banked tasks are
        // always reachable by `me` and stealable by everyone who could reach
        // this worker's deques before.
        let home = &owned[self.homes[me].index()];
        // Steal latency clock: started only once the pop path has missed
        // (so it measures the cost of going off-worker) and only while
        // metrics are on.
        let steal_t0 = if hiper_metrics::enabled() {
            hiper_trace::clock::now_ns().max(1)
        } else {
            0
        };
        let record_steal = |t0: u64| {
            if t0 != 0 {
                crate::runtime::met::steal_latency()
                    .record(hiper_trace::clock::now_ns().saturating_sub(t0));
            }
        };
        // Steal path: only tasks created by others.
        for &p in &self.paths[me].steal {
            let place = &self.places[p.index()];
            if let Steal::Success(task) = place.injector.steal_batch_and_pop(home, INJECTOR_BATCH) {
                self.stats.injector_hit(me);
                if hiper_trace::enabled() {
                    hiper_trace::emit(EventKind::InjectorDrain, task.trace_id, p.index() as u64, 0);
                }
                record_steal(steal_t0);
                self.after_batch(me, home);
                return Some(task);
            }
            for k in 1..self.workers {
                let victim = (me + k) % self.workers;
                loop {
                    match place.stealers[victim].steal_batch_and_pop(home) {
                        Steal::Success(task) => {
                            self.stats.steal(me);
                            if hiper_trace::enabled() {
                                hiper_trace::emit(
                                    EventKind::Steal,
                                    task.trace_id,
                                    victim as u64,
                                    p.index() as u64,
                                );
                            }
                            record_steal(steal_t0);
                            self.after_batch(me, home);
                            return Some(task);
                        }
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                }
            }
        }
        None
    }

    /// Bookkeeping after a successful (possibly batched) steal: if extra
    /// tasks were banked in the home deque, count the batch and chain-wake
    /// one more worker to come steal from us.
    fn after_batch(&self, me: usize, home: &Worker<Task>) {
        let banked = home.len();
        if banked > 0 {
            self.stats.batch_steal(me);
            // The banked tasks just became stealable from our deque: that is
            // a publication other workers' pre-park checks must notice.
            self.stats.published(me);
            if hiper_trace::enabled() {
                hiper_trace::emit(EventKind::BatchSteal, banked as u64, 0, 0);
            }
            self.wake(me);
        }
    }

    /// The current publish epoch; capture it *before* a full `find_task`
    /// search to make that search's failure reusable by `maybe_has_work`.
    pub fn publish_epoch(&self) -> u64 {
        self.stats.publish_epoch()
    }

    /// True if any queue this worker can reach may hold work. Used as the
    /// recheck between idle registration and parking.
    ///
    /// `seen` is the publish epoch the caller captured before its last full
    /// (and failed) `find_task` search. Fast path: if the epoch is unchanged,
    /// nothing was published anywhere since before that search proved every
    /// reachable queue empty — queues only shrink otherwise — so the worker
    /// may park on two relaxed-sum reads instead of the O(places × workers)
    /// scan. If the epoch moved, fall back to the exact scan (the publication
    /// may be at an unreachable place, already consumed, or targeted wakes
    /// may already cover it; the scan keeps spurious wakeup-loops bounded).
    ///
    /// Ordering: the caller has just done the SeqCst idle registration; the
    /// fence below orders our epoch read after it, pairing with the
    /// publisher's bump-then-fence-then-check-idle sequence in `wake_one`
    /// (same store-buffering argument as in `event.rs`, with the epoch
    /// standing in for the queues themselves).
    pub fn maybe_has_work(&self, me: usize, owned: &[Worker<Task>], seen: u64) -> bool {
        fence(Ordering::SeqCst);
        if self.stats.publish_epoch() == seen {
            return false;
        }
        self.paths[me]
            .pop
            .iter()
            .any(|p| !owned[p.index()].is_empty())
            || self.paths[me].steal.iter().any(|&p| {
                let place = &self.places[p.index()];
                !place.injector.is_empty()
                    || place
                        .stealers
                        .iter()
                        .enumerate()
                        .any(|(w, s)| w != me && !s.is_empty())
            })
    }

    /// Requests shutdown and wakes everyone.
    pub fn request_shutdown(&self) {
        // Release is enough: the flag guards no other shared data, and the
        // broadcast below (mutex + condvar in signal_all) already forces the
        // store to be visible to every worker it wakes. SeqCst bought
        // nothing here.
        self.shutdown.store(true, Ordering::Release);
        self.hub.signal_all();
    }

    /// True once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        // Acquire pairs with the Release store in request_shutdown. Workers
        // poll this once per failed search, never per task, so even this is
        // off the per-task hot path.
        self.shutdown.load(Ordering::Acquire)
    }
}
