//! The generalized work-stealing scheduler core (paper §II-B).
//!
//! Scheduling state is laid out exactly as the paper describes: every place
//! in the platform model holds `N` task deques (`N` = worker count) plus an
//! injector for off-pool spawns. Deque `i` at a place holds only eligible
//! tasks spawned by worker `i`, so a worker can prefer its own tasks
//! (locality, pop path) or others' tasks (load balance, steal path) purely by
//! which deque end and index it looks at.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use hiper_deque::{new_deque, Injector, Steal, Stealer, Worker};
use hiper_platform::{PlaceId, PlatformConfig, WorkerPaths};

use crate::event::Event;
use crate::stats::SchedStats;
use crate::task::Task;

/// Per-place scheduling state.
pub(crate) struct PlaceState {
    /// Thief handles for the per-worker deques at this place; index `i` is
    /// the deque owned (pushed/popped) by worker `i`.
    pub stealers: Vec<Stealer<Task>>,
    /// FIFO queue for tasks spawned by non-worker threads (network delivery
    /// engine, GPU pollers, application threads) and for explicit yields.
    pub injector: Injector<Task>,
}

/// The scheduler: shared state of one runtime instance's worker pool.
pub(crate) struct Scheduler {
    pub places: Vec<PlaceState>,
    pub workers: usize,
    pub paths: Vec<WorkerPaths>,
    pub homes: Vec<PlaceId>,
    /// Global wake-up event: bumped on spawns, promise puts, finish-scope
    /// completions and shutdown.
    pub event: Arc<Event>,
    /// Set once by shutdown; workers drain and exit.
    pub shutdown: AtomicBool,
    /// Number of workers currently parked (used to skip needless signals).
    pub idle: AtomicUsize,
    pub stats: SchedStats,
}

impl Scheduler {
    /// Builds scheduler state from a validated platform configuration.
    /// Returns the shared scheduler plus, for each worker, the owner handles
    /// of its deques (indexed by place id). The owner handles move into the
    /// worker threads' TLS.
    pub fn new(config: &PlatformConfig) -> (Arc<Scheduler>, Vec<Vec<Worker<Task>>>) {
        let nplaces = config.graph.len();
        let nworkers = config.workers;
        let mut owned: Vec<Vec<Worker<Task>>> = (0..nworkers).map(|_| Vec::new()).collect();
        let mut places = Vec::with_capacity(nplaces);
        for _ in 0..nplaces {
            let mut stealers = Vec::with_capacity(nworkers);
            for w in 0..nworkers {
                let (worker, stealer) = new_deque();
                owned[w].push(worker);
                stealers.push(stealer);
            }
            places.push(PlaceState {
                stealers,
                injector: Injector::new(),
            });
        }
        let paths = WorkerPaths::generate_all(
            &config.graph,
            &config.worker_homes,
            config.pop_policy,
            config.steal_policy,
        );
        let sched = Arc::new(Scheduler {
            places,
            workers: nworkers,
            paths,
            homes: config.worker_homes.clone(),
            event: Arc::new(Event::new()),
            shutdown: AtomicBool::new(false),
            idle: AtomicUsize::new(0),
            stats: SchedStats::default(),
        });
        (sched, owned)
    }

    /// Enqueues a task from worker `w` (the calling thread), using the
    /// worker's own deque at the task's place.
    pub fn spawn_from_worker(&self, owned: &[Worker<Task>], task: Task) {
        owned[task.place.index()].push(task);
        self.wake();
    }

    /// Enqueues a task from outside the worker pool (or as an explicit
    /// yield): goes to the place's FIFO injector.
    pub fn spawn_external(&self, task: Task) {
        self.places[task.place.index()].injector.push(task);
        self.wake();
    }

    /// Wakes parked workers if any.
    pub fn wake(&self) {
        if self.idle.load(Ordering::SeqCst) > 0 {
            self.event.signal_all();
        }
    }

    /// One full search for work on behalf of worker `me`:
    /// 1. pop path — own deques (LIFO), newest-first for locality;
    /// 2. steal path — place injectors, then other workers' deques (FIFO
    ///    from the thief end), rotating the starting victim to spread
    ///    contention.
    pub fn find_task(&self, me: usize, owned: &[Worker<Task>]) -> Option<Task> {
        // Pop path: only this worker's own tasks (paper §II-B3).
        for &p in &self.paths[me].pop {
            if let Some(task) = owned[p.index()].pop() {
                self.stats.pop();
                return Some(task);
            }
        }
        // Steal path: only tasks created by others.
        for &p in &self.paths[me].steal {
            let place = &self.places[p.index()];
            match place.injector.steal() {
                Steal::Success(task) => {
                    self.stats.injector_hit();
                    return Some(task);
                }
                _ => {}
            }
            for k in 1..self.workers {
                let victim = (me + k) % self.workers;
                loop {
                    match place.stealers[victim].steal() {
                        Steal::Success(task) => {
                            self.stats.steal();
                            return Some(task);
                        }
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                }
            }
        }
        None
    }

    /// True if any queue this worker can reach may hold work. Used as a
    /// quick recheck before parking.
    pub fn maybe_has_work(&self, me: usize, owned: &[Worker<Task>]) -> bool {
        self.paths[me].pop.iter().any(|p| !owned[p.index()].is_empty())
            || self.paths[me].steal.iter().any(|&p| {
                let place = &self.places[p.index()];
                !place.injector.is_empty()
                    || place
                        .stealers
                        .iter()
                        .enumerate()
                        .any(|(w, s)| w != me && !s.is_empty())
            })
    }

    /// Requests shutdown and wakes everyone.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.event.signal_all();
    }

    /// True once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}
