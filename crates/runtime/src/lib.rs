//! The HiPER generalized work-stealing runtime (paper §II-B).
//!
//! HiPER unifies the representation of computation, communication and other
//! work as *tasks* in a task-parallel runtime. This crate is the runtime
//! core: a persistent pool of worker threads, per-place task deques, per-
//! worker pop and steal paths over the platform model, promises/futures for
//! point-to-point synchronization, `finish` scopes for bulk synchronization,
//! `forasync` parallel loops, `async_copy` with pluggable copy handlers, and
//! the module registry that third-party libraries (MPI, OpenSHMEM, UPC++,
//! CUDA, …) plug into.
//!
//! # Quick start
//!
//! ```
//! use hiper_runtime::Runtime;
//!
//! let rt = Runtime::new(hiper_platform::autogen::smp(2));
//! let total = rt.block_on(|| {
//!     let fut = hiper_runtime::api::async_future(|| 21);
//!     hiper_runtime::api::finish(|| {
//!         hiper_runtime::api::async_(|| { /* side work */ });
//!     })
//!     .expect("no task panicked");
//!     fut.get() * 2
//! });
//! assert_eq!(total, 42);
//! rt.shutdown();
//! ```

pub mod api;
pub mod copy;
mod event;
pub mod module;
mod promise;
mod runtime;
mod scheduler;
mod smallfn;
pub mod stats;
pub mod supervisor;
mod task;
pub mod watchdog;

mod forasync;

pub use copy::{CopyHandler, CopyRegistry, CopyRequest, HostBuffer, MemLoc};
pub use event::{Event, WakeHub};
pub use module::{ModuleError, PollFn, Poller, SchedulerModule};
pub use promise::{when_all, Future, Promise, TaskError};
pub use runtime::{Runtime, RuntimeBuilder};
pub use stats::{ModuleStats, SchedStats, SchedStatsSnapshot};
pub use supervisor::{
    FailureSignal, RecoveryError, RecoveryPhase, RetryOn, RetryPolicy, Supervisor,
};
pub use task::FinishScope;
