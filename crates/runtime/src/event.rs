//! Sleep/wake machinery: the epoch [`Event`] for external threads and the
//! [`WakeHub`] that gives each worker its own parker for targeted wakeups.
//!
//! The scheduler used to park every idle worker on one shared condvar and
//! `notify_all` on every spawn — a thundering herd where `k` sleepers wake,
//! fight over one task, and `k-1` go back to sleep. The [`WakeHub`] replaces
//! that on the spawn path: idle workers register in a small set, each with a
//! private token parker, and a spawn pops and unparks exactly *one* of them.
//! When nothing is parked, the spawn path is a fence plus one relaxed load —
//! no mutex, no syscall.
//!
//! Lost wakeups are prevented by a store-buffering (Dekker) protocol:
//!
//! * a spawner publishes the task (release store in the deque/injector),
//!   executes a `SeqCst` fence, and then loads the idle count;
//! * a worker registers idle with a `SeqCst` RMW on the idle count and then
//!   re-checks every queue it can reach before actually parking.
//!
//! In the seq-cst total order either the spawner's load sees the
//! registration (and wakes the worker) or the worker's re-check sees the
//! task (and cancels the park). Both may be true — a spurious wake, which
//! the worker absorbs by re-scanning — but never neither.
//!
//! Completion-style transitions (finish-scope done, promise satisfied,
//! shutdown) still broadcast: they bump the epoch [`Event`] for external
//! waiters *and* unpark every registered worker, because any number of
//! waiters may be blocked on that one state change.

use std::sync::atomic::{fence, AtomicUsize, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// A condvar-backed epoch counter, used by threads *outside* the worker pool
/// (e.g. a thread blocked in `Runtime::block_on`).
#[derive(Debug, Default)]
pub struct Event {
    epoch: Mutex<u64>,
    cond: Condvar,
}

impl Event {
    /// Creates a new event at epoch 0.
    pub fn new() -> Event {
        Event::default()
    }

    /// Current epoch. Record this *before* checking the condition you are
    /// about to sleep on.
    pub fn epoch(&self) -> u64 {
        *self.epoch.lock()
    }

    /// Bumps the epoch and wakes all sleepers.
    pub fn signal_all(&self) {
        let mut e = self.epoch.lock();
        *e += 1;
        self.cond.notify_all();
    }

    /// Sleeps until the epoch differs from `seen` or `timeout` elapses.
    /// Returns `true` if the epoch advanced.
    pub fn wait_while(&self, seen: u64, timeout: Duration) -> bool {
        let mut e = self.epoch.lock();
        if *e != seen {
            return true;
        }
        self.cond.wait_for(&mut e, timeout);
        *e != seen
    }
}

/// One worker's private parking spot: a sticky token plus a condvar.
///
/// The token absorbs unpark/park races — an unpark delivered before the
/// worker reaches `park` is not lost, it just makes the next `park` return
/// immediately.
#[derive(Debug, Default)]
struct Parker {
    token: Mutex<bool>,
    cond: Condvar,
}

impl Parker {
    /// Blocks until unparked or `timeout` elapses. Returns `true` if a token
    /// was consumed (i.e. someone unparked us).
    fn park(&self, timeout: Duration) -> bool {
        let mut token = self.token.lock();
        if !*token {
            self.cond.wait_for(&mut token, timeout);
        }
        std::mem::replace(&mut *token, false)
    }

    /// Deposits a token and wakes the parked worker, if any.
    fn unpark(&self) {
        let mut token = self.token.lock();
        *token = true;
        self.cond.notify_one();
    }

    /// Clears any pending token, returning whether one was present.
    fn take_token(&self) -> bool {
        std::mem::replace(&mut *self.token.lock(), false)
    }
}

/// Per-worker parkers plus the shared idle set and the external-thread
/// epoch [`Event`]. One per scheduler.
#[derive(Debug)]
pub struct WakeHub {
    event: Event,
    parkers: Box<[Parker]>,
    /// Worker ids currently registered as idle. Entries are added by the
    /// owning worker just before it parks and removed either by a waker
    /// (which then unparks exactly that worker) or by the worker itself on
    /// park cancellation / timeout.
    idle: Mutex<Vec<usize>>,
    /// Cached `idle.len()`, written only while `idle` is locked so it can
    /// never drift from the set. Read lock-free on the spawn fast path.
    nidle: AtomicUsize,
}

impl WakeHub {
    /// Creates a hub for `workers` worker threads.
    pub fn new(workers: usize) -> WakeHub {
        WakeHub {
            event: Event::new(),
            parkers: (0..workers).map(|_| Parker::default()).collect(),
            idle: Mutex::new(Vec::with_capacity(workers)),
            nidle: AtomicUsize::new(0),
        }
    }

    /// Current epoch of the external-thread event.
    pub fn epoch(&self) -> u64 {
        self.event.epoch()
    }

    /// Epoch-based sleep for threads outside the worker pool.
    pub fn wait_while(&self, seen: u64, timeout: Duration) -> bool {
        self.event.wait_while(seen, timeout)
    }

    /// Broadcast: bump the epoch (releasing external waiters) and unpark
    /// every registered worker. Used for one-to-many transitions — finish
    /// scope completion, promise satisfaction, shutdown.
    pub fn signal_all(&self) {
        self.event.signal_all();
        let drained = {
            let mut idle = self.idle.lock();
            self.nidle.store(0, Ordering::SeqCst);
            std::mem::take(&mut *idle)
        };
        for w in drained {
            self.parkers[w].unpark();
        }
    }

    /// Number of workers currently registered idle (a hint; see
    /// [`WakeHub::wake_one`] for the fenced fast path).
    pub fn idle_count(&self) -> usize {
        self.nidle.load(Ordering::Relaxed)
    }

    /// Registers worker `me` as idle. The caller MUST re-check for work
    /// after this returns and either park or call
    /// [`WakeHub::cancel_idle`] — never simply walk away.
    pub fn register_idle(&self, me: usize) {
        let mut idle = self.idle.lock();
        debug_assert!(!idle.contains(&me), "double idle registration");
        idle.push(me);
        // SeqCst RMW: full barrier between publishing our registration and
        // the caller's subsequent work re-check loads (the worker half of
        // the Dekker protocol described in the module docs). Done while the
        // lock is held so the count never disagrees with the set.
        self.nidle.fetch_add(1, Ordering::SeqCst);
    }

    /// Undoes [`WakeHub::register_idle`] without parking (the re-check found
    /// work, or the park timed out). If a waker already claimed us, absorb
    /// its token instead: we are awake and about to re-scan, which is
    /// everything that wake asked for.
    pub fn cancel_idle(&self, me: usize) {
        let mut idle = self.idle.lock();
        if let Some(pos) = idle.iter().position(|&w| w == me) {
            idle.swap_remove(pos);
            self.nidle.fetch_sub(1, Ordering::SeqCst);
        } else {
            drop(idle);
            self.parkers[me].take_token();
        }
    }

    /// Parks worker `me` until unparked or `timeout` elapses. The worker
    /// must have called [`WakeHub::register_idle`] first. On return the
    /// worker is deregistered (by its waker, or by this method on timeout).
    /// Returns `true` if the worker was explicitly woken.
    pub fn park(&self, me: usize, timeout: Duration) -> bool {
        let woken = self.parkers[me].park(timeout);
        // Timed out (or raced a late unpark): make sure we are no longer
        // registered, so future wakes target workers that are really asleep.
        self.cancel_idle(me);
        woken
    }

    /// Wakes exactly one registered idle worker, if any. Returns `true` if
    /// a worker was unparked.
    ///
    /// Fast path: when nothing is parked this is a fence plus one relaxed
    /// load — no mutex, no condvar. The `SeqCst` fence pairs with the RMW in
    /// [`WakeHub::register_idle`]: the caller has already published the new
    /// task with a release store, and the fence orders that publication
    /// before our idle-count load in the seq-cst total order, so "count is
    /// zero" implies the registering worker's re-check will see the task.
    pub fn wake_one(&self) -> bool {
        fence(Ordering::SeqCst);
        if self.nidle.load(Ordering::Relaxed) == 0 {
            return false;
        }
        let target = {
            let mut idle = self.idle.lock();
            match idle.pop() {
                Some(w) => {
                    self.nidle.fetch_sub(1, Ordering::SeqCst);
                    w
                }
                None => return false,
            }
        };
        self.parkers[target].unpark();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn signal_advances_epoch() {
        let e = Event::new();
        let start = e.epoch();
        e.signal_all();
        assert_eq!(e.epoch(), start + 1);
    }

    #[test]
    fn wait_returns_immediately_if_stale() {
        let e = Event::new();
        let seen = e.epoch();
        e.signal_all();
        assert!(e.wait_while(seen, Duration::from_secs(10)));
    }

    #[test]
    fn wait_times_out_without_signal() {
        let e = Event::new();
        let seen = e.epoch();
        assert!(!e.wait_while(seen, Duration::from_millis(10)));
    }

    #[test]
    fn cross_thread_wakeup() {
        let e = Arc::new(Event::new());
        let seen = e.epoch();
        let e2 = Arc::clone(&e);
        let waker = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            e2.signal_all();
        });
        assert!(e.wait_while(seen, Duration::from_secs(10)));
        waker.join().unwrap();
    }

    #[test]
    fn wake_one_with_no_sleepers_is_a_noop() {
        let hub = WakeHub::new(4);
        assert!(!hub.wake_one());
        assert_eq!(hub.idle_count(), 0);
    }

    #[test]
    fn token_before_park_is_not_lost() {
        let hub = WakeHub::new(1);
        hub.register_idle(0);
        assert!(hub.wake_one());
        // The unpark landed before the park: the sticky token makes park
        // return immediately.
        assert!(hub.park(0, Duration::from_secs(10)));
        assert_eq!(hub.idle_count(), 0);
    }

    #[test]
    fn cancel_after_being_claimed_absorbs_token() {
        let hub = WakeHub::new(1);
        hub.register_idle(0);
        assert!(hub.wake_one()); // waker claims worker 0
        hub.cancel_idle(0); // worker found work on its re-check
                            // The token was absorbed: a fresh park must time out.
        hub.register_idle(0);
        assert!(!hub.park(0, Duration::from_millis(10)));
    }

    #[test]
    fn wake_one_targets_a_single_worker() {
        let hub = WakeHub::new(3);
        hub.register_idle(0);
        hub.register_idle(1);
        hub.register_idle(2);
        assert_eq!(hub.idle_count(), 3);
        assert!(hub.wake_one());
        assert_eq!(hub.idle_count(), 2, "exactly one worker deregistered");
    }

    #[test]
    fn signal_all_unparks_every_registered_worker() {
        let hub = Arc::new(WakeHub::new(2));
        let workers: Vec<_> = (0..2)
            .map(|id| {
                let hub = Arc::clone(&hub);
                thread::spawn(move || {
                    hub.register_idle(id);
                    hub.park(id, Duration::from_secs(10))
                })
            })
            .collect();
        while hub.idle_count() < 2 {
            thread::yield_now();
        }
        hub.signal_all();
        for w in workers {
            assert!(w.join().unwrap(), "worker not explicitly woken");
        }
        assert_eq!(hub.idle_count(), 0);
    }

    #[test]
    fn cross_thread_targeted_wakeup() {
        let hub = Arc::new(WakeHub::new(1));
        let h2 = Arc::clone(&hub);
        let sleeper = thread::spawn(move || {
            h2.register_idle(0);
            h2.park(0, Duration::from_secs(10))
        });
        while hub.idle_count() == 0 {
            thread::yield_now();
        }
        assert!(hub.wake_one());
        assert!(sleeper.join().unwrap());
    }
}
