//! A monotonically-increasing event counter used for low-cost sleep/wake.
//!
//! Workers that find no eligible work park on the scheduler's event; any
//! state change that could make work available (task spawn, promise
//! satisfaction, finish-scope completion, shutdown) bumps the epoch and wakes
//! sleepers. The epoch-check protocol makes lost wakeups impossible: a waiter
//! records the epoch *before* re-checking its predicate, and `wait_while`
//! returns immediately if the epoch has already moved on.

use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// A condvar-backed epoch counter.
#[derive(Debug, Default)]
pub struct Event {
    epoch: Mutex<u64>,
    cond: Condvar,
}

impl Event {
    /// Creates a new event at epoch 0.
    pub fn new() -> Event {
        Event::default()
    }

    /// Current epoch. Record this *before* checking the condition you are
    /// about to sleep on.
    pub fn epoch(&self) -> u64 {
        *self.epoch.lock()
    }

    /// Bumps the epoch and wakes all sleepers.
    pub fn signal_all(&self) {
        let mut e = self.epoch.lock();
        *e += 1;
        self.cond.notify_all();
    }

    /// Sleeps until the epoch differs from `seen` or `timeout` elapses.
    /// Returns `true` if the epoch advanced.
    pub fn wait_while(&self, seen: u64, timeout: Duration) -> bool {
        let mut e = self.epoch.lock();
        if *e != seen {
            return true;
        }
        self.cond.wait_for(&mut e, timeout);
        *e != seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn signal_advances_epoch() {
        let e = Event::new();
        let start = e.epoch();
        e.signal_all();
        assert_eq!(e.epoch(), start + 1);
    }

    #[test]
    fn wait_returns_immediately_if_stale() {
        let e = Event::new();
        let seen = e.epoch();
        e.signal_all();
        assert!(e.wait_while(seen, Duration::from_secs(10)));
    }

    #[test]
    fn wait_times_out_without_signal() {
        let e = Event::new();
        let seen = e.epoch();
        assert!(!e.wait_while(seen, Duration::from_millis(10)));
    }

    #[test]
    fn cross_thread_wakeup() {
        let e = Arc::new(Event::new());
        let seen = e.epoch();
        let e2 = Arc::clone(&e);
        let waker = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            e2.signal_all();
        });
        assert!(e.wait_while(seen, Duration::from_secs(10)));
        waker.join().unwrap();
    }
}
