//! Promises and futures (paper §II-B4).
//!
//! A promise is a single-assignment, thread-safe container for a value; a
//! future is a read-only handle on it. Together they form a point-to-point
//! synchronization channel from one source task to many sink tasks.
//!
//! Sink tasks may block on the future ([`Future::wait`] / [`Future::get`]) or
//! register continuations ([`Future::on_ready`], used by the runtime's
//! `async_await` family). Blocking on a future from inside a worker thread
//! does **not** block the core: the wait is *help-first* — the worker keeps
//! executing other eligible tasks until the promise is satisfied. This is the
//! Rust substitution for the C++ implementation's Boost.Context call-stack
//! suspension (see DESIGN.md §2.1); the paper-visible property ("blocking
//! operations do not actually block CPU threads") is preserved.

use std::fmt;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// Continuation thunk run when a promise is satisfied. Thunks typically
/// enqueue a task, so they must be cheap and must not block.
type ReadyThunk = Box<dyn FnOnce() + Send>;

/// Why a task (and any promise it was meant to satisfy) failed.
#[derive(Debug, Clone)]
pub struct TaskError {
    /// Human-readable failure reason (usually the panic payload).
    pub message: String,
}

impl TaskError {
    /// Creates an error with the given reason.
    pub fn new(message: impl Into<String>) -> TaskError {
        TaskError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task failed: {}", self.message)
    }
}

impl std::error::Error for TaskError {}

enum State<T> {
    Pending(Vec<ReadyThunk>),
    Ready(T),
    /// The producing task failed; waiters fail fast instead of hanging.
    Poisoned(TaskError),
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cond: Condvar,
}

/// The write end: a single-assignment container (paper's `promise_t`).
pub struct Promise<T> {
    shared: Arc<Shared<T>>,
}

/// The read end: a shareable handle on the eventual value (paper's
/// `future_t`).
pub struct Future<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Future<T> {
    fn clone(&self) -> Self {
        Future {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Default for Promise<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Promise<T> {
    /// Creates an unsatisfied promise.
    pub fn new() -> Promise<T> {
        Promise {
            shared: Arc::new(Shared {
                state: Mutex::new(State::Pending(Vec::new())),
                cond: Condvar::new(),
            }),
        }
    }

    /// Returns a future on this promise's value (the paper's
    /// `p->get_future()`). May be called any number of times.
    pub fn future(&self) -> Future<T> {
        Future {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Satisfies the promise, releasing every waiter and running every
    /// registered continuation (in registration order).
    ///
    /// # Panics
    /// Panics on double-put: a promise is single-assignment.
    pub fn put(self, value: T) {
        let thunks = {
            let mut st = self.shared.state.lock();
            match std::mem::replace(&mut *st, State::Ready(value)) {
                State::Pending(thunks) => thunks,
                State::Ready(_) => panic!("promise satisfied twice"),
                State::Poisoned(e) => panic!("promise satisfied after poisoning: {}", e),
            }
        };
        self.shared.cond.notify_all();
        for thunk in thunks {
            thunk();
        }
    }

    /// Fails the promise: waiters are released and observe the error
    /// ([`Future::poison_error`] / [`Future::result`]) instead of hanging,
    /// and continuations still run (so dependents can fail fast). Dropping
    /// an unsatisfied promise poisons it implicitly.
    pub fn poison(self, err: TaskError) {
        Self::poison_shared(&self.shared, err);
    }

    fn poison_shared(shared: &Shared<T>, err: TaskError) {
        let thunks = {
            let mut st = shared.state.lock();
            match &mut *st {
                State::Pending(thunks) => {
                    let thunks = std::mem::take(thunks);
                    *st = State::Poisoned(err);
                    thunks
                }
                // Already satisfied or poisoned: keep the first outcome.
                _ => return,
            }
        };
        shared.cond.notify_all();
        for thunk in thunks {
            thunk();
        }
    }

    /// True if [`put`](Self::put) has already happened (only possible via
    /// other handles; a `Promise` is consumed by `put`).
    pub fn is_satisfied(&self) -> bool {
        matches!(&*self.shared.state.lock(), State::Ready(_))
    }
}

impl<T> Drop for Promise<T> {
    /// A promise dropped while still pending poisons itself: the producing
    /// task died (panicked, or was discarded at shutdown) and its value
    /// will never arrive — waiters must fail fast, not hang.
    fn drop(&mut self) {
        if matches!(&*self.shared.state.lock(), State::Pending(_)) {
            Self::poison_shared(
                &self.shared,
                TaskError::new("promise dropped without a value"),
            );
        }
    }
}

impl<T: Send + 'static> Future<T> {
    /// True if the value is available.
    pub fn is_ready(&self) -> bool {
        matches!(&*self.shared.state.lock(), State::Ready(_))
    }

    /// True if the producing task failed and the value will never arrive.
    pub fn is_poisoned(&self) -> bool {
        matches!(&*self.shared.state.lock(), State::Poisoned(_))
    }

    /// True once the future reached a terminal state (value or poison).
    pub fn is_complete(&self) -> bool {
        !matches!(&*self.shared.state.lock(), State::Pending(_))
    }

    /// The poisoning error, if the future is poisoned.
    pub fn poison_error(&self) -> Option<TaskError> {
        match &*self.shared.state.lock() {
            State::Poisoned(e) => Some(e.clone()),
            _ => None,
        }
    }

    /// Registers a continuation to run when the future completes — on
    /// satisfaction *or* poisoning, so dependents of a failed producer can
    /// fail fast instead of leaking. If the future is already complete the
    /// thunk runs immediately on the calling thread.
    pub fn on_ready(&self, thunk: impl FnOnce() + Send + 'static) {
        {
            let mut st = self.shared.state.lock();
            if let State::Pending(thunks) = &mut *st {
                thunks.push(Box::new(thunk));
                return;
            }
        }
        thunk();
    }

    /// Blocks the *logical* task until the future completes (value or
    /// poison).
    ///
    /// On a worker thread this is help-first: the worker executes other
    /// eligible tasks while waiting. On an external thread it parks on a
    /// condvar.
    pub fn wait(&self) {
        if self.is_complete() {
            return;
        }
        // Register a waker so the eventual `put` promptly wakes the parked
        // (or helping) waiter instead of relying on the park timeout.
        if let Some(event) = crate::runtime::Runtime::current_sched_event() {
            self.on_ready(move || event.signal_all());
        }
        if crate::runtime::Runtime::try_help_current(&mut || self.is_complete()) {
            return;
        }
        // External thread: park.
        let mut st = self.shared.state.lock();
        while matches!(&*st, State::Pending(_)) {
            self.shared.cond.wait(&mut st);
        }
    }

    /// Runs `f` against the value by reference, waiting first if necessary.
    ///
    /// # Panics
    /// Panics if the future is (or becomes) poisoned; use
    /// [`result`](Self::result) to observe failure as a value.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.wait();
        let st = self.shared.state.lock();
        match &*st {
            State::Ready(v) => f(v),
            State::Poisoned(e) => panic!("future poisoned: {}", e),
            State::Pending(_) => unreachable!("wait() returned while pending"),
        }
    }

    /// Returns the value if already available, without blocking.
    pub fn try_get(&self) -> Option<T>
    where
        T: Clone,
    {
        let st = self.shared.state.lock();
        match &*st {
            State::Ready(v) => Some(v.clone()),
            _ => None,
        }
    }

    /// Waits for completion and returns the value, or the producing task's
    /// error if it was poisoned.
    pub fn result(&self) -> Result<T, TaskError>
    where
        T: Clone,
    {
        self.wait();
        let st = self.shared.state.lock();
        match &*st {
            State::Ready(v) => Ok(v.clone()),
            State::Poisoned(e) => Err(e.clone()),
            State::Pending(_) => unreachable!("wait() returned while pending"),
        }
    }
}

impl<T: Clone + Send + 'static> Future<T> {
    /// Waits for and returns (a clone of) the value — the paper's
    /// `f->get()`.
    pub fn get(&self) -> T {
        self.with(T::clone)
    }
}

impl<T> fmt::Debug for Future<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ready = matches!(&*self.shared.state.lock(), State::Ready(_));
        f.debug_struct("Future").field("ready", &ready).finish()
    }
}

impl<T> fmt::Debug for Promise<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Promise")
            .field("satisfied", &self.is_satisfied())
            .finish()
    }
}

/// Returns a future that completes when all input futures do (order of
/// completion is irrelevant). If any input is poisoned, the output is
/// poisoned with the first-observed error once every input completed.
pub fn when_all<T: Send + 'static>(futures: &[Future<T>]) -> Future<()> {
    let p = Promise::new();
    let f = p.future();
    if futures.is_empty() {
        p.put(());
        return f;
    }
    let remaining = Arc::new(std::sync::atomic::AtomicUsize::new(futures.len()));
    let first_err: Arc<Mutex<Option<TaskError>>> = Arc::new(Mutex::new(None));
    let p = Arc::new(Mutex::new(Some(p)));
    for fut in futures {
        let remaining = Arc::clone(&remaining);
        let first_err = Arc::clone(&first_err);
        let p = Arc::clone(&p);
        let fut2 = fut.clone();
        fut.on_ready(move || {
            if let Some(e) = fut2.poison_error() {
                let mut slot = first_err.lock();
                if slot.is_none() {
                    *slot = Some(e);
                }
            }
            if remaining.fetch_sub(1, std::sync::atomic::Ordering::AcqRel) == 1 {
                if let Some(p) = p.lock().take() {
                    match first_err.lock().take() {
                        Some(e) => p.poison(e),
                        None => p.put(()),
                    }
                }
            }
        });
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn put_then_get() {
        let p = Promise::new();
        let f = p.future();
        p.put(42);
        assert!(f.is_ready());
        assert_eq!(f.get(), 42);
        assert_eq!(f.try_get(), Some(42));
    }

    #[test]
    fn try_get_pending() {
        let p: Promise<u32> = Promise::new();
        let f = p.future();
        assert!(!f.is_ready());
        assert_eq!(f.try_get(), None);
    }

    #[test]
    #[should_panic(expected = "satisfied twice")]
    fn double_put_panics() {
        let p = Promise::new();
        let _f = p.future();
        let p2 = Promise {
            shared: Arc::clone(&p.shared),
        };
        p.put(1);
        p2.put(2);
    }

    #[test]
    fn continuations_run_on_put_in_order() {
        let p = Promise::new();
        let f = p.future();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let log = Arc::clone(&log);
            f.on_ready(move || log.lock().push(i));
        }
        assert!(log.lock().is_empty());
        p.put(());
        assert_eq!(*log.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn continuation_after_put_runs_immediately() {
        let p = Promise::new();
        let f = p.future();
        p.put(7u8);
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        f.on_ready(move || {
            r.store(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn cross_thread_wait() {
        let p = Promise::new();
        let f = p.future();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            p.put("hello".to_string());
        });
        assert_eq!(f.get(), "hello");
        t.join().unwrap();
    }

    #[test]
    fn many_waiters_released() {
        let p = Promise::new();
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let f = p.future();
                thread::spawn(move || f.get())
            })
            .collect();
        thread::sleep(Duration::from_millis(10));
        p.put(99u64);
        for w in waiters {
            assert_eq!(w.join().unwrap(), 99);
        }
    }

    #[test]
    fn when_all_waits_for_every_input() {
        let ps: Vec<Promise<()>> = (0..3).map(|_| Promise::new()).collect();
        let fs: Vec<Future<()>> = ps.iter().map(Promise::future).collect();
        let all = when_all(&fs);
        let mut ps = ps.into_iter();
        all.on_ready(|| {});
        assert!(!all.is_ready());
        ps.next().unwrap().put(());
        assert!(!all.is_ready());
        ps.next().unwrap().put(());
        assert!(!all.is_ready());
        ps.next().unwrap().put(());
        assert!(all.is_ready());
    }

    #[test]
    fn when_all_empty_is_immediately_ready() {
        let all = when_all::<()>(&[]);
        assert!(all.is_ready());
    }

    #[test]
    fn with_gives_reference_access() {
        let p = Promise::new();
        let f = p.future();
        p.put(vec![1, 2, 3]);
        let sum: i32 = f.with(|v| v.iter().sum());
        assert_eq!(sum, 6);
    }

    #[test]
    fn dropped_promise_poisons_future() {
        let p: Promise<u32> = Promise::new();
        let f = p.future();
        drop(p);
        assert!(f.is_poisoned());
        assert!(f.is_complete());
        assert!(!f.is_ready());
        assert!(f.result().is_err());
        assert_eq!(f.try_get(), None);
    }

    #[test]
    fn explicit_poison_releases_waiters_and_runs_continuations() {
        let p: Promise<u32> = Promise::new();
        let f = p.future();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        f.on_ready(move || {
            r.store(1, Ordering::SeqCst);
        });
        let f2 = f.clone();
        let waiter = thread::spawn(move || f2.result());
        thread::sleep(Duration::from_millis(10));
        p.poison(TaskError::new("boom"));
        let err = waiter.join().unwrap().unwrap_err();
        assert!(err.message.contains("boom"));
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "future poisoned")]
    fn get_on_poisoned_future_panics() {
        let p: Promise<u32> = Promise::new();
        let f = p.future();
        p.poison(TaskError::new("dead producer"));
        let _ = f.get();
    }

    #[test]
    fn when_all_propagates_poison() {
        let ok: Promise<()> = Promise::new();
        let bad: Promise<()> = Promise::new();
        let all = when_all(&[ok.future(), bad.future()]);
        bad.poison(TaskError::new("one input failed"));
        assert!(!all.is_complete(), "waits for every input");
        ok.put(());
        assert!(all.is_poisoned());
        assert!(all
            .poison_error()
            .unwrap()
            .message
            .contains("one input failed"));
    }
}
