//! Promises and futures (paper §II-B4).
//!
//! A promise is a single-assignment, thread-safe container for a value; a
//! future is a read-only handle on it. Together they form a point-to-point
//! synchronization channel from one source task to many sink tasks.
//!
//! Sink tasks may block on the future ([`Future::wait`] / [`Future::get`]) or
//! register continuations ([`Future::on_ready`], used by the runtime's
//! `async_await` family). Blocking on a future from inside a worker thread
//! does **not** block the core: the wait is *help-first* — the worker keeps
//! executing other eligible tasks until the promise is satisfied. This is the
//! Rust substitution for the C++ implementation's Boost.Context call-stack
//! suspension (see DESIGN.md §2.1); the paper-visible property ("blocking
//! operations do not actually block CPU threads") is preserved.
//!
//! # Lock-free state machine (DESIGN.md §2.11)
//!
//! The promise used to be a `Mutex<State>` plus a `Condvar`, with a `Vec` of
//! boxed continuations — three allocations and a lock round-trip for the
//! common one-producer/one-consumer case. It is now a single atomic state
//! word:
//!
//! ```text
//! EMPTY ──register──▶ WAITERS ──put/poison──▶ READY / POISONED
//!   │                    ▲ │
//!   └────put/poison──────┘ └─(transient LOCKED while a thread mutates
//!                              the waiter slots or writes the outcome)
//! ```
//!
//! The first continuation lands in an *inline* slot ([`SmallFn`], no
//! allocation when its captures fit); later ones go to an overflow `Vec`.
//! The outcome cell is written exactly once, while the state word is held in
//! the transient `LOCKED` state, and published by the `Release` store of the
//! terminal state; readers load the state with `Acquire` before touching the
//! cell, so the happens-before edge is state-store → state-load. The condvar
//! is touched only on the genuinely-blocking external path (a non-worker
//! thread inside [`Future::wait`]); completers skip even the mutex unless
//! the `parked` counter — checked with the same fence/Dekker protocol the
//! scheduler's `WakeHub` uses — says someone is actually asleep.

use std::cell::UnsafeCell;
use std::fmt;
use std::mem;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::smallfn::SmallFn;

/// Continuations stored in the promise's inline slot since process start
/// (the `promise_inline_waiters` counter surfaced via
/// [`SchedStatsSnapshot`](crate::stats::SchedStatsSnapshot)). Process-global:
/// promises are not bound to a runtime instance.
static INLINE_WAITERS: AtomicU64 = AtomicU64::new(0);

/// Total continuations stored in promise inline slots, process-wide.
pub(crate) fn inline_waiters_total() -> u64 {
    INLINE_WAITERS.load(Ordering::Relaxed)
}

/// Park safety net for external waiters. Completion always notifies (see
/// the Dekker argument on `complete`), so this only fires if that argument
/// is ever violated; it turns a hypothetical hang into latency.
const EXTERNAL_PARK_TIMEOUT: Duration = Duration::from_millis(10);

// State-word values.
/// No value, no waiters.
const EMPTY: usize = 0;
/// Transient: one thread is mutating the waiter slots or the outcome cell.
const LOCKED: usize = 1;
/// At least one continuation registered; no value yet.
const WAITERS: usize = 2;
/// Outcome cell holds `Ok(value)`.
const READY: usize = 3;
/// Outcome cell holds `Err(TaskError)`.
const POISONED: usize = 4;

/// Why a task (and any promise it was meant to satisfy) failed.
#[derive(Debug, Clone)]
pub struct TaskError {
    /// Human-readable failure reason (usually the panic payload).
    pub message: String,
    /// Explicitly marked transient at construction (see
    /// [`TaskError::transient`]); `is_transient` also pattern-matches the
    /// message so propagated wrappers keep the classification.
    transient: bool,
}

impl TaskError {
    /// Creates an error with the given reason.
    pub fn new(message: impl Into<String>) -> TaskError {
        TaskError {
            message: message.into(),
            transient: false,
        }
    }

    /// Creates an error explicitly classified transient — safe to retry
    /// under a `RetryOn::Transient` policy regardless of its message.
    pub fn transient(message: impl Into<String>) -> TaskError {
        TaskError {
            message: message.into(),
            transient: true,
        }
    }

    /// Whether a supervised scope should consider retrying after this
    /// failure: either explicitly flagged, or the message matches a known
    /// transient cause (unreachable peer, timeout, rank-down window).
    /// Poison propagation wraps messages ("dependency poisoned: ...") but
    /// preserves the original text, so the match survives chaining.
    pub fn is_transient(&self) -> bool {
        if self.transient {
            return true;
        }
        let m = self.message.to_ascii_lowercase();
        [
            "unreachable",
            "timed out",
            "timeout",
            "transient",
            "rank down",
            "peer dead",
        ]
        .iter()
        .any(|pat| m.contains(pat))
    }
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task failed: {}", self.message)
    }
}

impl std::error::Error for TaskError {}

struct Shared<T> {
    /// The state word; see the module docs for the transition diagram.
    state: AtomicUsize,
    /// Inline slot for the first continuation: the common single-waiter
    /// case stores its thunk here without touching the allocator.
    inline: UnsafeCell<Option<SmallFn>>,
    /// Second and later continuations. Lazily allocated by `Vec`.
    overflow: UnsafeCell<Vec<SmallFn>>,
    /// The outcome. Written exactly once while `state == LOCKED`; read only
    /// after an `Acquire` load observed `READY` or `POISONED`, and never
    /// mutated after that, so shared `&` reads are race-free.
    outcome: UnsafeCell<Option<Result<T, TaskError>>>,
    /// External threads currently inside the blocking section of `wait`.
    /// Completers check it (after a `SeqCst` fence) to skip the mutex and
    /// condvar entirely when nobody is parked — the overwhelmingly common
    /// case, since workers help instead of parking.
    parked: AtomicUsize,
    park_lock: Mutex<()>,
    park_cond: Condvar,
    /// Watchdog registry id (0 = unregistered, i.e. the watchdog was
    /// disarmed at creation). Set once at construction, resolved on the
    /// terminal transition in [`complete`](Shared::complete).
    wd_id: u64,
}

// Same bounds the old `Mutex<State<T>>` representation had: the cells are
// only touched under the state-word protocol described on each field.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Shared<T> {
    fn new() -> Shared<T> {
        Shared {
            state: AtomicUsize::new(EMPTY),
            inline: UnsafeCell::new(None),
            overflow: UnsafeCell::new(Vec::new()),
            outcome: UnsafeCell::new(None),
            parked: AtomicUsize::new(0),
            park_lock: Mutex::new(()),
            park_cond: Condvar::new(),
            // Registered with the owning span so a stall's flight record
            // can name which task's promise never resolved. The armed check
            // here keeps the disarmed path free of the TLS read.
            wd_id: if crate::watchdog::armed() {
                crate::watchdog::register_promise(hiper_trace::current_task())
            } else {
                0
            },
        }
    }

    /// Acquires the transient `LOCKED` state from `EMPTY` or `WAITERS`
    /// (spinning out any concurrent holder — critical sections are a few
    /// instructions) and returns the state transitioned *from*. Terminal
    /// states are returned as-is without locking.
    fn lock_or_terminal(&self) -> usize {
        let mut cur = self.state.load(Ordering::Acquire);
        loop {
            match cur {
                EMPTY | WAITERS => {
                    match self.state.compare_exchange_weak(
                        cur,
                        LOCKED,
                        Ordering::Acquire,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => return cur,
                        Err(seen) => cur = seen,
                    }
                }
                LOCKED => {
                    std::hint::spin_loop();
                    cur = self.state.load(Ordering::Acquire);
                }
                terminal => return terminal,
            }
        }
    }

    /// True once the state word is terminal (value or poison).
    fn is_terminal(&self) -> bool {
        matches!(self.state.load(Ordering::Acquire), READY | POISONED)
    }

    /// Reads the completed outcome. Must only be called after observing a
    /// terminal state with `Acquire` ordering.
    fn outcome(&self) -> &Result<T, TaskError> {
        debug_assert!(self.is_terminal());
        unsafe { (*self.outcome.get()).as_ref().unwrap() }
    }

    /// Moves the promise to a terminal state, publishing `result` and
    /// returning the drained continuations — or `None` if the promise was
    /// already terminal (the caller decides whether that is a panic).
    fn complete(&self, result: Result<T, TaskError>) -> Option<(Option<SmallFn>, Vec<SmallFn>)> {
        let from = self.lock_or_terminal();
        match from {
            EMPTY | WAITERS => {
                let terminal = if result.is_ok() { READY } else { POISONED };
                // Exclusive access: every other thread spins on LOCKED or
                // has not observed a terminal state yet.
                unsafe { *self.outcome.get() = Some(result) };
                let inline = unsafe { (*self.inline.get()).take() };
                let overflow = unsafe { mem::take(&mut *self.overflow.get()) };
                self.state.store(terminal, Ordering::Release);
                // Wake parked external waiters. Dekker: the waiter does a
                // SeqCst RMW on `parked` and then re-checks the state; we
                // publish the state and then (after a SeqCst fence) load
                // `parked`. Either we see their registration, or their
                // re-check sees the terminal state — never neither. Taking
                // the lock before notifying closes the check-to-sleep gap.
                fence(Ordering::SeqCst);
                if self.parked.load(Ordering::Relaxed) != 0 {
                    let _guard = self.park_lock.lock();
                    self.park_cond.notify_all();
                }
                // The single terminal-transition point: every resolution
                // (put, poison, drop-poison) lands here exactly once.
                crate::watchdog::resolve_promise(self.wd_id);
                Some((inline, overflow))
            }
            _ => None,
        }
    }
}

/// Runs drained continuations in registration order (inline slot first).
fn run_thunks(thunks: (Option<SmallFn>, Vec<SmallFn>)) {
    if let Some(t) = thunks.0 {
        t.call();
    }
    for t in thunks.1 {
        t.call();
    }
}

/// The write end: a single-assignment container (paper's `promise_t`).
pub struct Promise<T> {
    shared: Arc<Shared<T>>,
}

/// The read end: a shareable handle on the eventual value (paper's
/// `future_t`).
pub struct Future<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Future<T> {
    fn clone(&self) -> Self {
        Future {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Default for Promise<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Promise<T> {
    /// Creates an unsatisfied promise. One allocation: the shared `Arc`.
    pub fn new() -> Promise<T> {
        Promise {
            shared: Arc::new(Shared::new()),
        }
    }

    /// Returns a future on this promise's value (the paper's
    /// `p->get_future()`). May be called any number of times.
    pub fn future(&self) -> Future<T> {
        Future {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Satisfies the promise, releasing every waiter and running every
    /// registered continuation (in registration order). Allocation-free:
    /// the no-waiter case is a single CAS, the inline-waiter case adds one
    /// thunk call.
    ///
    /// # Panics
    /// Panics on double-put: a promise is single-assignment.
    pub fn put(self, value: T) {
        match self.shared.complete(Ok(value)) {
            Some(thunks) => run_thunks(thunks),
            None => match self.shared.state.load(Ordering::Acquire) {
                POISONED => panic!(
                    "promise satisfied after poisoning: {}",
                    self.shared.outcome().as_ref().err().unwrap()
                ),
                _ => panic!("promise satisfied twice"),
            },
        }
    }

    /// Fails the promise: waiters are released and observe the error
    /// ([`Future::poison_error`] / [`Future::result`]) instead of hanging,
    /// and continuations still run (so dependents can fail fast). Dropping
    /// an unsatisfied promise poisons it implicitly.
    pub fn poison(self, err: TaskError) {
        Self::poison_shared(&self.shared, err);
    }

    fn poison_shared(shared: &Shared<T>, err: TaskError) {
        // Already satisfied or poisoned: keep the first outcome.
        if let Some(thunks) = shared.complete(Err(err)) {
            run_thunks(thunks);
        }
    }

    /// True if [`put`](Self::put) has already happened (only possible via
    /// other handles; a `Promise` is consumed by `put`).
    pub fn is_satisfied(&self) -> bool {
        self.shared.state.load(Ordering::Acquire) == READY
    }
}

impl<T> Drop for Promise<T> {
    /// A promise dropped while still pending poisons itself: the producing
    /// task died (panicked, or was discarded at shutdown) and its value
    /// will never arrive — waiters must fail fast, not hang.
    fn drop(&mut self) {
        if !self.shared.is_terminal() {
            Self::poison_shared(
                &self.shared,
                TaskError::new("promise dropped without a value"),
            );
        }
    }
}

impl<T: Send + 'static> Future<T> {
    /// True if the value is available.
    pub fn is_ready(&self) -> bool {
        self.shared.state.load(Ordering::Acquire) == READY
    }

    /// True if the producing task failed and the value will never arrive.
    pub fn is_poisoned(&self) -> bool {
        self.shared.state.load(Ordering::Acquire) == POISONED
    }

    /// True once the future reached a terminal state (value or poison).
    pub fn is_complete(&self) -> bool {
        self.shared.is_terminal()
    }

    /// The poisoning error, if the future is poisoned.
    pub fn poison_error(&self) -> Option<TaskError> {
        if self.is_poisoned() {
            self.shared.outcome().as_ref().err().cloned()
        } else {
            None
        }
    }

    /// Registers a continuation to run when the future completes — on
    /// satisfaction *or* poisoning, so dependents of a failed producer can
    /// fail fast instead of leaking. If the future is already complete the
    /// thunk runs immediately on the calling thread.
    ///
    /// The first registration on a pending future lands in the inline slot:
    /// no allocation when the thunk's captures fit in
    /// [`SMALL_FN_BYTES`](crate::smallfn::SMALL_FN_BYTES).
    pub fn on_ready(&self, thunk: impl FnOnce() + Send + 'static) {
        let shared = &self.shared;
        if shared.is_terminal() {
            thunk();
            return;
        }
        let (thunk, _inlined) = SmallFn::new(thunk);
        match shared.lock_or_terminal() {
            EMPTY | WAITERS => {
                let slot = unsafe { &mut *shared.inline.get() };
                if slot.is_none() {
                    *slot = Some(thunk);
                    INLINE_WAITERS.fetch_add(1, Ordering::Relaxed);
                } else {
                    unsafe { (*shared.overflow.get()).push(thunk) };
                }
                shared.state.store(WAITERS, Ordering::Release);
            }
            // Completed while we were building the thunk: run it now.
            _terminal => thunk.call(),
        }
    }

    /// Blocks the *logical* task until the future completes (value or
    /// poison).
    ///
    /// On a worker thread this is help-first: the worker executes other
    /// eligible tasks while waiting. On an external thread it parks on the
    /// promise's condvar — the only path that touches the mutex.
    pub fn wait(&self) {
        if self.is_complete() {
            return;
        }
        // Register a waker so the eventual `put` promptly wakes the parked
        // (or helping) waiter instead of relying on the park timeout.
        if let Some(event) = crate::runtime::Runtime::current_sched_event() {
            self.on_ready(move || event.signal_all());
        }
        if crate::runtime::Runtime::try_help_current(&mut || self.is_complete()) {
            return;
        }
        // External thread: park. The SeqCst RMW on `parked` is our half of
        // the Dekker protocol with `Shared::complete` (see there).
        let shared = &self.shared;
        shared.parked.fetch_add(1, Ordering::SeqCst);
        if !shared.is_terminal() {
            let mut guard = shared.park_lock.lock();
            while !shared.is_terminal() {
                shared.park_cond.wait_for(&mut guard, EXTERNAL_PARK_TIMEOUT);
            }
        }
        shared.parked.fetch_sub(1, Ordering::Relaxed);
    }

    /// Runs `f` against the value by reference, waiting first if necessary.
    ///
    /// # Panics
    /// Panics if the future is (or becomes) poisoned; use
    /// [`result`](Self::result) to observe failure as a value.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.wait();
        match self.shared.outcome() {
            Ok(v) => f(v),
            Err(e) => panic!("future poisoned: {}", e),
        }
    }

    /// Returns the value if already available, without blocking.
    pub fn try_get(&self) -> Option<T>
    where
        T: Clone,
    {
        if self.is_ready() {
            self.shared.outcome().as_ref().ok().cloned()
        } else {
            None
        }
    }

    /// Waits for completion and returns the value, or the producing task's
    /// error if it was poisoned.
    pub fn result(&self) -> Result<T, TaskError>
    where
        T: Clone,
    {
        self.wait();
        self.shared.outcome().clone().map_err(|e| e.clone())
    }
}

impl<T: Clone + Send + 'static> Future<T> {
    /// Waits for and returns (a clone of) the value — the paper's
    /// `f->get()`.
    pub fn get(&self) -> T {
        self.with(T::clone)
    }
}

impl<T> fmt::Debug for Future<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ready = self.shared.state.load(Ordering::Acquire) == READY;
        f.debug_struct("Future").field("ready", &ready).finish()
    }
}

impl<T> fmt::Debug for Promise<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Promise")
            .field("satisfied", &self.is_satisfied())
            .finish()
    }
}

/// Returns a future that completes when all input futures do (order of
/// completion is irrelevant). If any input is poisoned, the output is
/// poisoned with the first-observed error once every input completed.
pub fn when_all<T: Send + 'static>(futures: &[Future<T>]) -> Future<()> {
    let p = Promise::new();
    let f = p.future();
    if futures.is_empty() {
        p.put(());
        return f;
    }
    let remaining = Arc::new(AtomicUsize::new(futures.len()));
    let first_err: Arc<Mutex<Option<TaskError>>> = Arc::new(Mutex::new(None));
    let p = Arc::new(Mutex::new(Some(p)));
    for fut in futures {
        let remaining = Arc::clone(&remaining);
        let first_err = Arc::clone(&first_err);
        let p = Arc::clone(&p);
        let fut2 = fut.clone();
        fut.on_ready(move || {
            if let Some(e) = fut2.poison_error() {
                let mut slot = first_err.lock();
                if slot.is_none() {
                    *slot = Some(e);
                }
            }
            if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                if let Some(p) = p.lock().take() {
                    match first_err.lock().take() {
                        Some(e) => p.poison(e),
                        None => p.put(()),
                    }
                }
            }
        });
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn put_then_get() {
        let p = Promise::new();
        let f = p.future();
        p.put(42);
        assert!(f.is_ready());
        assert_eq!(f.get(), 42);
        assert_eq!(f.try_get(), Some(42));
    }

    #[test]
    fn try_get_pending() {
        let p: Promise<u32> = Promise::new();
        let f = p.future();
        assert!(!f.is_ready());
        assert_eq!(f.try_get(), None);
    }

    #[test]
    #[should_panic(expected = "satisfied twice")]
    fn double_put_panics() {
        let p = Promise::new();
        let _f = p.future();
        let p2 = Promise {
            shared: Arc::clone(&p.shared),
        };
        p.put(1);
        p2.put(2);
    }

    #[test]
    #[should_panic(expected = "after poisoning")]
    fn put_after_poison_panics() {
        let p: Promise<u32> = Promise::new();
        let _f = p.future();
        let p2 = Promise {
            shared: Arc::clone(&p.shared),
        };
        p.poison(TaskError::new("producer died"));
        p2.put(2);
    }

    #[test]
    fn continuations_run_on_put_in_order() {
        let p = Promise::new();
        let f = p.future();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let log = Arc::clone(&log);
            f.on_ready(move || log.lock().push(i));
        }
        assert!(log.lock().is_empty());
        p.put(());
        assert_eq!(*log.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn continuation_after_put_runs_immediately() {
        let p = Promise::new();
        let f = p.future();
        p.put(7u8);
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        f.on_ready(move || {
            r.store(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn inline_slot_counts_first_waiter() {
        let before = inline_waiters_total();
        let p = Promise::new();
        let f = p.future();
        f.on_ready(|| {});
        f.on_ready(|| {}); // overflow, not inline
        assert_eq!(inline_waiters_total(), before + 1);
        p.put(());
    }

    #[test]
    fn cross_thread_wait() {
        let p = Promise::new();
        let f = p.future();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            p.put("hello".to_string());
        });
        assert_eq!(f.get(), "hello");
        t.join().unwrap();
    }

    #[test]
    fn many_waiters_released() {
        let p = Promise::new();
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let f = p.future();
                thread::spawn(move || f.get())
            })
            .collect();
        thread::sleep(Duration::from_millis(10));
        p.put(99u64);
        for w in waiters {
            assert_eq!(w.join().unwrap(), 99);
        }
    }

    #[test]
    fn when_all_waits_for_every_input() {
        let ps: Vec<Promise<()>> = (0..3).map(|_| Promise::new()).collect();
        let fs: Vec<Future<()>> = ps.iter().map(Promise::future).collect();
        let all = when_all(&fs);
        let mut ps = ps.into_iter();
        all.on_ready(|| {});
        assert!(!all.is_ready());
        ps.next().unwrap().put(());
        assert!(!all.is_ready());
        ps.next().unwrap().put(());
        assert!(!all.is_ready());
        ps.next().unwrap().put(());
        assert!(all.is_ready());
    }

    #[test]
    fn when_all_empty_is_immediately_ready() {
        let all = when_all::<()>(&[]);
        assert!(all.is_ready());
    }

    #[test]
    fn with_gives_reference_access() {
        let p = Promise::new();
        let f = p.future();
        p.put(vec![1, 2, 3]);
        let sum: i32 = f.with(|v| v.iter().sum());
        assert_eq!(sum, 6);
    }

    #[test]
    fn dropped_promise_poisons_future() {
        let p: Promise<u32> = Promise::new();
        let f = p.future();
        drop(p);
        assert!(f.is_poisoned());
        assert!(f.is_complete());
        assert!(!f.is_ready());
        assert!(f.result().is_err());
        assert_eq!(f.try_get(), None);
    }

    #[test]
    fn explicit_poison_releases_waiters_and_runs_continuations() {
        let p: Promise<u32> = Promise::new();
        let f = p.future();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        f.on_ready(move || {
            r.store(1, Ordering::SeqCst);
        });
        let f2 = f.clone();
        let waiter = thread::spawn(move || f2.result());
        thread::sleep(Duration::from_millis(10));
        p.poison(TaskError::new("boom"));
        let err = waiter.join().unwrap().unwrap_err();
        assert!(err.message.contains("boom"));
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "future poisoned")]
    fn get_on_poisoned_future_panics() {
        let p: Promise<u32> = Promise::new();
        let f = p.future();
        p.poison(TaskError::new("dead producer"));
        let _ = f.get();
    }

    #[test]
    fn when_all_propagates_poison() {
        let ok: Promise<()> = Promise::new();
        let bad: Promise<()> = Promise::new();
        let all = when_all(&[ok.future(), bad.future()]);
        bad.poison(TaskError::new("one input failed"));
        assert!(!all.is_complete(), "waits for every input");
        ok.put(());
        assert!(all.is_poisoned());
        assert!(all
            .poison_error()
            .unwrap()
            .message
            .contains("one input failed"));
    }

    #[test]
    fn poison_after_waiters_registered_runs_each_exactly_once() {
        let p: Promise<u32> = Promise::new();
        let f = p.future();
        let counts: Vec<Arc<AtomicUsize>> = (0..5).map(|_| Arc::new(AtomicUsize::new(0))).collect();
        for c in &counts {
            let c = Arc::clone(c);
            f.on_ready(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        p.poison(TaskError::new("late failure"));
        for c in &counts {
            assert_eq!(c.load(Ordering::SeqCst), 1);
        }
        // Late registration on a poisoned future still runs immediately.
        let late = Arc::new(AtomicUsize::new(0));
        let l = Arc::clone(&late);
        f.on_ready(move || {
            l.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(late.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_registrations_race_put_none_lost_or_duplicated() {
        // Many threads register continuations while another thread puts;
        // every continuation must run exactly once whatever the interleave.
        for round in 0..50 {
            let p = Promise::new();
            let f = p.future();
            const THREADS: usize = 4;
            const PER_THREAD: usize = 8;
            let counts: Vec<Arc<AtomicUsize>> = (0..THREADS * PER_THREAD)
                .map(|_| Arc::new(AtomicUsize::new(0)))
                .collect();
            let registrars: Vec<_> = (0..THREADS)
                .map(|t| {
                    let f = f.clone();
                    let counts: Vec<_> = counts[t * PER_THREAD..(t + 1) * PER_THREAD]
                        .iter()
                        .map(Arc::clone)
                        .collect();
                    thread::spawn(move || {
                        for c in counts {
                            f.on_ready(move || {
                                c.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    })
                })
                .collect();
            let putter = thread::spawn(move || {
                if round % 2 == 0 {
                    thread::yield_now();
                }
                p.put(round);
            });
            for r in registrars {
                r.join().unwrap();
            }
            putter.join().unwrap();
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(
                    c.load(Ordering::SeqCst),
                    1,
                    "continuation {} ran a wrong number of times (round {})",
                    i,
                    round
                );
            }
        }
    }
}
